"""Thin shim for legacy editable installs.

All project metadata lives in ``pyproject.toml``.  This file only enables
``pip install -e . --no-use-pep517`` (and ``python setup.py develop``) in
offline environments whose setuptools lacks the PEP 660 editable-wheel path.
"""

from setuptools import setup

setup()
