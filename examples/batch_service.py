#!/usr/bin/env python
"""Batch service walkthrough: a cached sweep, then a portfolio race.

Expands a devices x workloads x relocation-specs grid into content-hashed
solve jobs, fans them across a process pool with an on-disk solve cache,
re-runs the sweep to show the 100% warm-cache replay, and finally races the
O / HO / annealing strategies on the hardest instance of the grid.

Run with::

    python examples/batch_service.py
"""

import tempfile

from repro import SolverOptions, run_portfolio, run_sweep, sweep_jobs, synthetic_device
from repro.service import SolveCache, constraint_for
from repro.workloads.synthetic import config_grid


def main() -> None:
    # 1. the scenario grid: one device, 2 sizes x 2 seeds, with/without relocation
    device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="svc-dev")
    configs = config_grid(num_regions=(3, 4), utilizations=(0.45,), seeds=(0, 1))
    jobs = sweep_jobs(
        [device],
        configs,
        relocations=(None, constraint_for(regions=1, copies=1)),
        options=SolverOptions(time_limit=30, mip_gap=0.05),
    )
    print(f"expanded {len(configs)} workload configs into {len(jobs)} jobs\n")

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = SolveCache(cache_dir)

        # 2. cold sweep: every job is solved (in parallel) and cached
        report = run_sweep(jobs, cache=cache)
        print(report.format(title="cold sweep"))
        print(report.summary(), "\n")

        # 3. warm sweep: identical jobs -> 100% cache hits, no solver calls
        replay = run_sweep(jobs, cache=cache)
        print("replay:", replay.summary(), "\n")

    # 4. portfolio race on one instance: first verified-feasible result wins
    hardest = max(jobs, key=lambda job: len(job.problem.regions))
    result = run_portfolio(
        hardest.problem,
        relocation=hardest.relocation,
        options=SolverOptions(time_limit=30, mip_gap=0.05),
        deadline=90,
        policy="best",
    )
    print("portfolio:", result.summary())


if __name__ == "__main__":
    main()
