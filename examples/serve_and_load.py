#!/usr/bin/env python
"""Serving walkthrough: gateway startup, mixed hit/miss load, live metrics.

Starts the asyncio solve gateway on an ephemeral port (the same entry point
``python -m repro.server`` uses, here run on a background thread), throws a
cold closed-loop workload at it over real loopback HTTP, replays the same
workload warm to show the end-to-end cache-hit path, fires an open-loop
Poisson burst through a deliberately-tight rate limiter to show admission
control shedding, and finally prints the ``/metrics`` analysis tables.

Run with::

    python examples/serve_and_load.py
"""

import time

from repro.server import BackgroundGateway, GatewayConfig
from repro.server.loadgen import demo_payloads, run_closed_loop, run_open_loop


def burst_refill_s(config: GatewayConfig) -> float:
    """Seconds for an empty token bucket to refill to its full burst."""
    return config.rate_burst / config.rate_limit


def main() -> None:
    # 1. gateway: 2 worker shards behind a 10 ms x 8 micro-batch window,
    #    per-client rate limit of 40 req/s (burst 10)
    config = GatewayConfig(
        port=0,  # ephemeral: read the bound port back from the handle
        max_batch=8,
        batch_window=0.01,
        rate_limit=40.0,
        rate_burst=10.0,
    )
    payloads = demo_payloads(unique=4, time_limit=30.0)

    with BackgroundGateway(config) as background:
        print(f"gateway listening on http://{background.host}:{background.port}\n")

        # 2. cold run: every unique job is a cache miss; concurrent duplicates
        #    coalesce in the micro-batch window and are deduplicated
        cold = run_closed_loop(
            background.host, background.port, payloads, clients=4, requests_per_client=4
        )
        print("cold closed-loop:", cold.summary())

        # 3. warm replay: identical requests -> served inline from the cache.
        #    let the rate-limit bucket refill first: a fast cold run can end
        #    with it drained, and the warm replay is near-instant (all hits)
        time.sleep(burst_refill_s(config))
        warm = run_closed_loop(
            background.host, background.port, payloads, clients=4, requests_per_client=4
        )
        print("warm closed-loop:", warm.summary())
        assert warm.hit_rate >= 0.9, "warm replay should be >= 90% cache hits"

        # 4. open-loop Poisson burst at 3x the rate limit: admission control
        #    sheds the excess with 429s instead of building a backlog
        burst = run_open_loop(
            background.host, background.port, payloads,
            rate=120.0, horizon=1.0, seed=11,
        )
        print("open-loop burst: ", burst.summary())

        # 5. the /metrics document, rendered through repro.analysis tables
        snapshot = background.gateway.metrics_snapshot()
        print()
        print(snapshot["tables"]["counters"])
        print()
        print(snapshot["tables"]["latency"])

    print("\ngateway drained cleanly")


if __name__ == "__main__":
    main()
