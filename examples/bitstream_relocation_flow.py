#!/usr/bin/env python
"""End-to-end relocation flow: floorplan -> bitstreams -> run-time relocation.

Shows the full story the paper's introduction motivates:

1. the relocation-aware floorplanner reserves free-compatible areas;
2. partial bitstreams are generated for each region's home placement;
3. at "run time" a module is relocated into its reserved area by rewriting
   frame addresses and recomputing the CRC — and the configuration memory
   readback proves the payload arrived intact.
"""

from repro import (
    Connection,
    FloorplanProblem,
    FloorplanSolver,
    Region,
    RelocationSpec,
    ResourceVector,
    SolverOptions,
    render_floorplan,
    synthetic_device,
)
from repro.runtime import ReconfigurationManager, round_robin_schedule


def main() -> None:
    device = synthetic_device(width=12, height=6, bram_every=4, dsp_every=9,
                              name="flow-device")
    regions = [
        Region("codec", ResourceVector(CLB=4, BRAM=1)),
        Region("crypto", ResourceVector(CLB=3)),
    ]
    problem = FloorplanProblem(
        device, regions, [Connection("codec", "crypto", weight=8)], name="relocation-flow"
    )
    spec = RelocationSpec.as_constraint({"codec": 1, "crypto": 1})
    report = FloorplanSolver(
        problem, relocation=spec, options=SolverOptions(time_limit=60, mip_gap=0.02)
    ).solve()
    print(render_floorplan(report.floorplan))
    print()

    manager = ReconfigurationManager(report.floorplan)

    # cycle both regions through a few modes, then relocate each once
    for region, mode in round_robin_schedule(["codec", "crypto"], rounds=2):
        bitstream = manager.reconfigure(region, mode)
        print(f"configured {region} with {mode}: {bitstream.num_frames} frames "
              f"(crc 0x{bitstream.crc:08x})")

    for region in ("codec", "crypto"):
        targets = manager.available_relocation_targets(region)
        print(f"\n{region}: {len(targets)} reserved relocation target(s)")
        relocated = manager.relocate(region)
        print(f"  relocated to {relocated.anchor} (new crc 0x{relocated.crc:08x}); "
              f"memory verified: {manager.memory.verify(relocated)}")

    print("\nrun-time trace summary:", manager.trace.summary())


if __name__ == "__main__":
    main()
