#!/usr/bin/env python
"""Fleet scaling walkthrough: 1/2/4 replicas under a duplicate-miss herd.

For each fleet size this script spawns the real thing — N ``repro.server``
gateway subprocesses supervised by a :class:`~repro.fleet.manager.FleetManager`
behind a consistent-hash :class:`~repro.fleet.router.FleetRouter` — and drives
the same closed-loop workload: 8 clients hammering 2 *fresh* instances
(4 identical concurrent misses per unique, spread across the replica ports).

The table to watch is ``solves/unique``: however many replicas the duplicate
herd is spread over, the shared cache tier's per-fingerprint lock files elect
exactly **one** solver per unique job fleet-wide — every other replica awaits
the winner's entry (``flight_waits``) instead of burning a core re-solving
it.  On a multi-core box the distinct-miss work also spreads across replica
processes for near-linear throughput; on a single-core runner throughput is
roughly flat and the win is the collapsed work.

Run with::

    python examples/fleet_scaling.py            # heavy ~1-2 s instances
    python examples/fleet_scaling.py --quick    # light instances, fast smoke
"""

import argparse
import sys
import tempfile

from repro.analysis import format_table
from repro.fleet import BackgroundFleet
from repro.server.loadgen import demo_payloads, fetch_metrics_json, run_fleet_closed_loop

# the published no-dedup ablation shape (server.miss_unbatched): batching off
# and a shard pool wider than the herd, so nothing inside one replica hides
# the duplicate work the cache tier is there to collapse
NO_DEDUP_ARGS = (
    "--max-batch", "1", "--batch-window", "0",
    "--shards", "12", "--batch-workers", "8",
)

CLIENTS = 8
UNIQUE = 2  # 8 requests over 2 uniques = 4 identical concurrent misses each


def drive_fleet(replicas: int, payloads) -> dict:
    """One fleet size: spawn, herd, scrape the roll-up, tear down."""
    cache_dir = tempfile.mkdtemp(prefix=f"fleet-scaling-{replicas}-")
    with BackgroundFleet(
        replicas=replicas, cache_dir=cache_dir, server_args=NO_DEDUP_ARGS
    ) as fleet:
        # duplicates are spread across the replica *ports* (round-robin), so
        # collapsing them is the shared tier's job, not the router's affinity
        result = run_fleet_closed_loop(
            fleet.manager.addresses, payloads, clients=CLIENTS, requests_per_client=1
        )
        rollup = fetch_metrics_json(fleet.host, fleet.port)
    solves = rollup["cache"]["stores"]
    return {
        "replicas": replicas,
        "throughput": result.throughput,
        "p50_ms": result.p50_s * 1e3,
        "errors": result.errors,
        "solves": solves,
        "solves_per_unique": solves / UNIQUE,
        "flight_waits": rollup["counters"]["flight_waits"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use light ~0.5 s instances instead of heavy ~1-2 s ones",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="fleet sizes to sweep (default: 1 2 4)",
    )
    args = parser.parse_args(argv)

    # fresh fingerprints per fleet size: every sweep entry starts cache-cold
    pool = demo_payloads(
        unique=UNIQUE * len(args.replicas), time_limit=30.0, heavy=not args.quick
    )
    rows = []
    for index, replicas in enumerate(args.replicas):
        payloads = pool[index * UNIQUE:(index + 1) * UNIQUE]
        print(
            f"fleet of {replicas}: {CLIENTS} clients x {UNIQUE} unique jobs "
            f"({CLIENTS // UNIQUE} duplicate concurrent misses each) ..."
        )
        outcome = drive_fleet(replicas, payloads)
        rows.append(
            [
                outcome["replicas"],
                f"{outcome['throughput']:.2f}",
                f"{outcome['p50_ms']:.1f}",
                outcome["solves"],
                f"{outcome['solves_per_unique']:.1f}",
                outcome["flight_waits"],
                outcome["errors"],
            ]
        )
        if outcome["errors"]:
            print("unexpected 5xx responses — aborting", file=sys.stderr)
            return 1

    print()
    print(
        format_table(
            ["replicas", "req/s", "p50 (ms)", "solves", "solves/unique",
             "flight waits", "errors"],
            rows,
            title=f"duplicate-miss herd: {CLIENTS} clients, {UNIQUE} unique jobs",
        )
    )
    print(
        "\nsingle-flight keeps solves/unique at 1.0 at every fleet size: the\n"
        "herd's duplicate work is collapsed fleet-wide, not multiplied by N."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
