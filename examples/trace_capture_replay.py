#!/usr/bin/env python
"""Capture→replay walkthrough: record live traffic, export it, re-drive it.

Starts a traced solve gateway on a background thread, throws a closed-loop
workload at it, then walks the full production-trace pipeline in process:

1. **capture** — pull the recorded trace documents off ``/debug/traces``
   (the same wire path ``python -m repro.obs export`` uses) and distil them
   into one capture document: the observed request sequence with its
   inter-arrival cadence, plus a ``ModeSchedule`` encoding of the same.
2. **replay against the live gateway** — ``run_replay`` re-sends the
   captured sequence in order; against the now-warm cache every request
   answers as a hit, and the executed fingerprints match the capture
   exactly (order fidelity is the contract).
3. **replay into the simulator** — ``TraceReplayTraffic.from_capture``
   turns the same capture into timed mode requests, so the discrete-event
   simulator can be driven by production cadence instead of a synthetic
   Poisson model.

Run with::

    PYTHONPATH=src python examples/trace_capture_replay.py
"""

import os
import tempfile

from repro.obs.capture import build_capture, fetch_trace_docs, load_capture, write_capture
from repro.server import BackgroundGateway, GatewayConfig
from repro.server.loadgen import demo_payloads, run_closed_loop, run_replay
from repro.sim import TraceReplayTraffic

CLIENTS = 3
REQUESTS_PER_CLIENT = 3


def main() -> None:
    payloads = demo_payloads(unique=3, time_limit=30.0)
    config = GatewayConfig(port=0, max_batch=8, batch_window=0.01)

    with BackgroundGateway(config) as background:
        host, port = background.host, background.port
        print(f"gateway listening on http://{host}:{port}")

        # 1. production traffic: 3 clients x 3 requests over 3 unique jobs —
        #    a mix of cold misses, coalesced duplicates, and warm hits
        load = run_closed_loop(
            host, port, payloads,
            clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
        )
        print("recorded workload:", load.summary())

        # 2. capture: trace documents -> one replayable capture file
        docs = fetch_trace_docs(host, port)
        capture = build_capture(docs, source=f"{host}:{port}")
        path = os.path.join(tempfile.mkdtemp(prefix="obs-capture-"), "capture.json")
        write_capture(capture, path)
        capture = load_capture(path)  # round-trip through disk, as the CLI does

        requests = capture["requests"]
        fingerprints = [request["fingerprint"] for request in requests]
        span = requests[-1]["offset"] if requests else 0.0
        print(
            f"capture: {len(requests)} requests "
            f"({len(set(fingerprints))} unique fingerprints) "
            f"spanning {span:.3f}s -> {path}"
        )
        assert len(requests) == CLIENTS * REQUESTS_PER_CLIENT, (
            "every traced request must appear in the capture exactly once"
        )

        # 3. replay against the live gateway: same sequence, same order —
        #    and against the warm cache every answer is a hit
        outcome = run_replay(host, port, capture, payloads)
        print("replay vs gateway:", outcome.result.summary())
        assert not outcome.skipped, "every fingerprint must resolve to a payload"
        assert outcome.executed == fingerprints, "replay must preserve order"
        assert outcome.result.hit_rate == 1.0, "warm replay must be all hits"

    print("gateway drained cleanly\n")

    # 4. the same capture drives the simulator: each captured request becomes
    #    a timed mode activation at its observed offset
    traffic = TraceReplayTraffic.from_capture(capture)
    horizon = float(span) + 1.0
    sim_requests = traffic.generate(horizon)
    print(f"simulator replay: {len(sim_requests)} timed mode requests")
    for request in sim_requests[:3]:
        print(f"  t={request.time:8.3f}s  {request.region}  mode={request.mode}")
    assert len(sim_requests) == len(requests)
    assert [r.region for r in sim_requests] == [r["job"] for r in requests]

    print("\ncapture round-trips through both replay paths")


if __name__ == "__main__":
    main()
