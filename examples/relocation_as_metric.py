#!/usr/bin/env python
"""Relocation as a metric (Section V).

Requests more free-compatible areas than the fabric can possibly host and lets
the soft-constraint formulation decide which ones are worth keeping: missed
areas cost their weight in the objective (eq. 13) instead of making the
problem infeasible.
"""

from repro import (
    Connection,
    FloorplanProblem,
    FloorplanSolver,
    Region,
    RelocationSpec,
    ResourceVector,
    SolverOptions,
    render_floorplan,
    synthetic_device,
)
from repro.relocation.metric import relocation_cost, relocation_summary


def main() -> None:
    device = synthetic_device(width=14, height=5, bram_every=4, dsp_every=9,
                              name="metric-device")
    regions = [
        Region("dsp_chain", ResourceVector(CLB=8, DSP=1)),
        Region("buffer", ResourceVector(CLB=2, BRAM=1)),
        Region("ctrl", ResourceVector(CLB=2)),
    ]
    problem = FloorplanProblem(
        device, regions, [Connection("dsp_chain", "buffer", weight=16)], name="metric-demo"
    )

    # ask for an unrealistic number of copies, weighting the buffer higher
    spec = RelocationSpec.as_metric(
        {"buffer": 3, "ctrl": 4}, weights={"buffer": 2.0, "ctrl": 1.0}
    )

    report = FloorplanSolver(
        problem, relocation=spec, options=SolverOptions(time_limit=90, mip_gap=0.05)
    ).solve()

    print(report.summary())
    print()
    for summary in relocation_summary(report.floorplan, spec):
        print(f"  {summary.region}: {summary.satisfied}/{summary.requested} areas "
              f"(weight {summary.weight}, cost contribution {summary.cost})")
    print(f"  total RLcost = {relocation_cost(report.floorplan, spec)}")
    print()
    print(render_floorplan(report.floorplan))


if __name__ == "__main__":
    main()
