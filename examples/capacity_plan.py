#!/usr/bin/env python
"""Capacity-planning walkthrough: how many devices for 50 req/s at p99 < 200 ms?

Derives a device profile from a real floorplanned device (frame counts per
region set the reconfiguration service time, exactly as in the single-device
simulator), then asks the planner for the minimum fleet size meeting a
p99-latency + blocking + throughput SLO, and sweeps offered load for the
capacity curve a deployment would size its fleet from.

The whole pipeline is seeded and deterministic: the script re-runs the plan
and checks the JSON report is byte-for-byte identical.

Run with::

    PYTHONPATH=src python examples/capacity_plan.py
"""

from repro.capacity import (
    CapacityScenario,
    CapacitySLO,
    DeviceProfile,
    capacity_curve,
    plan_document,
    plan_min_devices,
    render_json,
    render_markdown,
)
from repro.device.catalog import simple_two_type_device
from repro.floorplan.geometry import Rect


def build_scenario() -> CapacityScenario:
    """50 req/s over a two-region device at a paper-scale frame clock.

    ``seconds_per_frame=1e-3`` puts one device at roughly 7 req/s of serving
    capacity, so meeting the SLO takes a real fleet and the planner's search
    has actual work to do.
    """
    profile = DeviceProfile.from_floorplan(
        simple_two_type_device(),
        {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)},
        seconds_per_frame=1e-3,
        name="example-dev",
    )
    return CapacityScenario(profile=profile, rate=50.0, horizon=30.0, seed=0)


def main() -> None:
    scenario = build_scenario()
    slo = CapacitySLO(
        max_p99_latency_s=0.2, max_blocking=0.01, min_throughput_fraction=0.95
    )

    outcome = plan_min_devices(scenario, slo, max_devices=64)
    assert outcome.min_devices is not None, "the SLO must be reachable"
    curve = capacity_curve(scenario, slo, [0.5, 1.0, 1.5], max_devices=64)

    document = plan_document(scenario, slo, outcome, curve=curve)
    print(render_markdown(document))

    # minimality: the answer passes, one device fewer does not
    best = outcome.evaluation_for(outcome.min_devices)
    assert best is not None and best.ok
    below = outcome.evaluation_for(outcome.min_devices - 1)
    if below is not None:
        assert not below.ok, "min_devices - 1 must fail the SLO"

    # determinism: replanning renders the identical report
    replay = plan_min_devices(scenario, slo, max_devices=64)
    replay_curve = capacity_curve(scenario, slo, [0.5, 1.0, 1.5], max_devices=64)
    identical = render_json(document) == render_json(
        plan_document(scenario, slo, replay, curve=replay_curve)
    )
    print(f"replan byte-for-byte identical: {identical}")
    assert identical, "seeded capacity plans must be reproducible"


if __name__ == "__main__":
    main()
