#!/usr/bin/env python
"""The SDR case study of Section VI, scaled to run in a couple of minutes.

Reproduces, on the Virtex-5 FX70T-like device:

* Table I (resource requirements and frame counts);
* the SDR2 instance — two free-compatible areas for every relocatable region —
  solved in HO mode (Figure 4's floorplan is printed as ASCII art).

For the full Table II comparison (including the [8]-style baseline and SDR3)
run the benchmark harness instead::

    pytest benchmarks/bench_table2_and_floorplans.py --benchmark-only -s
"""

from repro import FloorplanSolver, ObjectiveWeights, SolverOptions, render_floorplan
from repro.analysis import format_table
from repro.analysis.report import TABLE1_HEADERS, table1_rows
from repro.floorplan.metrics import evaluate_floorplan
from repro.workloads import sdr_problem, sdr2_spec


def main() -> None:
    problem = sdr_problem()

    print(format_table(TABLE1_HEADERS, table1_rows(problem), title="Table I"))
    print()

    solver = FloorplanSolver(
        problem,
        relocation=sdr2_spec(),
        mode="HO",
        options=SolverOptions(time_limit=120, mip_gap=0.02),
    )
    report = solver.solve(weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0))

    metrics = evaluate_floorplan(report.floorplan)
    print(f"SDR2 ({report.solution.status.value} in {report.solution.solve_time:.1f}s): "
          f"{metrics.free_compatible_areas} free-compatible areas, "
          f"{metrics.wasted_frames} wasted frames, wirelength {metrics.wirelength:.0f}")
    print()
    print(render_floorplan(report.floorplan))


if __name__ == "__main__":
    main()
