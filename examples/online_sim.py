#!/usr/bin/env python
"""Online-simulation walkthrough: floorplan once, then survive live traffic.

Solves a small synthetic instance with reserved free-compatible areas, hands
the floorplan to the run-time manager and plays a seeded online scenario on
virtual time: Poisson mode-activation traffic, a mid-run fabric fault under a
live module, and the relocate-first policy routing around it through the
floorplanner's reserved areas.  The run is fully deterministic — the script
replays it and checks the two reports are byte-for-byte identical.

Run with::

    PYTHONPATH=src python examples/online_sim.py
"""

from repro import FloorplanSolver, RelocationSpec, SolverOptions, synthetic_device
from repro.device.resources import ResourceVector
from repro.floorplan.problem import Connection, FloorplanProblem, Region
from repro.runtime import ReconfigurationManager
from repro.sim import (
    PoissonTraffic,
    RelocateFirst,
    ScheduledFaults,
    SimConfig,
    SimulationEngine,
)


def build_floorplan():
    """A small instance with one reserved free area per relocatable region."""
    device = synthetic_device(10, 4, bram_every=4, dsp_every=7, name="online-dev")
    regions = [
        Region("alpha", ResourceVector(CLB=4)),
        Region("beta", ResourceVector(CLB=2, BRAM=1)),
        Region("gamma", ResourceVector(CLB=2, DSP=1)),
    ]
    connections = [
        Connection("alpha", "beta", weight=8),
        Connection("beta", "gamma", weight=8),
    ]
    problem = FloorplanProblem(device, regions, connections, name="online")
    spec = RelocationSpec.as_constraint({"beta": 1, "gamma": 1})
    report = FloorplanSolver(
        problem, relocation=spec, options=SolverOptions(time_limit=60, mip_gap=0.02)
    ).solve()
    assert report.solution.status.has_solution, "the tiny instance must solve"
    return report.floorplan


def simulate(floorplan):
    """One seeded scenario: Poisson traffic, a fault at t=5, relocate-first."""
    engine = SimulationEngine(
        ReconfigurationManager(floorplan),
        traffic=PoissonTraffic(
            ["alpha", "beta", "gamma"], rate=4.0, modes_per_region=3, seed=17
        ),
        policy=RelocateFirst(),
        faults=ScheduledFaults([(5.0, "beta")]),
        config=SimConfig(horizon=30.0, seconds_per_frame=1e-3),
    )
    return engine.run()


def main() -> None:
    floorplan = build_floorplan()
    print(f"floorplan solved: {floorplan!r}\n")

    result = simulate(floorplan)
    print(result.format_report())

    replay = simulate(floorplan)
    identical = result.format_report() == replay.format_report()
    print(f"\nreplay byte-for-byte identical: {identical}")
    assert identical, "seeded simulations must be reproducible"
    assert result.stats.actions().get("relocate+reconfigure", 0) >= 1, (
        "the fault must have forced at least one relocation"
    )


if __name__ == "__main__":
    main()
