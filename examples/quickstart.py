#!/usr/bin/env python
"""Quickstart: place three regions and reserve a relocation area for one of them.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Connection,
    FloorplanProblem,
    FloorplanSolver,
    Region,
    RelocationSpec,
    ResourceVector,
    SolverOptions,
    render_floorplan,
    synthetic_device,
)


def main() -> None:
    # 1. describe the device: a small columnar FPGA with CLB/BRAM/DSP columns
    device = synthetic_device(width=12, height=5, bram_every=4, dsp_every=9,
                              name="quickstart-device")

    # 2. describe the design: three reconfigurable regions and their bus
    regions = [
        Region("filter", ResourceVector(CLB=6)),
        Region("fft", ResourceVector(CLB=3, DSP=1)),
        Region("decoder", ResourceVector(CLB=2, BRAM=1)),
    ]
    connections = [
        Connection("filter", "fft", weight=32),
        Connection("fft", "decoder", weight=32),
    ]
    problem = FloorplanProblem(device, regions, connections, name="quickstart")

    # 3. ask for one free-compatible (relocation) area for the decoder
    spec = RelocationSpec.as_constraint({"decoder": 1})

    # 4. solve and inspect
    solver = FloorplanSolver(problem, relocation=spec,
                             options=SolverOptions(time_limit=60, mip_gap=0.02))
    report = solver.solve()

    print(report.summary())
    print()
    print(render_floorplan(report.floorplan))


if __name__ == "__main__":
    main()
