"""Shared fixtures for the benchmark/experiment harness.

Every expensive MILP solve is session-scoped, so a full ``pytest benchmarks/
--benchmark-only`` run performs each headline solve exactly once and the
benchmark timers measure the cheap, repeatable parts (model building,
compatibility checks, rendering, relocation filtering).

Environment knobs:

``REPRO_BENCH_TIME_LIMIT``
    Per-solve MILP time limit in seconds (default 90).  The paper let the
    solver run for hours; raise this to push the SDR2/SDR3 solutions closer to
    optimality.
``REPRO_BENCH_SDR3_TIME_LIMIT``
    Time limit for the (much harder) SDR3 instance (default 180).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.scenarios import bench_time_limit
from repro.floorplan import FloorplanSolver, ObjectiveWeights
from repro.milp import SolverOptions
from repro.workloads import sdr_problem, sdr2_spec, sdr3_spec


def sdr3_time_limit(default: float = 180.0) -> float:
    return float(os.environ.get("REPRO_BENCH_SDR3_TIME_LIMIT", default))


@pytest.fixture(scope="session")
def sdr():
    """The full SDR floorplanning instance on the Virtex-5-like device."""
    return sdr_problem()


@pytest.fixture(scope="session")
def bench_options():
    return SolverOptions(time_limit=bench_time_limit(90.0), mip_gap=0.02)


@pytest.fixture(scope="session")
def sdr_base_report(sdr, bench_options):
    """[10]-style solve of the original SDR design (no relocation), HO mode."""
    solver = FloorplanSolver(sdr, mode="HO", options=bench_options)
    return solver.solve(weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0))


@pytest.fixture(scope="session")
def sdr2_report(sdr, bench_options):
    """PA on SDR2: two hard free-compatible areas per relocatable region."""
    solver = FloorplanSolver(sdr, relocation=sdr2_spec(), mode="HO", options=bench_options)
    return solver.solve(weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0))


@pytest.fixture(scope="session")
def sdr3_report(sdr):
    """PA on SDR3, run as relocation-as-a-metric (see EXPERIMENTS.md).

    The SDR3-as-hard-constraint instance needs an O-mode solve far beyond the
    default benchmark budget (the paper itself ran 6 hours without proving
    optimality); the soft-constraint run reports how many of the nine areas
    were obtained within the budget.
    """
    options = SolverOptions(time_limit=sdr3_time_limit(), mip_gap=0.02)
    solver = FloorplanSolver(sdr, relocation=sdr3_spec(hard=False), mode="HO", options=options)
    return solver.solve(
        weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0, relocation=1.0)
    )
