"""Simulator throughput: simulated events per wall-clock second.

Run with ``PYTHONPATH=src pytest benchmarks/bench_sim_throughput.py -q``.
The engine is pure-python discrete-event machinery on a manually-built
floorplan (no MILP in the loop), so the events/sec figure measures the event
queue, the policy dispatch and the bitstream-cache path.  The floor asserted
here is deliberately loose — the point is the printed number.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.scenarios import sim_floorplan
from repro.runtime import ReconfigurationManager
from repro.sim import (
    MMPPTraffic,
    PoissonTraffic,
    ReconfigureInPlace,
    RelocateFirst,
    ScheduledFaults,
    SimConfig,
    SimulationEngine,
)
from repro.utils.timing import Timer

HORIZON = float(os.environ.get("REPRO_BENCH_SIM_HORIZON", 500.0))


@pytest.fixture(scope="module")
def floorplan():
    """The shared two-region simulator scenario (see repro.bench.scenarios)."""
    return sim_floorplan()


def _throughput(result, elapsed: float) -> float:
    return result.events_processed / max(elapsed, 1e-9)


def test_poisson_event_throughput(floorplan):
    """Events/sec under steady Poisson load with the in-place policy."""
    engine = SimulationEngine(
        ReconfigurationManager(floorplan),
        traffic=PoissonTraffic(["A", "B"], rate=10.0, seed=0),
        policy=ReconfigureInPlace(),
        config=SimConfig(horizon=HORIZON, seconds_per_frame=1e-4),
    )
    with Timer() as timer:
        result = engine.run()
    rate = _throughput(result, timer.elapsed)
    print(
        f"\npoisson: {result.events_processed} events in {timer.elapsed:.2f}s "
        f"({rate:,.0f} events/s, {len(result.stats)} requests)"
    )
    assert result.events_processed >= 2 * 0.8 * 10.0 * HORIZON
    # every event re-verifies bitstream CRCs and writes frames into the
    # simulated configuration memory, so the floor is deliberately modest
    assert rate > 100, "DES should clear 100 simulated events/s even on slow boxes"


def test_bursty_relocation_throughput(floorplan):
    """Events/sec under bursty MMPP load with faults and relocate-first."""
    engine = SimulationEngine(
        ReconfigurationManager(floorplan),
        traffic=MMPPTraffic(
            ["A", "B"], rates=(2.0, 40.0), mean_sojourns=(20.0, 4.0), seed=1
        ),
        policy=RelocateFirst(),
        faults=ScheduledFaults([(HORIZON / 4, "A"), (HORIZON / 2, "B")]),
        config=SimConfig(horizon=HORIZON, seconds_per_frame=1e-4),
    )
    with Timer() as timer:
        result = engine.run()
    rate = _throughput(result, timer.elapsed)
    print(
        f"\nmmpp+faults: {result.events_processed} events in {timer.elapsed:.2f}s "
        f"({rate:,.0f} events/s, blocking={result.stats.blocking_probability:.3f})"
    )
    assert result.trace_summary()["fault"] == 2
    assert rate > 50


def test_cache_capacity_sweep(floorplan):
    """Hit rate and throughput across bitstream-cache capacities."""
    print()
    by_capacity = {}
    for capacity in (2, 8, 64):
        engine = SimulationEngine(
            ReconfigurationManager(floorplan, cache_capacity=capacity),
            traffic=PoissonTraffic(["A", "B"], rate=10.0, seed=2),
            policy=ReconfigureInPlace(),
            config=SimConfig(horizon=HORIZON / 4, seconds_per_frame=1e-4),
        )
        with Timer() as timer:
            result = engine.run()
        stats = result.manager.cache_stats()
        by_capacity[capacity] = stats
        total = stats["hits"] + stats["misses"]
        hit_rate = stats["hits"] / total if total else 0.0
        print(
            f"capacity {capacity:3d}: {hit_rate:6.1%} hit rate, "
            f"{stats['evictions']} evictions, "
            f"{_throughput(result, timer.elapsed):,.0f} events/s"
        )
    # 6 distinct (region, mode) bitstreams exist: capacity 2 must thrash,
    # capacities 8 and 64 fit the whole working set
    assert by_capacity[2]["evictions"] > 0
    assert by_capacity[8]["evictions"] == 0
    assert by_capacity[64]["evictions"] == 0
    assert by_capacity[8]["hits"] > by_capacity[2]["hits"]
