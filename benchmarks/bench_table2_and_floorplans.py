"""Table II and Figures 4-5: the headline comparison and the resulting floorplans.

Table II of the paper:

    Algorithm  Design  Free-compatible areas  Wasted frames
    [8]        SDR     0                      466
    [10]       SDR     0                      306
    PA         SDR2    6                      306
    PA         SDR3    9                      346

The reproduction targets the *shape* of the table (see EXPERIMENTS.md):
the greedy tessellation baseline wastes clearly more frames than the MILP,
SDR2 reserves all six areas at little or no extra waste, and SDR3 costs more
than SDR2.  Absolute values differ because the device model is synthetic and
the MILP runs under a benchmark time limit rather than for hours.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, render_floorplan
from repro.analysis.report import TABLE2_HEADERS, table2_rows
from repro.baselines import tessellation_floorplan
from repro.floorplan.metrics import evaluate_floorplan
from repro.floorplan.verify import verify_floorplan


@pytest.fixture(scope="module")
def vipin_baseline(sdr):
    """The [8]-style architecture-aware tessellation heuristic on the SDR."""
    floorplan = tessellation_floorplan(sdr)
    assert floorplan is not None and floorplan.is_complete
    return floorplan


def test_table2_row_vipin_baseline(benchmark, sdr):
    floorplan = benchmark(tessellation_floorplan, sdr)
    assert floorplan is not None
    metrics = evaluate_floorplan(floorplan)
    assert verify_floorplan(floorplan, check_relocation=False).is_feasible
    assert metrics.wasted_frames > 0


def test_table2_row_milp_base(benchmark, sdr_base_report, vipin_baseline):
    """[10]-style MILP on the original SDR: fewer wasted frames than [8]."""
    metrics = benchmark(evaluate_floorplan, sdr_base_report.floorplan)
    baseline_metrics = evaluate_floorplan(vipin_baseline)
    assert sdr_base_report.solution.status.has_solution
    assert sdr_base_report.verification.is_feasible
    assert metrics.free_compatible_areas == 0
    assert metrics.wasted_frames < baseline_metrics.wasted_frames, (
        "the exact floorplanner must beat the tessellation heuristic on wasted frames"
    )


def test_table2_row_pa_sdr2(benchmark, sdr_base_report, sdr2_report):
    """PA on SDR2: all six areas reserved with a small impact on wasted frames."""
    metrics = benchmark(evaluate_floorplan, sdr2_report.floorplan)
    assert sdr2_report.solution.status.has_solution
    assert sdr2_report.verification.is_feasible
    assert metrics.free_compatible_areas == 6
    base = evaluate_floorplan(sdr_base_report.floorplan)
    # "small impact on the solution cost": allow a modest overhead, never a free lunch
    assert metrics.wasted_frames >= base.wasted_frames - 1e-6
    assert metrics.wasted_frames <= base.wasted_frames + 600


def test_table2_row_pa_sdr3(benchmark, sdr2_report, sdr3_report):
    """PA on SDR3 (soft mode within the benchmark budget): more areas cost more."""
    metrics = benchmark(evaluate_floorplan, sdr3_report.floorplan)
    assert sdr3_report.solution.status.has_solution
    sdr2_metrics = evaluate_floorplan(sdr2_report.floorplan)
    print(f"\nSDR3 (soft, within budget): {metrics.free_compatible_areas}/9 areas, "
          f"{metrics.wasted_frames} wasted frames "
          f"(SDR2: 6/6 areas, {sdr2_metrics.wasted_frames} wasted frames). "
          "Raise REPRO_BENCH_SDR3_TIME_LIMIT to recover more areas.")
    # the paper's relationship: SDR3 never costs less than SDR2 (346 vs 306);
    # the number of areas recovered depends on the time budget, so it is
    # reported rather than asserted
    assert metrics.free_compatible_areas >= 0
    assert metrics.wasted_frames >= sdr2_metrics.wasted_frames - 1e-6


def test_table2_summary(benchmark, sdr, sdr_base_report, sdr2_report, sdr3_report, vipin_baseline):
    entries = {
        "[8]-proxy (tessellation)": ("SDR", vipin_baseline),
        "[10]-proxy (MILP, HO)": ("SDR", sdr_base_report.floorplan),
        "PA (this work)": ("SDR2", sdr2_report.floorplan),
        "PA (this work, soft)": ("SDR3", sdr3_report.floorplan),
    }
    rows = benchmark(table2_rows, entries)
    print("\n" + format_table(TABLE2_HEADERS, rows, title="Table II (regenerated)"))
    waste = {label: row[3] for label, row in zip(entries, rows)}
    assert waste["[10]-proxy (MILP, HO)"] < waste["[8]-proxy (tessellation)"]
    assert waste["PA (this work, soft)"] >= waste["PA (this work)"]


# ----------------------------------------------------------------------
# Figures 4 and 5 — the floorplans themselves
# ----------------------------------------------------------------------
def test_fig4_sdr2_floorplan(benchmark, sdr2_report):
    text = benchmark(render_floorplan, sdr2_report.floorplan)
    print("\nFigure 4 (regenerated): SDR2 floorplan")
    print(text)
    assert "free-compatible areas:" in text
    assert sdr2_report.floorplan.num_free_compatible_areas == 6


def test_fig5_sdr3_floorplan(benchmark, sdr3_report):
    text = benchmark(render_floorplan, sdr3_report.floorplan)
    print("\nFigure 5 (regenerated): SDR3 floorplan "
          f"({sdr3_report.floorplan.num_free_compatible_areas} of 9 areas within budget)")
    print(text)
    assert "regions:" in text
