"""Batch-service throughput: parallel fan-out vs. sequential solves, and the
cold-vs-warm cache speedup of re-running an identical sweep.

Run with ``PYTHONPATH=src pytest benchmarks/bench_service_throughput.py -q``.
The parallel/sequential ratio depends on the core count of the machine (on a
single-core box the process pool only adds overhead); the warm-cache speedup
does not — replaying a sweep against a populated cache skips every solve and
must come out far above the 2x bar on any hardware.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import throughput_sweep_jobs
from repro.service import BatchSolver, SolveCache
from repro.utils.timing import Timer


@pytest.fixture(scope="module")
def grid_jobs():
    """An 8-job grid: 2 workload sizes x 2 seeds x (no relocation | 1 area)."""
    jobs = throughput_sweep_jobs()
    assert len(jobs) >= 8
    return jobs


def test_batch_vs_sequential(grid_jobs):
    """Wall-clock of one parallel batch vs. solving the jobs one by one."""
    with Timer() as sequential:
        seq_report = BatchSolver(executor="serial").solve_all(grid_jobs)
    with Timer() as parallel:
        par_report = BatchSolver(executor="process").solve_all(grid_jobs)

    assert seq_report.num_feasible == len(grid_jobs)
    assert par_report.num_feasible == len(grid_jobs)
    # parallel execution must not change the solutions
    for seq_result, par_result in zip(seq_report.results, par_report.results):
        assert seq_result.fingerprint == par_result.fingerprint
        assert seq_result.wasted_frames == par_result.wasted_frames

    ratio = sequential.elapsed / max(parallel.elapsed, 1e-9)
    print(
        f"\nsequential {sequential.elapsed:.2f}s, parallel {parallel.elapsed:.2f}s "
        f"({ratio:.2f}x, {len(grid_jobs)} jobs)"
    )


def test_warm_cache_resweep_speedup(grid_jobs, tmp_path):
    """Re-running an identical sweep against a warm cache must be >= 2x faster."""
    cache = SolveCache(tmp_path / "cache")
    solver = BatchSolver(cache=cache, executor="process")

    with Timer() as cold:
        cold_report = solver.solve_all(grid_jobs)
    with Timer() as warm:
        warm_report = solver.solve_all(grid_jobs)

    assert cold_report.cache_hits == 0
    assert warm_report.cache_hits == len(grid_jobs)  # 100% hit rate
    assert warm_report.hit_rate == 1.0

    speedup = cold.elapsed / max(warm.elapsed, 1e-9)
    print(
        f"\ncold {cold.elapsed:.2f}s, warm {warm.elapsed:.4f}s "
        f"({speedup:.0f}x over {len(grid_jobs)} jobs)"
    )
    assert speedup >= 2.0

    # a fresh process (fresh cache object) still hits 100% via the disk layer
    disk_solver = BatchSolver(cache=SolveCache(tmp_path / "cache"), executor="serial")
    disk_report = disk_solver.solve_all(grid_jobs)
    assert disk_report.cache_hits == len(grid_jobs)
