"""Ablations (A1) and scaling sweeps (A2) — not in the paper, but exercising
its design choices: O vs HO, hard vs soft relocation, solver backends,
aligned vs unaligned tessellation, and model growth with device/workload size.
"""

from __future__ import annotations

import pytest

from repro.baselines import annealing_floorplan, first_fit_floorplan, tessellation_floorplan
from repro.baselines.annealing import AnnealingOptions
from repro.bench.scenarios import scaling_problem, small_problem as _small_problem
from repro.device.catalog import synthetic_device
from repro.device.resources import ResourceVector
from repro.floorplan import FloorplanSolver, ObjectiveWeights
from repro.floorplan.metrics import evaluate_floorplan
from repro.floorplan.milp_builder import build_floorplan_milp
from repro.floorplan.problem import FloorplanProblem, Region
from repro.milp import SolverOptions
from repro.relocation import RelocationSpec
from repro.relocation.constraints import apply_relocation_constraints

FAST = SolverOptions(time_limit=60, mip_gap=0.02)


# ----------------------------------------------------------------------
# A1 — mode / backend / constraint-vs-metric ablations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["O", "HO"])
def test_ablation_o_vs_ho(benchmark, mode):
    problem = _small_problem()

    def run():
        return FloorplanSolver(problem, mode=mode, options=FAST).solve(
            weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0)
        )

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    assert report.solution.status.has_solution
    assert report.verification.is_feasible
    print(f"\n{mode}: wasted={report.metrics.wasted_frames} "
          f"time={report.solution.solve_time:.2f}s model={report.milp.model.stats()}")


@pytest.mark.parametrize("hard", [True, False], ids=["constraint", "metric"])
def test_ablation_constraint_vs_metric(benchmark, hard):
    problem = _small_problem()
    spec = (
        RelocationSpec.as_constraint({"B": 1, "C": 1})
        if hard
        else RelocationSpec.as_metric({"B": 1, "C": 1})
    )

    def run():
        return FloorplanSolver(problem, relocation=spec, options=FAST).solve()

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    assert report.solution.status.has_solution
    assert report.floorplan.num_free_compatible_areas == 2


@pytest.mark.parametrize("backend", ["highs", "branch-bound"])
def test_ablation_solver_backend(benchmark, backend):
    """The pure-Python branch and bound solves the same tiny model too."""
    device = synthetic_device(6, 2, bram_every=3, dsp_every=0, name=f"backend-{backend}")
    problem = FloorplanProblem(
        device,
        [Region("A", ResourceVector(CLB=2)), Region("B", ResourceVector(CLB=1, BRAM=1))],
        name=f"backend-{backend}",
    )
    options = SolverOptions(backend=backend, time_limit=120)

    def run():
        return FloorplanSolver(problem, options=options).solve(
            weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0)
        )

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    assert report.solution.status.has_solution
    assert report.verification.is_feasible
    assert report.metrics.wasted_frames >= 0


@pytest.mark.parametrize(
    "heuristic",
    ["first-fit", "tessellation-aligned", "tessellation-unaligned", "annealing"],
)
def test_ablation_heuristics(benchmark, heuristic):
    problem = _small_problem()
    runners = {
        "first-fit": lambda: first_fit_floorplan(problem),
        "tessellation-aligned": lambda: tessellation_floorplan(problem),
        "tessellation-unaligned": lambda: tessellation_floorplan(problem, align_rows=False),
        "annealing": lambda: annealing_floorplan(
            problem, AnnealingOptions(iterations=3000, seed=1)
        ),
    }
    floorplan = benchmark.pedantic(runners[heuristic], iterations=1, rounds=1)
    assert floorplan is not None and floorplan.is_complete
    print(f"\n{heuristic}: wasted={evaluate_floorplan(floorplan).wasted_frames}")


# ----------------------------------------------------------------------
# A2 — model-size scaling with device width and relocation copies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("width", [10, 16, 24, 33])
def test_scaling_model_build_with_device_width(benchmark, width):
    problem = scaling_problem(width)
    milp = benchmark(build_floorplan_milp, problem)
    stats = milp.model.stats()
    print(f"\nwidth={width}: {stats}")
    assert stats.num_variables > 0


@pytest.mark.parametrize("copies", [0, 1, 2, 3])
def test_scaling_model_build_with_relocation_copies(benchmark, copies):
    problem = _small_problem(name=f"copies-{copies}")
    spec = RelocationSpec.as_constraint({"B": copies}) if copies else RelocationSpec.empty()

    def build():
        milp = build_floorplan_milp(
            problem, extra_areas=spec.build_area_specs(problem) if copies else ()
        )
        if copies:
            apply_relocation_constraints(milp)
        return milp

    milp = benchmark(build)
    stats = milp.model.stats()
    print(f"\ncopies={copies}: {stats}")
    assert stats.num_constraints > 0
