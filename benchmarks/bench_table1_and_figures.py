"""Table I and Figures 1-3: inputs, compatibility, partitioning, offsets.

Run with ``pytest benchmarks/bench_table1_and_figures.py --benchmark-only -s``
to also see the regenerated table/figure text.
"""

from __future__ import annotations

from repro.analysis import format_table, render_partition
from repro.analysis.render import render_rect_overlay
from repro.analysis.report import TABLE1_HEADERS, table1_rows
from repro.device import columnar_partition, simple_two_type_device
from repro.device.catalog import figure2_device
from repro.floorplan import Rect
from repro.relocation import areas_compatible
from repro.workloads.sdr import SDR_FRAMES


# ----------------------------------------------------------------------
# Table I — SDR resource requirements
# ----------------------------------------------------------------------
def test_table1_sdr_requirements(benchmark, sdr):
    rows = benchmark(table1_rows, sdr)
    print("\n" + format_table(TABLE1_HEADERS, rows, title="Table I (regenerated)"))
    by_region = {row[0]: row for row in rows}
    for region, frames in SDR_FRAMES.items():
        assert by_region[region][4] == frames, f"frame count mismatch for {region}"
    assert by_region["Total"] == ["Total", 104, 5, 11, 4202]


# ----------------------------------------------------------------------
# Figure 1 — compatible vs non-compatible areas
# ----------------------------------------------------------------------
def test_fig1_compatibility_example(benchmark):
    device = simple_two_type_device()
    partition = columnar_partition(device)
    # three equally-sized areas: A/B share the tile layout, C is shifted by one
    area_a = Rect(3, 0, 3, 2)
    area_b = Rect(8, 3, 3, 2)
    area_c = Rect(4, 2, 3, 2)

    def check():
        return (
            areas_compatible(partition, area_a, area_b),
            areas_compatible(partition, area_a, area_c),
        )

    compatible_ab, compatible_ac = benchmark(check)
    print("\nFigure 1 (regenerated): A/B compatible =", compatible_ab,
          ", A/C compatible =", compatible_ac)
    print(render_rect_overlay(device, {"A": area_a, "B": area_b, "C": area_c}))
    assert compatible_ab is True
    assert compatible_ac is False


# ----------------------------------------------------------------------
# Figure 2 — columnar partitioning with a hard processor block
# ----------------------------------------------------------------------
def test_fig2_columnar_partitioning(benchmark):
    device = figure2_device()
    partition = benchmark(columnar_partition, device)
    print("\nFigure 2 (regenerated):")
    print(render_partition(partition))
    assert partition.num_portions == 5
    assert len(partition.forbidden_areas) == 1
    partition.check_properties()


def test_fig2_partitioning_scales_to_sdr_device(benchmark, sdr):
    partition = benchmark(columnar_partition, sdr.device)
    assert partition.num_portions >= 9
    assert partition.num_types == 3


# ----------------------------------------------------------------------
# Figure 3 — offset variables k[n,p] / o[n,p]
# ----------------------------------------------------------------------
def test_fig3_offset_variables(benchmark):
    from repro.device.catalog import synthetic_device
    from repro.device.resources import ResourceVector
    from repro.floorplan.milp_builder import build_floorplan_milp
    from repro.floorplan.problem import FloorplanProblem, Region
    from repro.milp import SolverOptions, solve
    from repro.relocation.constraints import apply_relocation_constraints
    from repro.relocation.spec import RelocationSpec

    device = synthetic_device(10, 4, bram_every=4, dsp_every=7, name="fig3")
    problem = FloorplanProblem(
        device, [Region("R", ResourceVector(CLB=2, BRAM=1))], name="fig3"
    )
    spec = RelocationSpec.as_constraint({"R": 1})

    def build_and_solve():
        milp = build_floorplan_milp(problem, extra_areas=spec.build_area_specs(problem))
        extension = apply_relocation_constraints(milp)
        milp.set_objective()
        solution = solve(milp.model, SolverOptions(time_limit=30))
        return milp, extension, solution

    milp, extension, solution = benchmark(build_and_solve)
    assert solution.status.has_solution

    print("\nFigure 3 (regenerated): k[n,p] and o[n,p] for region 'R'")
    k_values = [int(round(solution.value(v))) for v in milp.k["R"]]
    o_values = [int(round(solution.value(v))) for v in extension.offset_vars("R")]
    print("  k[R,p] =", k_values)
    print("  o[R,p] =", o_values)
    # eq. 4: exactly one offset; eq. 5: it marks the first covered portion
    assert sum(o_values) == 1
    first_covered = k_values.index(1)
    assert o_values[first_covered] == 1
