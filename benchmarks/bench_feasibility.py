"""Section VI feasibility analysis: one free-compatible area per region.

The paper's finding: the matched filter and the video decoder are *not*
relocatable (no free-compatible area exists for them), the other three regions
are.  The harness first tries the fast relocation-aware greedy constructor; if
it fails for a region, the MILP (O mode, bounded by the benchmark time limit)
is consulted to look for a solution the greedy missed.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.baselines import relocation_aware_greedy
from repro.bench.scenarios import bench_time_limit
from repro.floorplan import FloorplanSolver
from repro.floorplan.verify import verify_floorplan
from repro.milp import SolverOptions
from repro.relocation import RelocationSpec
from repro.workloads.sdr import SDR_REGION_NAMES, SDR_RELOCATABLE


_FEASIBILITY_CACHE: dict = {}


def _feasibility_for(problem, region: str) -> tuple:
    """(found, how) — greedy first, MILP as a bounded fallback (cached)."""
    key = (problem.name, region)
    if key in _FEASIBILITY_CACHE:
        return _FEASIBILITY_CACHE[key]
    result = _feasibility_uncached(problem, region)
    _FEASIBILITY_CACHE[key] = result
    return result


def _feasibility_uncached(problem, region: str) -> tuple:
    spec = RelocationSpec.as_constraint({region: 1})
    greedy = relocation_aware_greedy(problem, spec)
    if greedy is not None and verify_floorplan(greedy).is_feasible:
        return True, "greedy"
    options = SolverOptions(time_limit=bench_time_limit(60.0), mip_gap=0.1)
    report = FloorplanSolver(problem, relocation=spec, mode="O", options=options).solve()
    if report.feasible:
        return True, "milp"
    status = report.solution.status.value
    return False, f"milp:{status}"


@pytest.mark.parametrize("region", SDR_REGION_NAMES)
def test_feasibility_single_region(benchmark, sdr, region):
    found, how = benchmark.pedantic(
        _feasibility_for, args=(sdr, region), iterations=1, rounds=1
    )
    expected = region in SDR_RELOCATABLE
    print(f"\n{region}: free-compatible area {'found' if found else 'not found'} ({how}); "
          f"paper: {'relocatable' if expected else 'not relocatable'}")
    if expected:
        # the paper's relocatable regions must also be relocatable here
        assert found, f"{region} should admit a free-compatible area"
    else:
        # for MF/VD the solver may time out before *proving* infeasibility;
        # the reproduction claim is only that no area is found within budget
        assert not found or how == "milp", (
            f"{region} unexpectedly admitted a free-compatible area via {how}"
        )


def test_feasibility_summary(benchmark, sdr):
    def build_rows():
        rows = []
        for region in SDR_REGION_NAMES:
            found, how = _feasibility_for(sdr, region)
            rows.append([region, "yes" if found else "no", how,
                         "yes" if region in SDR_RELOCATABLE else "no"])
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    print("\n" + format_table(
        ["Region", "FC area found", "method", "paper says relocatable"],
        rows,
        title="Feasibility analysis (Section VI)",
    ))
    found_set = {row[0] for row in rows if row[1] == "yes"}
    assert set(SDR_RELOCATABLE) <= found_set
