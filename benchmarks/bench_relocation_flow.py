"""RT experiment: end-to-end bitstream relocation throughput.

Measures the simulated configuration path (bitstream generation, the
relocation filter, configuration-memory writes) on a floorplan produced with
relocation constraints — the executable version of the paper's motivating
scenario.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import relocation_problem
from repro.bitstream import generate_bitstream, relocate_bitstream
from repro.device.catalog import synthetic_device
from repro.device.partition import columnar_partition
from repro.floorplan import FloorplanSolver, Rect
from repro.milp import SolverOptions
from repro.relocation import RelocationSpec
from repro.runtime import ReconfigurationManager, round_robin_schedule


@pytest.fixture(scope="module")
def relocation_floorplan():
    problem = relocation_problem()
    spec = RelocationSpec.as_constraint({"filter": 1, "decoder": 1})
    report = FloorplanSolver(
        problem, relocation=spec, options=SolverOptions(time_limit=60, mip_gap=0.02)
    ).solve()
    assert report.feasible
    return report.floorplan


def test_bitstream_generation_throughput(benchmark):
    device = synthetic_device(16, 8, bram_every=5, dsp_every=9, name="gen-dev")
    rect = Rect(0, 0, 4, 4)
    bitstream = benchmark(generate_bitstream, device, rect, "throughput-module")
    assert bitstream.is_crc_valid()


def test_relocation_filter_throughput(benchmark):
    device = synthetic_device(16, 8, bram_every=5, dsp_every=9, name="filter-dev")
    partition = columnar_partition(device)
    source = generate_bitstream(device, Rect(0, 0, 3, 3), "reloc-module")
    relocated = benchmark(relocate_bitstream, source, Rect(0, 4, 3, 3), device, partition)
    assert relocated.is_crc_valid()


def test_runtime_schedule_replay(benchmark, relocation_floorplan):
    """Replay a mode schedule and relocate each region once."""

    def run():
        manager = ReconfigurationManager(relocation_floorplan)
        schedule = round_robin_schedule(list(relocation_floorplan.placements), rounds=2)
        for region, mode in schedule:
            manager.reconfigure(region, mode)
        for region in relocation_floorplan.placements:
            if manager.available_relocation_targets(region):
                manager.relocate(region)
        return manager

    manager = benchmark.pedantic(run, iterations=1, rounds=3)
    summary = manager.trace.summary()
    print(f"\nruntime trace: {summary}")
    assert summary["relocate"] == len(relocation_floorplan.placements)
    assert summary["frames_written"] > 0
