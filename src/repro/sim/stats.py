"""Simulation statistics: latency, utilization, blocking.

Per-request records accumulate into :class:`SimStats`, which computes
percentile summaries (nearest-rank, so two identical runs format to
byte-identical tables), busy-period utilization and blocking probabilities,
and renders them through the :mod:`repro.analysis` table helpers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import (
    SIM_LATENCY_HEADERS,
    SIM_UTILIZATION_HEADERS,
    format_table,
    sim_latency_rows,
    sim_utilization_rows,
)

PERCENTILES = (50, 90, 99)


@dataclasses.dataclass(frozen=True)
class RequestRecord:
    """The lifecycle of one mode-activation request.

    ``arrival <= start <= finish``; ``ok`` is false for requests the policy
    could not serve (blocked by faults, missing free areas, queue overflow).
    """

    request_id: int
    region: str
    mode: str
    arrival: float
    start: float
    finish: float
    action: str
    frames: int
    ok: bool
    detail: str = ""

    @property
    def latency(self) -> float:
        """Arrival-to-finish sojourn time."""
        return self.finish - self.arrival

    @property
    def wait(self) -> float:
        """Time spent queued before service started."""
        return self.start - self.arrival

    @property
    def service(self) -> float:
        """Time spent in service (reconfiguration port occupancy)."""
        return self.finish - self.start


def percentile(values: Sequence[float], pct: float, presorted: bool = False) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``presorted=True`` skips the sort so callers summarizing several
    percentiles of one sample (p50/p90/p99) can sort once and share.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    ordered = values if presorted else sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def histogram(
    values: Sequence[float], bins: int = 10, upper: Optional[float] = None
) -> List[Tuple[float, float, int]]:
    """Fixed-width histogram as ``(lo, hi, count)`` triples.

    ``upper`` defaults to the max value; values at the upper edge land in the
    last bin.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    if not values:
        return []
    top = float(upper if upper is not None else max(values))
    top = max(top, 1e-12)
    width = top / bins
    counts = [0] * bins
    for value in values:
        index = min(int(value / width), bins - 1)
        counts[index] += 1
    return [(i * width, (i + 1) * width, counts[i]) for i in range(bins)]


class SimStats:
    """Accumulates request records and exposes summary tables."""

    def __init__(self) -> None:
        self.records: List[RequestRecord] = []
        self.fault_times: List[float] = []
        self.rejected_arrivals = 0  # dropped before queueing (queue overflow)

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def record(self, record: RequestRecord) -> None:
        self.records.append(record)

    def record_fault(self, time: float) -> None:
        self.fault_times.append(time)

    def record_rejected_arrival(self) -> None:
        self.rejected_arrivals += 1

    def merge(self, other: "SimStats") -> None:
        """Fold another run's records into this one (fleet roll-up).

        Records keep their original request ids; summaries, percentiles and
        blocking probabilities are computed over the union, which is what a
        fleet-level SLO check needs.
        """
        self.records.extend(other.records)
        self.fault_times.extend(other.fault_times)
        self.rejected_arrivals += other.rejected_arrivals

    @classmethod
    def merged(cls, parts: Sequence["SimStats"]) -> "SimStats":
        """A new :class:`SimStats` holding every record of ``parts``."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def served(self) -> List[RequestRecord]:
        """Requests the policy completed successfully."""
        return [record for record in self.records if record.ok]

    @property
    def blocked(self) -> List[RequestRecord]:
        """Requests the policy could not serve."""
        return [record for record in self.records if not record.ok]

    @property
    def blocking_probability(self) -> float:
        """Fraction of offered requests that were blocked or dropped."""
        offered = len(self.records) + self.rejected_arrivals
        if offered == 0:
            return 0.0
        return (len(self.blocked) + self.rejected_arrivals) / offered

    def actions(self) -> Dict[str, int]:
        """Completed-request counts per policy action label."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.action] = counts.get(record.action, 0) + 1
        return dict(sorted(counts.items()))

    @staticmethod
    def _summary(values: Sequence[float]) -> Dict[str, float]:
        summary: Dict[str, float] = {"count": len(values)}
        if values:
            ordered = sorted(values)  # one sort shared across every percentile
            summary["mean"] = sum(ordered) / len(ordered)
            summary["max"] = ordered[-1]
            for pct in PERCENTILES:
                summary[f"p{pct}"] = percentile(ordered, pct, presorted=True)
        return summary

    def latency_summary(self) -> Dict[str, Dict[str, float]]:
        """Percentile summaries of latency / wait / service over served requests."""
        served = self.served
        return {
            "latency": self._summary([record.latency for record in served]),
            "wait": self._summary([record.wait for record in served]),
            "service": self._summary([record.service for record in served]),
        }

    def latency_histogram(self, bins: int = 10) -> List[Tuple[float, float, int]]:
        """Histogram of served-request latencies."""
        return histogram([record.latency for record in self.served], bins=bins)

    # ------------------------------------------------------------------
    # utilization
    # ------------------------------------------------------------------
    def port_busy_time(self) -> float:
        """Total reconfiguration-port occupancy across all requests."""
        return sum(record.service for record in self.records)

    def port_utilization(self, num_ports: int, makespan: float) -> float:
        """Fraction of total port-seconds spent serving requests."""
        if num_ports <= 0:
            raise ValueError("num_ports must be positive")
        if makespan <= 0:
            return 0.0
        return self.port_busy_time() / (num_ports * makespan)

    def region_busy_times(self) -> Dict[str, float]:
        """Per-region reconfiguration busy time (sum of service periods)."""
        busy: Dict[str, float] = {}
        for record in self.records:
            busy[record.region] = busy.get(record.region, 0.0) + record.service
        return dict(sorted(busy.items()))

    def region_counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-region ``(served, blocked)`` counts."""
        counts: Dict[str, List[int]] = {}
        for record in self.records:
            entry = counts.setdefault(record.region, [0, 0])
            entry[0 if record.ok else 1] += 1
        return {region: tuple(entry) for region, entry in sorted(counts.items())}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def latency_rows(self) -> List[List[object]]:
        """Rows for the latency-percentile table."""
        return sim_latency_rows(self.latency_summary())

    def utilization_rows(
        self, num_ports: int, makespan: float
    ) -> List[List[object]]:
        """Rows for the utilization table (ports first, then regions)."""
        entries: Dict[str, Mapping[str, object]] = {}
        entries["port(s)"] = {
            "busy": self.port_busy_time(),
            "utilization": self.port_utilization(num_ports, makespan),
            "served": len(self.served),
            "blocked": len(self.blocked) + self.rejected_arrivals,
        }
        busy_times = self.region_busy_times()
        region_counts = self.region_counts()
        for region, busy in busy_times.items():
            served, blocked = region_counts.get(region, (0, 0))
            entries[region] = {
                "busy": busy,
                "utilization": busy / makespan if makespan > 0 else 0.0,
                "served": served,
                "blocked": blocked,
            }
        return sim_utilization_rows(entries)

    def format_latency(self, title: str | None = "Latency percentiles (s)") -> str:
        """The latency summary as a fixed-width table."""
        return format_table(SIM_LATENCY_HEADERS, self.latency_rows(), title=title)

    def format_utilization(
        self,
        num_ports: int,
        makespan: float,
        title: str | None = "Utilization",
    ) -> str:
        """The utilization summary as a fixed-width table."""
        return format_table(
            SIM_UTILIZATION_HEADERS,
            self.utilization_rows(num_ports, makespan),
            title=title,
        )

    def __len__(self) -> int:
        return len(self.records)
