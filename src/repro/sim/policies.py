"""Pluggable decision policies for serving mode-activation requests.

A policy is handed the live :class:`ReconfigurationManager` and one
:class:`~repro.sim.traffic.ModeRequest` and decides *how* to satisfy it:

* :class:`ReconfigureInPlace` — always load at the current location; any
  rejection (fault mask, unknown mode) blocks the request;
* :class:`RelocateFirst` — when the current location is fault-masked, move
  the loaded module into a reserved free-compatible area first, then load the
  requested mode there;
* :class:`ResolveViaService` — escalate past relocation: when neither
  in-place nor relocation can serve the request, re-floorplan live through
  the :mod:`repro.service` portfolio (under a solver deadline budget), swap
  in a manager on the new floorplan and reload the displaced modules.

Policies return a :class:`PolicyOutcome`; the engine turns ``frames`` into
service time on the reconfiguration port and ``extra_time`` into additional
latency (the virtual cost of a re-floorplan).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Optional, Sequence

from repro.floorplan.metrics import ObjectiveWeights
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationSpec
from repro.runtime.manager import ReconfigurationError, ReconfigurationManager
from repro.sim.traffic import ModeRequest


@dataclasses.dataclass
class PolicyOutcome:
    """What a policy did with one request.

    Attributes
    ----------
    ok:
        Whether the request was served.
    action:
        Label for the stats tables (``"reconfigure"``, ``"relocate+reconfigure"``,
        ``"resolve+reconfigure"``, ``"blocked"``).
    frames:
        Configuration frames written (drives port service time).
    extra_time:
        Additional virtual seconds the request occupies the configuration
        path beyond its frame writes — a live re-floorplan's solver budget.
        The engine keeps the port and region busy for it: while the manager
        is being replaced no other reconfiguration can proceed.
    detail:
        Failure reason for blocked requests.
    new_manager:
        A replacement manager after a live re-floorplan (``None`` otherwise).
    """

    ok: bool
    action: str
    frames: int = 0
    extra_time: float = 0.0
    detail: str = ""
    new_manager: Optional[ReconfigurationManager] = None


class Policy(abc.ABC):
    """Base class of decision policies."""

    name = "policy"

    @abc.abstractmethod
    def apply(self, manager: ReconfigurationManager, request: ModeRequest) -> PolicyOutcome:
        """Serve ``request`` against ``manager`` and report what happened."""


def placement_fault_masked(manager: ReconfigurationManager, region: str) -> bool:
    """Whether ``region``'s current placement sits on fault-masked fabric.

    This is the shared "can moving things help?" predicate: relocation and
    live re-floorplanning only fix *placement* problems — an unknown mode or
    region fails identically anywhere on the fabric (and an unknown region
    has no placement at all, so the answer is ``False``).
    """
    try:
        return manager.is_fault_masked(manager.current_location(region))
    except ReconfigurationError:
        return False


class ReconfigureInPlace(Policy):
    """Reconfigure at the current location or fail — the paper's baseline."""

    name = "reconfigure-in-place"

    def apply(self, manager: ReconfigurationManager, request: ModeRequest) -> PolicyOutcome:
        try:
            bitstream = manager.reconfigure(request.region, request.mode)
        except ReconfigurationError as exc:
            return PolicyOutcome(ok=False, action="blocked", detail=str(exc))
        return PolicyOutcome(ok=True, action="reconfigure", frames=bitstream.num_frames)


class RelocateFirst(Policy):
    """Route around faults by relocating into reserved free areas.

    When the region's current rectangle is fault-masked (or the in-place load
    is otherwise rejected) and the region has a loaded module, the module is
    relocated into the first available free-compatible area and the requested
    mode is loaded there.  A region with no loaded module and a fault-masked
    home cannot relocate (there is nothing to move) and blocks — the
    escalation :class:`ResolveViaService` handles.
    """

    name = "relocate-first"

    def apply(self, manager: ReconfigurationManager, request: ModeRequest) -> PolicyOutcome:
        try:
            bitstream = manager.reconfigure(request.region, request.mode)
            return PolicyOutcome(
                ok=True, action="reconfigure", frames=bitstream.num_frames
            )
        except ReconfigurationError as exc:
            reason = str(exc)
        if not placement_fault_masked(manager, request.region):
            return PolicyOutcome(ok=False, action="blocked", detail=reason)
        if manager.active_module(request.region) is None:
            return PolicyOutcome(ok=False, action="blocked", detail=reason)
        try:
            moved = manager.relocate(request.region)
        except ReconfigurationError as exc:
            return PolicyOutcome(ok=False, action="blocked", detail=str(exc))
        try:
            bitstream = manager.reconfigure(request.region, request.mode)
        except ReconfigurationError as exc:
            # the move physically happened: charge its frames even though
            # the requested mode could not be loaded afterwards
            return PolicyOutcome(
                ok=False,
                action="blocked",
                frames=moved.num_frames,
                detail=str(exc),
            )
        return PolicyOutcome(
            ok=True,
            action="relocate+reconfigure",
            frames=moved.num_frames + bitstream.num_frames,
        )


class ResolveViaService(Policy):
    """Escalate to a live re-floorplan through the service portfolio.

    Requests are first tried with :class:`RelocateFirst`; when that blocks,
    the floorplanning problem is re-solved via
    :func:`repro.service.portfolio.run_portfolio` (serial executor, ``best``
    policy — fully deterministic), a fresh manager is built on the winning
    floorplan, previously-loaded modules are reloaded at their new homes and
    the request is served there.  The sim charges ``resolve_latency`` virtual
    seconds for the re-solve, standing in for the solver deadline budget.
    """

    name = "resolve-via-service"

    def __init__(
        self,
        options: Optional[SolverOptions] = None,
        strategies: Optional[Sequence] = None,
        weights: Optional[ObjectiveWeights] = None,
        deadline: Optional[float] = None,
        resolve_latency: float = 1.0,
        relocation: Optional[RelocationSpec] = None,
    ) -> None:
        if resolve_latency < 0:
            raise ValueError("resolve_latency must be non-negative")
        self.options = options or SolverOptions(time_limit=30, mip_gap=0.05)
        self.strategies = strategies
        self.weights = weights
        self.deadline = deadline
        self.resolve_latency = float(resolve_latency)
        self.relocation = relocation
        self._fallback = RelocateFirst()
        self.resolve_count = 0

    # ------------------------------------------------------------------
    def apply(self, manager: ReconfigurationManager, request: ModeRequest) -> PolicyOutcome:
        outcome = self._fallback.apply(manager, request)
        if outcome.ok:
            return outcome
        # a re-floorplan can only fix placement problems, so don't burn a
        # solve on failures (unknown mode/region) it cannot change
        if not placement_fault_masked(manager, request.region):
            return outcome
        return self._resolve(manager, request, outcome.detail)

    def _relocation_spec(self, manager: ReconfigurationManager) -> Optional[RelocationSpec]:
        """Reuse the caller-provided spec or rebuild it from the floorplan."""
        if self.relocation is not None:
            return self.relocation
        copies: Dict[str, int] = {}
        for area in manager.floorplan.free_areas.values():
            if area.compatible_with is not None:
                copies[area.compatible_with] = copies.get(area.compatible_with, 0) + 1
        return RelocationSpec.as_constraint(copies) if copies else None

    def _resolve(
        self, manager: ReconfigurationManager, request: ModeRequest, reason: str
    ) -> PolicyOutcome:
        from repro.service.portfolio import DEFAULT_STRATEGIES, run_portfolio
        from repro.sim.faults import fault_masked_problem

        self.resolve_count += 1
        # faulty rectangles become forbidden fabric, so the re-solve places
        # everything on healthy tiles instead of re-deriving the broken plan
        problem = fault_masked_problem(
            manager.floorplan.problem, manager.faulty_rects
        )
        result = run_portfolio(
            problem,
            relocation=self._relocation_spec(manager),
            options=self.options,
            weights=self.weights,
            strategies=self.strategies or DEFAULT_STRATEGIES,
            deadline=self.deadline,
            policy="best",
            executor="serial",
        )
        winner = result.winner_result
        if winner is None or winner.floorplan is None:
            return PolicyOutcome(
                ok=False,
                action="blocked",
                extra_time=self.resolve_latency,
                detail=f"{reason}; re-floorplan found no feasible placement",
            )

        from repro.floorplan.placement import Floorplan

        floorplan = Floorplan.from_dict(problem, winner.floorplan)

        # the replacement manager keeps the same bitstream cache store
        # (counters and capacity persist across the swap; entries are
        # device-qualified, and the masked device has a new name, so old
        # bitstreams simply stop matching) and inherits the fault mask
        # without re-recording trace events
        fresh = ReconfigurationManager(
            floorplan,
            cache=manager.bitstream_cache,
            clock=manager.clock,
            allowed_modes=manager.allowed_modes,
        )
        # the retired device's bitstreams can never hit again (keys are
        # device-qualified) — purge them so they stop occupying LRU capacity
        fresh.bitstream_cache.drop_device(manager.device.name)
        for rect, detail in manager.faults:
            fresh.inject_fault(rect, detail=detail or "carried over", record=False)

        frames = 0
        # reload every module that was live before the re-floorplan, then the
        # requested mode; a placement that still collides with a fault blocks
        try:
            for region in floorplan.placements:
                if region == request.region:
                    continue
                active = manager.active_module(region)
                if active is not None:
                    frames += fresh.reconfigure(region, active).num_frames
            frames += fresh.reconfigure(request.region, request.mode).num_frames
        except ReconfigurationError as exc:
            return PolicyOutcome(
                ok=False,
                action="blocked",
                extra_time=self.resolve_latency,
                detail=f"re-floorplan placement rejected: {exc}",
            )
        return PolicyOutcome(
            ok=True,
            action="resolve+reconfigure",
            frames=frames,
            extra_time=self.resolve_latency,
            new_manager=fresh,
        )
