"""Fault injection plans.

A fault masks the rectangle currently hosting a region's module as broken
fabric (see :meth:`~repro.runtime.manager.ReconfigurationManager.inject_fault`):
the next load touching that rectangle is rejected, which forces the decision
policy to relocate the module into a floorplanner-reserved free area or to
re-floorplan live.  Plans only *schedule* faults — the engine resolves the
region's rectangle at the fault's virtual time, so a module that already
relocated away is hit at its current location, not its home.
"""

from __future__ import annotations

import abc
import dataclasses
import re
from typing import List, Sequence, Tuple

from repro.device.grid import FPGADevice, ForbiddenRect
from repro.floorplan.geometry import Rect
from repro.floorplan.problem import FloorplanProblem
from repro.utils.rng import make_rng


_FAULT_NAME = re.compile(r"^fault\d+$")
_MASK_SUFFIX = re.compile(r"\+\d+faults$")


def poisson_times(rate: float, horizon: float, seed: int = 0) -> List[float]:
    """Arrival instants of a Poisson process with ``rate`` events/unit-time.

    The shared primitive behind every stochastic fault schedule — virtual-time
    fabric faults here, wall-clock chaos events in :mod:`repro.chaos.plan`.
    Deterministic for a given ``(rate, horizon, seed)``, and bitwise identical
    to the scalar gap-sampling loop it replaced (the batched generator
    consumes the same draws in the same order; see
    :func:`repro.sim.traffic.batched_poisson_times`).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    from repro.sim.traffic import batched_poisson_times

    times = batched_poisson_times(make_rng(seed), rate, horizon)
    return [float(time) for time in times]


def fault_masked_problem(
    problem: FloorplanProblem, faults: Sequence[Rect]
) -> FloorplanProblem:
    """The same floorplanning instance on a device with faults forbidden.

    Each faulty rectangle becomes a :class:`ForbiddenRect`, so a re-solve
    places regions and free-compatible areas only on healthy fabric — this is
    what makes the :class:`~repro.sim.policies.ResolveViaService` escalation
    route around faults instead of re-deriving the same broken placement.

    The function is idempotent across successive escalations: faults already
    present as ``faultN`` rects on the device are not re-added, names stay
    unique, and the ``+Nfaults`` name suffix reflects the fault total rather
    than compounding (``dev+2faults``, never ``dev+1faults+1faults``).
    """
    device = problem.device
    existing_fault_rects = {
        (rect.col, rect.row, rect.width, rect.height)
        for rect in device.forbidden
        if _FAULT_NAME.match(rect.name)
    }
    fresh = [
        rect
        for rect in faults
        if (rect.col, rect.row, rect.width, rect.height) not in existing_fault_rects
    ]
    if not fresh:
        return problem
    grid = [
        [device.tile_type_at(col, row) for row in range(device.height)]
        for col in range(device.width)
    ]
    forbidden = list(device.forbidden) + [
        ForbiddenRect(
            name=f"fault{len(existing_fault_rects) + index}",
            col=rect.col,
            row=rect.row,
            width=rect.width,
            height=rect.height,
        )
        for index, rect in enumerate(fresh)
    ]
    base_name = _MASK_SUFFIX.sub("", device.name)
    total_faults = len(existing_fault_rects) + len(fresh)
    masked_device = FPGADevice(
        f"{base_name}+{total_faults}faults", grid, forbidden=forbidden
    )
    base_problem = _MASK_SUFFIX.sub("", problem.name.removesuffix("+faultmask"))
    return FloorplanProblem(
        device=masked_device,
        regions=problem.regions,
        connections=problem.connections,
        pins=problem.pins,
        name=f"{base_problem}+faultmask",
    )


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: the fabric under ``region`` breaks at ``time``."""

    time: float
    region: str
    detail: str = ""


class FaultPlan(abc.ABC):
    """Base class of fault injection plans."""

    @abc.abstractmethod
    def events(self, horizon: float) -> List[FaultEvent]:
        """All faults with ``time < horizon``, in non-decreasing time order."""


class ScheduledFaults(FaultPlan):
    """A fixed, fully deterministic list of ``(time, region)`` faults."""

    def __init__(self, faults: Sequence[Tuple[float, str]]) -> None:
        self.faults = tuple(
            FaultEvent(time=float(time), region=region, detail="scheduled fault")
            for time, region in sorted(faults)
        )
        if any(fault.time < 0 for fault in self.faults):
            raise ValueError("fault times must be non-negative")

    def events(self, horizon: float) -> List[FaultEvent]:
        return [fault for fault in self.faults if fault.time < horizon]


class RandomFaults(FaultPlan):
    """Poisson fault arrivals striking a uniformly-chosen region."""

    def __init__(self, regions: Sequence[str], rate: float, seed: int = 0) -> None:
        if not regions:
            raise ValueError("need at least one region to fault")
        if rate <= 0:
            raise ValueError(f"fault rate must be positive, got {rate}")
        self.regions = list(regions)
        self.rate = float(rate)
        self.seed = seed

    def events(self, horizon: float) -> List[FaultEvent]:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        times = poisson_times(self.rate, horizon, seed=self.seed)
        # draw regions from an independent stream so hoisting the arrival
        # times did not have to change their distribution
        rng = make_rng(self.seed + 1)
        return [
            FaultEvent(
                time=time,
                region=self.regions[int(rng.integers(len(self.regions)))],
                detail="random fault",
            )
            for time in times
        ]
