"""The discrete-event online reconfiguration simulator.

The engine binds an arrival process (:mod:`repro.sim.traffic`), a fault plan
(:mod:`repro.sim.faults`) and a decision policy (:mod:`repro.sim.policies`)
to a live :class:`~repro.runtime.manager.ReconfigurationManager` and plays
the whole scenario on virtual time:

* requests queue for a bounded number of **reconfiguration ports** (one, on
  most real devices — the ICAP is a serial resource) and for their target
  region (a region mid-reconfiguration cannot accept the next mode yet);
* service time is the written frame volume times ``seconds_per_frame`` plus
  any policy surcharge (a live re-floorplan's solver budget);
* faults strike the rectangle a region occupies *at the fault's virtual
  time*, so modules that relocated away are hit at their current home;
* every request's arrival/start/finish lands in :class:`~repro.sim.stats.SimStats`.

Determinism: the event queue breaks ties deterministically, all randomness
is seeded inside the traffic/fault generators, and policies run solvers in
serial mode — two runs of the same scenario produce byte-identical reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.runtime.manager import ReconfigurationError, ReconfigurationManager
from repro.runtime.trace import RuntimeTrace
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue, SimEventKind
from repro.sim.faults import FaultPlan
from repro.sim.policies import Policy, PolicyOutcome
from repro.sim.stats import RequestRecord, SimStats
from repro.sim.traffic import ModeRequest, TrafficModel


@dataclasses.dataclass
class SimConfig:
    """Knobs of one simulation run.

    Attributes
    ----------
    horizon:
        Virtual seconds of traffic to generate; in-flight work drains past it.
    seconds_per_frame:
        Port service time per configuration frame written.
    num_ports:
        Parallel reconfiguration ports (1 models the single ICAP).
    queue_capacity:
        Maximum queued (not yet started) requests; arrivals past it are
        dropped and counted as blocked.  ``None`` means unbounded.
    """

    horizon: float = 100.0
    seconds_per_frame: float = 1e-4
    num_ports: int = 1
    queue_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.seconds_per_frame <= 0:
            raise ValueError("seconds_per_frame must be positive")
        if self.num_ports <= 0:
            raise ValueError("num_ports must be positive")
        if self.queue_capacity is not None and self.queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")


@dataclasses.dataclass
class _Pending:
    """A request in flight through the engine."""

    request_id: int
    request: ModeRequest
    arrival: float
    start: float = 0.0


@dataclasses.dataclass
class SimResult:
    """Everything one simulation run produced."""

    stats: SimStats
    config: SimConfig
    makespan: float
    events_processed: int
    manager: ReconfigurationManager
    traces: List[RuntimeTrace]
    refloorplans: int = 0

    def trace_summary(self) -> Dict[str, int]:
        """Merged run-time trace counters across manager generations."""
        merged: Dict[str, int] = {}
        for trace in self.traces:
            for key, value in trace.summary().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def format_report(self) -> str:
        """The full textual report (deterministic for seeded scenarios)."""
        lines = [
            f"simulated {len(self.stats)} requests over {self.makespan:.6f}s "
            f"({self.events_processed} events, {self.refloorplans} re-floorplans)",
            f"actions: {self.stats.actions()}",
            f"blocking probability: {self.stats.blocking_probability:.4f}",
            f"bitstream cache: {self.manager.cache_stats()}",
            f"trace: {self.trace_summary()}",
            "",
            self.stats.format_latency(),
            "",
            self.stats.format_utilization(self.config.num_ports, self.makespan),
        ]
        return "\n".join(lines)


class SimulationEngine:
    """Runs one online-reconfiguration scenario end to end."""

    def __init__(
        self,
        manager: ReconfigurationManager,
        traffic: TrafficModel,
        policy: Policy,
        faults: Optional[FaultPlan] = None,
        config: Optional[SimConfig] = None,
    ) -> None:
        self.manager = manager
        self.traffic = traffic
        self.policy = policy
        self.faults = faults
        self.config = config or SimConfig()
        self.clock = VirtualClock()
        self.stats = SimStats()
        self._queue = EventQueue()
        self._waiting: List[_Pending] = []
        self._free_ports = self.config.num_ports
        self._busy_regions: set = set()
        self._resolving = False  # a manager swap stalls every port until done
        self._traces: List[RuntimeTrace] = []
        self._refloorplans = 0
        self._events_processed = 0
        manager.clock = self.clock

    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Generate the scenario, play every event, return the result."""
        self._queue.push_batch(
            (
                request.time,
                SimEventKind.ARRIVAL,
                _Pending(request_id=index, request=request, arrival=request.time),
            )
            for index, request in enumerate(self.traffic.generate(self.config.horizon))
        )
        if self.faults is not None:
            self._queue.push_batch(
                (fault.time, SimEventKind.FAULT, fault)
                for fault in self.faults.events(self.config.horizon)
            )

        while self._queue:
            event = self._queue.pop()
            self.clock.advance_to(event.time)
            self._events_processed += 1
            if event.kind is SimEventKind.ARRIVAL:
                self._on_arrival(event.payload)
            elif event.kind is SimEventKind.FAULT:
                self._on_fault(event.payload)
            else:
                self._on_complete(event.payload)

        self._traces.append(self.manager.trace)
        return SimResult(
            stats=self.stats,
            config=self.config,
            makespan=self.clock.now,
            events_processed=self._events_processed,
            manager=self.manager,
            traces=self._traces,
            refloorplans=self._refloorplans,
        )

    # ------------------------------------------------------------------
    def _on_arrival(self, pending: _Pending) -> None:
        if self._can_start(pending):
            self._start(pending)
            return
        if (
            self.config.queue_capacity is not None
            and len(self._waiting) >= self.config.queue_capacity
        ):
            self.stats.record_rejected_arrival()
            return
        self._waiting.append(pending)

    def _on_fault(self, fault) -> None:
        try:
            rect = self.manager.current_location(fault.region)
        except ReconfigurationError:
            # the plan names a region this floorplan doesn't have: nothing
            # to break, and nothing is recorded — stats reflect only faults
            # that actually landed on the fabric
            return
        self.manager.inject_fault(rect, detail=fault.detail)
        self.stats.record_fault(self.clock.now)

    def _on_complete(self, payload) -> None:
        pending, outcome = payload
        self._free_ports += 1
        self._busy_regions.discard(pending.request.region)
        if outcome.new_manager is not None:
            self._resolving = False  # the re-floorplan is installed; resume
        self.stats.record(
            RequestRecord(
                request_id=pending.request_id,
                region=pending.request.region,
                mode=pending.request.mode,
                arrival=pending.arrival,
                start=pending.start,
                finish=self.clock.now,
                action=outcome.action,
                frames=outcome.frames,
                ok=outcome.ok,
                detail=outcome.detail,
            )
        )
        self._start_waiting()

    # ------------------------------------------------------------------
    def _can_start(self, pending: _Pending) -> bool:
        return (
            not self._resolving
            and self._free_ports > 0
            and pending.request.region not in self._busy_regions
        )

    def _start_waiting(self) -> None:
        """Admit queued requests FIFO, skipping ones whose region is busy."""
        progressed = True
        while progressed and self._free_ports > 0 and not self._resolving:
            progressed = False
            for index, pending in enumerate(self._waiting):
                if pending.request.region not in self._busy_regions:
                    del self._waiting[index]
                    self._start(pending)
                    progressed = True
                    break

    def _start(self, pending: _Pending) -> None:
        self._free_ports -= 1
        self._busy_regions.add(pending.request.region)
        pending.start = self.clock.now
        outcome = self.policy.apply(self.manager, pending.request)
        if outcome.new_manager is not None:
            self._adopt(outcome)
        service = (
            outcome.frames * self.config.seconds_per_frame + outcome.extra_time
        )
        self._queue.push(
            self.clock.now + service, SimEventKind.COMPLETE, (pending, outcome)
        )

    def _adopt(self, outcome: PolicyOutcome) -> None:
        """Swap in the re-floorplanned manager, keeping the old trace.

        Until the swap's COMPLETE event fires, every port is stalled: the
        whole configuration path is being replaced, so no other region may
        reconfigure concurrently (see :class:`PolicyOutcome.extra_time`).
        """
        self._traces.append(self.manager.trace)
        self.manager = outcome.new_manager
        self.manager.clock = self.clock
        self._resolving = True
        self._refloorplans += 1
