"""The deterministic priority event queue.

Events are ordered by ``(time, kind priority, insertion sequence)``.  The
kind priority makes same-instant behavior well defined — completions free
resources before repairs restore devices, repairs land before faults strike,
faults land before new arrivals are admitted — and the insertion sequence
breaks the remaining ties FIFO, so two runs with the same seeds pop events in
exactly the same order.

The queue is a batched heap: pre-generated schedules (the arrival and fault
streams, known up front) enter through :meth:`EventQueue.push_batch`, which
sorts them once into a static run consumed by a cursor, while events
scheduled during the simulation (completions) go through :meth:`push` into a
small dynamic heap.  ``pop`` merges the two fronts.  With *n* pre-scheduled
events and *k* in-flight completions this replaces ``n`` heap sift-downs of
depth log(n+k) with one sort plus heap operations on a heap of size ~k —
the batched part pops by cursor increment.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
from typing import Iterable, List, Optional, Tuple


class SimEventKind(enum.Enum):
    """Kinds of simulator events, in same-instant processing order."""

    COMPLETE = "complete"
    REPAIR = "repair"
    FAULT = "fault"
    ARRIVAL = "arrival"


#: Same-instant processing order (lower pops first).
_PRIORITY = {
    SimEventKind.COMPLETE: 0,
    SimEventKind.REPAIR: 1,
    SimEventKind.FAULT: 2,
    SimEventKind.ARRIVAL: 3,
}


@dataclasses.dataclass(frozen=True)
class SimEvent:
    """One scheduled simulator event."""

    time: float
    kind: SimEventKind
    seq: int
    payload: object = None


class EventQueue:
    """A batched heap of :class:`SimEvent` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._run: List[tuple] = []  # sorted static run, consumed by cursor
        self._cursor = 0
        self._heap: List[tuple] = []  # dynamically scheduled events
        self._seq = 0

    def _entry(self, time: float, kind: SimEventKind, payload: object) -> tuple:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = SimEvent(time=float(time), kind=kind, seq=self._seq, payload=payload)
        self._seq += 1
        return (event.time, _PRIORITY[kind], event.seq, event)

    def push(self, time: float, kind: SimEventKind, payload: object = None) -> SimEvent:
        """Schedule one event; returns the stored record."""
        entry = self._entry(time, kind, payload)
        heapq.heappush(self._heap, entry)
        return entry[-1]

    def push_batch(
        self, items: Iterable[Tuple[float, SimEventKind, object]]
    ) -> List[SimEvent]:
        """Schedule a pre-generated batch of ``(time, kind, payload)`` items.

        Sequence numbers are assigned in input order (so equal-key items pop
        FIFO exactly as repeated :meth:`push` calls would), then the batch is
        sorted once and merged with whatever is left of the previous run.
        """
        entries = [self._entry(time, kind, payload) for time, kind, payload in items]
        entries.sort()
        remaining = self._run[self._cursor :]
        self._run = list(heapq.merge(remaining, entries)) if remaining else entries
        self._cursor = 0
        return [entry[-1] for entry in entries]

    def pop(self) -> SimEvent:
        """Remove and return the next event (earliest time wins)."""
        head = self._run[self._cursor] if self._cursor < len(self._run) else None
        if self._heap and (head is None or self._heap[0] < head):
            return heapq.heappop(self._heap)[-1]
        if head is None:
            raise IndexError("pop from an empty event queue")
        self._cursor += 1
        if self._cursor >= 8192 and self._cursor * 2 >= len(self._run):
            del self._run[: self._cursor]
            self._cursor = 0
        return head[-1]

    def peek(self) -> Optional[SimEvent]:
        """The next event without removing it (``None`` when empty)."""
        head = self._run[self._cursor] if self._cursor < len(self._run) else None
        if self._heap and (head is None or self._heap[0] < head):
            return self._heap[0][-1]
        return head[-1] if head is not None else None

    def __len__(self) -> int:
        return (len(self._run) - self._cursor) + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < len(self._run) or bool(self._heap)
