"""The deterministic priority event queue.

Events are ordered by ``(time, kind priority, insertion sequence)``.  The
kind priority makes same-instant behavior well defined — completions free
resources before faults land, faults land before new arrivals are admitted —
and the insertion sequence breaks the remaining ties FIFO, so two runs with
the same seeds pop events in exactly the same order.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
from typing import List, Optional


class SimEventKind(enum.Enum):
    """Kinds of simulator events, in same-instant processing order."""

    COMPLETE = "complete"
    FAULT = "fault"
    ARRIVAL = "arrival"


#: Same-instant processing order (lower pops first).
_PRIORITY = {
    SimEventKind.COMPLETE: 0,
    SimEventKind.FAULT: 1,
    SimEventKind.ARRIVAL: 2,
}


@dataclasses.dataclass(frozen=True)
class SimEvent:
    """One scheduled simulator event."""

    time: float
    kind: SimEventKind
    seq: int
    payload: object = None


class EventQueue:
    """A heap of :class:`SimEvent` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0

    def push(self, time: float, kind: SimEventKind, payload: object = None) -> SimEvent:
        """Schedule an event; returns the stored record."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = SimEvent(time=float(time), kind=kind, seq=self._seq, payload=payload)
        heapq.heappush(self._heap, (event.time, _PRIORITY[kind], event.seq, event))
        self._seq += 1
        return event

    def pop(self) -> SimEvent:
        """Remove and return the next event (earliest time wins)."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[-1]

    def peek(self) -> Optional[SimEvent]:
        """The next event without removing it (``None`` when empty)."""
        return self._heap[0][-1] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
