"""Virtual time.

The simulator never sleeps: time is a number advanced from event to event.
:class:`VirtualClock` enforces monotonicity (an event queue bug that would
move time backwards raises instead of silently corrupting statistics) and is
callable so it plugs straight into
:class:`~repro.runtime.manager.ReconfigurationManager`'s ``clock`` hook.
"""

from __future__ import annotations


class SimTimeError(RuntimeError):
    """Raised when virtual time would move backwards."""


class VirtualClock:
    """A monotonically advancing virtual clock."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Advance to ``time`` (no-op when already there); returns the time."""
        if time < self._now - 1e-12:
            raise SimTimeError(
                f"cannot advance virtual time backwards: {time} < {self._now}"
            )
        self._now = max(self._now, float(time))
        return self._now

    def __call__(self) -> float:
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f})"
