"""Stochastic arrival processes emitting timed mode-activation requests.

Four generator families cover the scenarios the online benchmarks need:

* :class:`PoissonTraffic` — homogeneous Poisson arrivals (exponential
  inter-arrival gaps at a constant rate);
* :class:`InhomogeneousPoissonTraffic` — time-varying rate λ(t) simulated by
  Lewis–Shedler thinning, in the spirit of the IPPP package's inhomogeneous
  Poisson point process simulators (PAPERS.md);
* :class:`MMPPTraffic` — a two-state Markov-modulated Poisson process for
  bursty traffic (quiet/burst phases with exponential sojourns);
* :class:`TraceReplayTraffic` — deterministic replay of a (possibly timed)
  :class:`~repro.runtime.scheduler.ModeSchedule`.

Every generator is seeded through :func:`repro.utils.rng.make_rng`, so a
``generate(horizon)`` call is bit-for-bit reproducible.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Callable, List, Sequence

from repro.runtime.scheduler import ModeSchedule
from repro.utils.rng import make_rng


@dataclasses.dataclass(frozen=True)
class ModeRequest:
    """One timed request: reconfigure ``region`` to ``mode`` at ``time``."""

    time: float
    region: str
    mode: str


class TrafficModel(abc.ABC):
    """Base class of arrival generators."""

    @abc.abstractmethod
    def generate(self, horizon: float) -> List[ModeRequest]:
        """All requests with ``time < horizon``, in non-decreasing time order."""

    @staticmethod
    def _check_horizon(horizon: float) -> float:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return float(horizon)


class _RandomModeMixin:
    """Uniform region/mode picking shared by the stochastic generators."""

    regions: Sequence[str]
    modes_per_region: int

    def _check_population(self) -> None:
        if not self.regions:
            raise ValueError("need at least one region to generate traffic")
        if self.modes_per_region <= 0:
            raise ValueError("modes_per_region must be positive")

    def _pick(self, rng, time: float) -> ModeRequest:
        region = self.regions[int(rng.integers(len(self.regions)))]
        mode = f"mode{int(rng.integers(self.modes_per_region)) + 1}"
        return ModeRequest(time=time, region=region, mode=mode)


class PoissonTraffic(_RandomModeMixin, TrafficModel):
    """Homogeneous Poisson arrivals at ``rate`` requests per second."""

    def __init__(
        self,
        regions: Sequence[str],
        rate: float,
        modes_per_region: int = 3,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.regions = list(regions)
        self.rate = float(rate)
        self.modes_per_region = modes_per_region
        self.seed = seed
        self._check_population()

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        requests: List[ModeRequest] = []
        time = float(rng.exponential(1.0 / self.rate))
        while time < horizon:
            requests.append(self._pick(rng, time))
            time += float(rng.exponential(1.0 / self.rate))
        return requests


class InhomogeneousPoissonTraffic(_RandomModeMixin, TrafficModel):
    """Inhomogeneous Poisson arrivals with rate ``rate_fn(t)``.

    Uses Lewis–Shedler thinning: candidate points are drawn from a
    homogeneous process at the dominating rate ``rate_max`` and each is kept
    with probability ``rate_fn(t) / rate_max``.  ``rate_fn`` must satisfy
    ``0 <= rate_fn(t) <= rate_max`` over the horizon (violations raise).
    """

    def __init__(
        self,
        regions: Sequence[str],
        rate_fn: Callable[[float], float],
        rate_max: float,
        modes_per_region: int = 3,
        seed: int = 0,
    ) -> None:
        if rate_max <= 0:
            raise ValueError(f"rate_max must be positive, got {rate_max}")
        self.regions = list(regions)
        self.rate_fn = rate_fn
        self.rate_max = float(rate_max)
        self.modes_per_region = modes_per_region
        self.seed = seed
        self._check_population()

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        requests: List[ModeRequest] = []
        time = float(rng.exponential(1.0 / self.rate_max))
        while time < horizon:
            rate = float(self.rate_fn(time))
            if rate < 0 or rate > self.rate_max + 1e-9:
                raise ValueError(
                    f"rate_fn({time:.6f}) = {rate} outside [0, rate_max={self.rate_max}]"
                )
            if rng.random() < rate / self.rate_max:
                requests.append(self._pick(rng, time))
            time += float(rng.exponential(1.0 / self.rate_max))
        return requests


def sinusoidal_rate(
    base: float, amplitude: float, period: float
) -> Callable[[float], float]:
    """A diurnal-style rate ``base + amplitude * sin(2*pi*t / period)``.

    ``amplitude <= base`` keeps the rate non-negative; the dominating rate
    for thinning is ``base + amplitude``.
    """
    if base <= 0 or period <= 0:
        raise ValueError("base and period must be positive")
    if not 0 <= amplitude <= base:
        raise ValueError("amplitude must be within [0, base]")

    def rate(time: float) -> float:
        return base + amplitude * math.sin(2.0 * math.pi * time / period)

    return rate


class MMPPTraffic(_RandomModeMixin, TrafficModel):
    """Two-state Markov-modulated Poisson process (quiet/burst phases).

    The modulating chain alternates between state 0 (rate ``rates[0]``) and
    state 1 (rate ``rates[1]``); sojourn times in each state are exponential
    with the given means.  This is the standard bursty-traffic model: long
    quiet stretches punctuated by high-rate bursts.
    """

    def __init__(
        self,
        regions: Sequence[str],
        rates: Sequence[float] = (1.0, 10.0),
        mean_sojourns: Sequence[float] = (10.0, 2.0),
        modes_per_region: int = 3,
        seed: int = 0,
    ) -> None:
        if len(rates) != 2 or len(mean_sojourns) != 2:
            raise ValueError("MMPP is two-state: need exactly 2 rates and 2 sojourns")
        if any(rate <= 0 for rate in rates) or any(s <= 0 for s in mean_sojourns):
            raise ValueError("rates and mean sojourns must be positive")
        self.regions = list(regions)
        self.rates = tuple(float(rate) for rate in rates)
        self.mean_sojourns = tuple(float(s) for s in mean_sojourns)
        self.modes_per_region = modes_per_region
        self.seed = seed
        self._check_population()

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        requests: List[ModeRequest] = []
        state = 0
        time = 0.0
        phase_end = float(rng.exponential(self.mean_sojourns[state]))
        while time < horizon:
            gap = float(rng.exponential(1.0 / self.rates[state]))
            if time + gap >= phase_end:
                # no arrival before the phase switch: jump states and retry
                time = phase_end
                state = 1 - state
                phase_end = time + float(rng.exponential(self.mean_sojourns[state]))
                continue
            time += gap
            if time >= horizon:
                break
            requests.append(self._pick(rng, time))
        return requests


class TraceReplayTraffic(TrafficModel):
    """Deterministic replay of a :class:`ModeSchedule` as timed requests.

    Dwell times become activation timestamps through
    :meth:`ModeSchedule.timed_steps`; an untimed schedule replays as a burst
    at ``t=0`` in the original order.  ``offset`` shifts the whole replay.
    """

    def __init__(self, schedule: ModeSchedule, offset: float = 0.0) -> None:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.schedule = schedule
        self.offset = float(offset)

    @classmethod
    def from_capture(cls, capture: dict, offset: float = 0.0) -> "TraceReplayTraffic":
        """Replay a production capture (:mod:`repro.obs.capture`).

        The capture's embedded schedule encodes each captured solve request
        as one activation (region = job name, mode = fingerprint tag) with
        dwells equal to the observed inter-arrival gaps, so the simulator
        sees the production request sequence at its original cadence.
        """
        schedule = ModeSchedule.from_dict(capture.get("schedule", {}))
        if not schedule.steps:
            raise ValueError("capture carries no replayable requests")
        return cls(schedule, offset=offset)

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        return [
            ModeRequest(time=self.offset + time, region=region, mode=mode)
            for time, region, mode in self.schedule.timed_steps()
            if self.offset + time < horizon
        ]
