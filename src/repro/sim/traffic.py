"""Stochastic arrival processes emitting timed mode-activation requests.

Four generator families cover the scenarios the online benchmarks need:

* :class:`PoissonTraffic` — homogeneous Poisson arrivals (batched exponential
  gap-sampling by default, order-statistics inversion on request);
* :class:`InhomogeneousPoissonTraffic` — time-varying rate λ(t) simulated by
  the inversion / order-statistics method of the IPPP package (PAPERS.md):
  draw N ~ Poisson(Λ(T)), then map sorted uniforms through the inverse
  cumulative rate.  The classic Lewis–Shedler thinning loop is kept as the
  per-event reference oracle;
* :class:`MMPPTraffic` — a two-state Markov-modulated Poisson process for
  bursty traffic (quiet/burst phases with exponential sojourns), vectorized
  per phase by memorylessness;
* :class:`TraceReplayTraffic` — deterministic replay of a (possibly timed)
  :class:`~repro.runtime.scheduler.ModeSchedule`.

Every generator is seeded through :func:`repro.utils.rng.make_rng`, so a
``generate(horizon)`` call is bit-for-bit reproducible.

Stream layout: arrival *times* consume ``make_rng(seed)``, region picks
``make_rng(seed + 1)``, mode picks ``make_rng(seed + 2)`` and MMPP phase
sojourns ``make_rng(seed + 3)``.  Hoisting the draws onto independent streams
(the idiom :class:`~repro.sim.faults.RandomFaults` established) is what lets
the batched numpy implementation produce *bitwise identical* request streams
to the per-event ``generate_reference`` loops: ``rng.exponential(s, size=n)``
consumes the same underlying draws as ``n`` scalar calls and ``np.cumsum``
accumulates strictly left-to-right, which the equivalence property tests pin.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Callable, List, Sequence

import numpy as np

from repro.runtime.scheduler import ModeSchedule
from repro.utils.rng import make_rng


@dataclasses.dataclass(frozen=True)
class ModeRequest:
    """One timed request: reconfigure ``region`` to ``mode`` at ``time``."""

    time: float
    region: str
    mode: str


def batched_poisson_times(rng, rate: float, horizon: float) -> np.ndarray:
    """Arrival instants of a homogeneous Poisson process, batch-generated.

    Draws exponential gaps in blocks and cumulative-sums them; the result is
    bitwise identical to the scalar ``time += rng.exponential(1/rate)`` loop
    because both consume the same draws in the same order and accumulate with
    the same sequence of float64 additions.
    """
    if not math.isfinite(horizon):
        raise ValueError(f"horizon must be finite, got {horizon}")
    scale = 1.0 / rate
    block = max(64, int(rate * horizon * 1.2) + 32)
    gaps = rng.exponential(scale, size=block)
    times = np.cumsum(gaps)
    while times[-1] < horizon:
        gaps = np.concatenate([gaps, rng.exponential(scale, size=block)])
        times = np.cumsum(gaps)
    return times[times < horizon]


class TrafficModel(abc.ABC):
    """Base class of arrival generators."""

    @abc.abstractmethod
    def generate(self, horizon: float) -> List[ModeRequest]:
        """All requests with ``time < horizon``, in non-decreasing time order."""

    @staticmethod
    def _check_horizon(horizon: float) -> float:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return float(horizon)


class _RandomModeMixin:
    """Uniform region/mode picking shared by the stochastic generators.

    Picks live on their own seeded streams (``seed + 1`` for regions,
    ``seed + 2`` for modes) so the arrival-time stream is identical between
    the vectorized and per-event implementations.
    """

    regions: Sequence[str]
    modes_per_region: int
    seed: int

    def _check_population(self) -> None:
        if not self.regions:
            raise ValueError("need at least one region to generate traffic")
        if self.modes_per_region <= 0:
            raise ValueError("modes_per_region must be positive")

    def _mode_names(self) -> List[str]:
        return [f"mode{index + 1}" for index in range(self.modes_per_region)]

    def _materialize(self, times: np.ndarray) -> List[ModeRequest]:
        """Attach batch-drawn region/mode picks to sorted arrival times."""
        count = len(times)
        region_idx = make_rng(self.seed + 1).integers(len(self.regions), size=count)
        mode_idx = make_rng(self.seed + 2).integers(self.modes_per_region, size=count)
        regions, modes = self.regions, self._mode_names()
        return [
            ModeRequest(time=float(time), region=regions[r], mode=modes[m])
            for time, r, m in zip(times, region_idx, mode_idx)
        ]

    def _reference_picker(self):
        """Per-event pick closure consuming the same streams one draw at a time."""
        region_rng = make_rng(self.seed + 1)
        mode_rng = make_rng(self.seed + 2)
        regions, modes = self.regions, self._mode_names()

        def pick(time: float) -> ModeRequest:
            region = regions[int(region_rng.integers(len(regions)))]
            mode = modes[int(mode_rng.integers(self.modes_per_region))]
            return ModeRequest(time=time, region=region, mode=mode)

        return pick


class PoissonTraffic(_RandomModeMixin, TrafficModel):
    """Homogeneous Poisson arrivals at ``rate`` requests per second.

    ``method="gap"`` (default) batch-samples exponential gaps — bitwise
    identical to the per-event loop in :meth:`generate_reference`.
    ``method="inversion"`` uses the order-statistics construction
    (N ~ Poisson(rate·T), sorted uniforms scaled to the horizon); it draws a
    different stream but the same distribution, which the property tests
    check KS-style.
    """

    def __init__(
        self,
        regions: Sequence[str],
        rate: float,
        modes_per_region: int = 3,
        seed: int = 0,
        method: str = "gap",
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if method not in ("gap", "inversion"):
            raise ValueError(f"method must be 'gap' or 'inversion', got {method!r}")
        self.regions = list(regions)
        self.rate = float(rate)
        self.modes_per_region = modes_per_region
        self.seed = seed
        self.method = method
        self._check_population()

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        if self.method == "inversion":
            count = int(rng.poisson(self.rate * horizon))
            times = np.sort(rng.random(count)) * horizon
            times = times[times < horizon]
        else:
            times = batched_poisson_times(rng, self.rate, horizon)
        return self._materialize(times)

    def generate_reference(self, horizon: float) -> List[ModeRequest]:
        """Per-event gap-sampling oracle for the equivalence property tests."""
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        pick = self._reference_picker()
        requests: List[ModeRequest] = []
        time = float(rng.exponential(1.0 / self.rate))
        while time < horizon:
            requests.append(pick(time))
            time += float(rng.exponential(1.0 / self.rate))
        return requests


class InhomogeneousPoissonTraffic(_RandomModeMixin, TrafficModel):
    """Inhomogeneous Poisson arrivals with rate ``rate_fn(t)``.

    The default path is the IPPP inversion method: the cumulative rate
    Λ(t) = ∫₀ᵗ λ(s) ds is tabulated by the trapezoid rule on ``grid_points``
    samples, N ~ Poisson(Λ(T)) arrivals are drawn, and sorted uniforms on
    [0, Λ(T)] are mapped through the inverse of Λ by linear interpolation.
    ``rate_fn`` must satisfy ``0 <= rate_fn(t) <= rate_max`` over the horizon
    (checked on the grid; violations raise, as the thinning loop always did).

    :meth:`generate_reference` keeps the Lewis–Shedler thinning loop as the
    per-event oracle; the two agree distributionally (same seed, KS-tested)
    but not draw-for-draw.
    """

    def __init__(
        self,
        regions: Sequence[str],
        rate_fn: Callable[[float], float],
        rate_max: float,
        modes_per_region: int = 3,
        seed: int = 0,
        grid_points: int = 1025,
    ) -> None:
        if rate_max <= 0:
            raise ValueError(f"rate_max must be positive, got {rate_max}")
        if grid_points < 2:
            raise ValueError(f"grid_points must be at least 2, got {grid_points}")
        self.regions = list(regions)
        self.rate_fn = rate_fn
        self.rate_max = float(rate_max)
        self.modes_per_region = modes_per_region
        self.seed = seed
        self.grid_points = int(grid_points)
        self._check_population()

    def _rates_on_grid(self, grid: np.ndarray) -> np.ndarray:
        rates = np.array([float(self.rate_fn(t)) for t in grid])
        bad = (rates < 0) | (rates > self.rate_max + 1e-9)
        if bad.any():
            where = int(np.argmax(bad))
            raise ValueError(
                f"rate_fn({grid[where]:.6f}) = {rates[where]} "
                f"outside [0, rate_max={self.rate_max}]"
            )
        return rates

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        grid = np.linspace(0.0, horizon, self.grid_points)
        rates = self._rates_on_grid(grid)
        cumulative = np.concatenate(
            [[0.0], np.cumsum(0.5 * (rates[1:] + rates[:-1]) * np.diff(grid))]
        )
        total = float(cumulative[-1])
        count = int(rng.poisson(total)) if total > 0 else 0
        marks = np.sort(rng.random(count)) * total
        times = np.interp(marks, cumulative, grid)
        times = times[times < horizon]
        return self._materialize(times)

    def generate_reference(self, horizon: float) -> List[ModeRequest]:
        """Per-event Lewis–Shedler thinning oracle."""
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        pick = self._reference_picker()
        requests: List[ModeRequest] = []
        time = float(rng.exponential(1.0 / self.rate_max))
        while time < horizon:
            rate = float(self.rate_fn(time))
            if rate < 0 or rate > self.rate_max + 1e-9:
                raise ValueError(
                    f"rate_fn({time:.6f}) = {rate} outside [0, rate_max={self.rate_max}]"
                )
            if rng.random() < rate / self.rate_max:
                requests.append(pick(time))
            time += float(rng.exponential(1.0 / self.rate_max))
        return requests


def sinusoidal_rate(
    base: float, amplitude: float, period: float
) -> Callable[[float], float]:
    """A diurnal-style rate ``base + amplitude * sin(2*pi*t / period)``.

    ``amplitude <= base`` keeps the rate non-negative; the dominating rate
    for thinning is ``base + amplitude``.
    """
    if base <= 0 or period <= 0:
        raise ValueError("base and period must be positive")
    if not 0 <= amplitude <= base:
        raise ValueError("amplitude must be within [0, base]")

    def rate(time: float) -> float:
        return base + amplitude * math.sin(2.0 * math.pi * time / period)

    return rate


class MMPPTraffic(_RandomModeMixin, TrafficModel):
    """Two-state Markov-modulated Poisson process (quiet/burst phases).

    The modulating chain alternates between state 0 (rate ``rates[0]``) and
    state 1 (rate ``rates[1]``); sojourn times in each state are exponential
    with the given means.  This is the standard bursty-traffic model: long
    quiet stretches punctuated by high-rate bursts.

    Phase sojourns are drawn on their own stream (``seed + 3``), so the
    vectorized path and :meth:`generate_reference` see *identical* phase
    boundaries; within each phase, memorylessness makes per-phase
    order-statistics regeneration exact, which the distributional property
    tests check window by window.
    """

    def __init__(
        self,
        regions: Sequence[str],
        rates: Sequence[float] = (1.0, 10.0),
        mean_sojourns: Sequence[float] = (10.0, 2.0),
        modes_per_region: int = 3,
        seed: int = 0,
    ) -> None:
        if len(rates) != 2 or len(mean_sojourns) != 2:
            raise ValueError("MMPP is two-state: need exactly 2 rates and 2 sojourns")
        if any(rate <= 0 for rate in rates) or any(s <= 0 for s in mean_sojourns):
            raise ValueError("rates and mean sojourns must be positive")
        self.regions = list(regions)
        self.rates = tuple(float(rate) for rate in rates)
        self.mean_sojourns = tuple(float(s) for s in mean_sojourns)
        self.modes_per_region = modes_per_region
        self.seed = seed
        self._check_population()

    def phase_segments(self, horizon: float) -> List[tuple]:
        """``(start, end, state)`` segments of the modulating chain on [0, T)."""
        rng = make_rng(self.seed + 3)
        segments: List[tuple] = []
        state, time = 0, 0.0
        while time < horizon:
            sojourn = float(rng.exponential(self.mean_sojourns[state]))
            segments.append((time, min(time + sojourn, horizon), state))
            time += sojourn
            state = 1 - state
        return segments

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        rng = make_rng(self.seed)
        parts: List[np.ndarray] = []
        for start, end, state in self.phase_segments(horizon):
            length = end - start
            if length <= 0:
                continue
            count = int(rng.poisson(self.rates[state] * length))
            if count:
                parts.append(start + np.sort(rng.random(count)) * length)
        if parts:
            times = np.concatenate(parts)
            times = times[times < horizon]
        else:
            times = np.empty(0)
        return self._materialize(times)

    def generate_reference(self, horizon: float) -> List[ModeRequest]:
        """Per-event oracle: gap-sampling restarted at each phase switch."""
        horizon = self._check_horizon(horizon)
        phase_rng = make_rng(self.seed + 3)
        rng = make_rng(self.seed)
        pick = self._reference_picker()
        requests: List[ModeRequest] = []
        state, time = 0, 0.0
        phase_end = float(phase_rng.exponential(self.mean_sojourns[state]))
        while time < horizon:
            gap = float(rng.exponential(1.0 / self.rates[state]))
            if time + gap >= phase_end:
                # no arrival before the phase switch: jump states and retry
                time = phase_end
                state = 1 - state
                phase_end = time + float(phase_rng.exponential(self.mean_sojourns[state]))
                continue
            time += gap
            if time >= horizon:
                break
            requests.append(pick(time))
        return requests


class TraceReplayTraffic(TrafficModel):
    """Deterministic replay of a :class:`ModeSchedule` as timed requests.

    Dwell times become activation timestamps through
    :meth:`ModeSchedule.timed_steps`; an untimed schedule replays as a burst
    at ``t=0`` in the original order.  ``offset`` shifts the whole replay.
    """

    def __init__(self, schedule: ModeSchedule, offset: float = 0.0) -> None:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.schedule = schedule
        self.offset = float(offset)

    @classmethod
    def from_capture(cls, capture: dict, offset: float = 0.0) -> "TraceReplayTraffic":
        """Replay a production capture (:mod:`repro.obs.capture`).

        The capture's embedded schedule encodes each captured solve request
        as one activation (region = job name, mode = fingerprint tag) with
        dwells equal to the observed inter-arrival gaps, so the simulator
        sees the production request sequence at its original cadence.
        """
        schedule = ModeSchedule.from_dict(capture.get("schedule", {}))
        if not schedule.steps:
            raise ValueError("capture carries no replayable requests")
        return cls(schedule, offset=offset)

    def generate(self, horizon: float) -> List[ModeRequest]:
        horizon = self._check_horizon(horizon)
        return [
            ModeRequest(time=self.offset + time, region=region, mode=mode)
            for time, region, mode in self.schedule.timed_steps()
            if self.offset + time < horizon
        ]
