"""Discrete-event online reconfiguration simulation.

This package turns the :mod:`repro.runtime` layer into a measurable online
system: stochastic traffic (:mod:`~repro.sim.traffic`) emits timed
mode-activation requests per region, a fault plan (:mod:`~repro.sim.faults`)
breaks fabric under live modules, a decision policy
(:mod:`~repro.sim.policies`) serves each request — reconfigure in place,
relocate into floorplanner-reserved free areas, or re-floorplan live through
the :mod:`repro.service` portfolio — and the engine
(:mod:`~repro.sim.engine`) plays everything on seeded virtual time with
reconfiguration-port contention and per-region busy periods.  Statistics
(:mod:`~repro.sim.stats`) aggregate into the latency/utilization tables of
:mod:`repro.analysis`.

Quickstart::

    from repro.sim import (
        PoissonTraffic, ScheduledFaults, RelocateFirst,
        SimulationEngine, SimConfig,
    )

    engine = SimulationEngine(
        manager,
        traffic=PoissonTraffic(regions, rate=5.0, seed=7),
        policy=RelocateFirst(),
        faults=ScheduledFaults([(2.0, "beta")]),
        config=SimConfig(horizon=60.0),
    )
    result = engine.run()
    print(result.format_report())
"""

from repro.sim.clock import SimTimeError, VirtualClock
from repro.sim.engine import SimConfig, SimResult, SimulationEngine
from repro.sim.events import EventQueue, SimEvent, SimEventKind
from repro.sim.faults import (
    FaultEvent,
    FaultPlan,
    RandomFaults,
    ScheduledFaults,
    fault_masked_problem,
    poisson_times,
)
from repro.sim.policies import (
    Policy,
    PolicyOutcome,
    ReconfigureInPlace,
    RelocateFirst,
    ResolveViaService,
    placement_fault_masked,
)
from repro.sim.stats import RequestRecord, SimStats, histogram, percentile
from repro.sim.traffic import (
    InhomogeneousPoissonTraffic,
    MMPPTraffic,
    ModeRequest,
    PoissonTraffic,
    TraceReplayTraffic,
    TrafficModel,
    batched_poisson_times,
    sinusoidal_rate,
)

__all__ = [
    # clock / events
    "VirtualClock",
    "SimTimeError",
    "EventQueue",
    "SimEvent",
    "SimEventKind",
    # traffic
    "TrafficModel",
    "ModeRequest",
    "PoissonTraffic",
    "InhomogeneousPoissonTraffic",
    "MMPPTraffic",
    "TraceReplayTraffic",
    "sinusoidal_rate",
    "batched_poisson_times",
    # faults
    "FaultPlan",
    "FaultEvent",
    "ScheduledFaults",
    "RandomFaults",
    "fault_masked_problem",
    "poisson_times",
    # policies
    "Policy",
    "PolicyOutcome",
    "ReconfigureInPlace",
    "RelocateFirst",
    "ResolveViaService",
    "placement_fault_masked",
    # engine / stats
    "SimulationEngine",
    "SimConfig",
    "SimResult",
    "SimStats",
    "RequestRecord",
    "percentile",
    "histogram",
]
