"""Heuristic floorplanners used as baselines and as HO seeds.

* :mod:`~repro.baselines.first_fit` — a simple greedy packer; fast, used to
  seed the HO mode and as a sanity baseline;
* :mod:`~repro.baselines.tessellation` — an architecture-aware,
  reconfiguration-centric greedy tessellation in the spirit of Vipin & Fahmy
  (reference [8] of the paper), whose wasted-frame count is the first row of
  Table II;
* :mod:`~repro.baselines.annealing` — a simulated-annealing floorplanner in
  the spirit of Bolchini et al. (reference [9]), used in the ablation
  benchmarks and as an alternative HO seed.
"""

from repro.baselines.first_fit import first_fit_floorplan
from repro.baselines.tessellation import tessellation_floorplan
from repro.baselines.annealing import AnnealingOptions, annealing_floorplan
from repro.baselines.relocation_greedy import relocation_aware_greedy

__all__ = [
    "first_fit_floorplan",
    "tessellation_floorplan",
    "annealing_floorplan",
    "AnnealingOptions",
    "relocation_aware_greedy",
]
