"""Relocation-aware greedy constructor.

The HO mode with relocation-as-a-constraint needs a heuristic seed that
already contains positions for every requested free-compatible area
(Section II.A).  A relocation-oblivious heuristic frequently places a region
so that no compatible space remains; this constructor therefore interleaves
the two decisions:

1. regions are processed scarce-resource-first;
2. for each region the candidate rectangles are tried in increasing
   covered-frames order;
3. a candidate is accepted only if the requested number of free-compatible
   areas can still be reserved geometrically next to it — the reserved areas
   are then blocked for the regions that follow.

Besides seeding HO, this is a useful baseline on its own ("greedy PA"): it
shows how far a purely constructive approach gets on the relocation-aware
problem, which the ablation benchmark compares against the MILP.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.baselines.packing import (
    candidate_orders,
    iter_feasible_rects,
    rect_frames,
)
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem
from repro.relocation.compatibility import (
    enumerate_free_compatible_areas,
    select_disjoint_areas,
)
from repro.relocation.spec import RelocationSpec


def relocation_aware_greedy(
    problem: FloorplanProblem,
    spec: RelocationSpec | None = None,
    max_candidates_with_copies: int = 200,
) -> Optional[Floorplan]:
    """Greedy construction of a floorplan with reserved free-compatible areas.

    Parameters
    ----------
    problem:
        The floorplanning instance.
    spec:
        Relocation requests; ``None`` or an empty spec degenerates into a
        minimal-frames greedy placer.
    max_candidates_with_copies:
        Cap on how many candidate rectangles are tried (in increasing frame
        order) for a region that has relocation requests; keeps the
        reservation search bounded on large devices.

    Returns
    -------
    Floorplan or None
        ``None`` when no placement satisfying every *hard* request was found;
        soft requests that cannot be served are simply dropped from the
        result (their areas are absent, mirroring ``v[c] = 1``).
    """
    spec = spec or RelocationSpec.empty()
    start = time.perf_counter()
    device = problem.device

    # Orders are explored with a "fail-first" retry: when a region cannot be
    # served, it is promoted to the front of the order and the construction
    # restarts, so regions that turn out to be tightly constrained grab their
    # space (and their copies) before the flexible ones fragment it.
    tried: set = set()
    queue: List[Tuple[str, ...]] = []
    for regions in candidate_orders(device, problem.regions):
        signature = tuple(region.name for region in regions)
        if signature not in tried:
            tried.add(signature)
            queue.append(signature)

    max_attempts = max(12, 3 * len(problem.regions))
    attempts = 0
    while queue and attempts < max_attempts:
        signature = queue.pop(0)
        attempts += 1
        regions = [problem.region_by_name(name) for name in signature]
        result, failing = _attempt_order(
            problem, spec, regions, max_candidates_with_copies
        )
        if result is not None:
            result.solve_time = time.perf_counter() - start
            return result
        if failing is not None and failing != signature[0]:
            promoted = (failing,) + tuple(n for n in signature if n != failing)
            if promoted not in tried:
                tried.add(promoted)
                queue.insert(0, promoted)

    return None


def _attempt_order(
    problem: FloorplanProblem,
    spec: RelocationSpec,
    regions: List,
    max_candidates_with_copies: int,
) -> Tuple[Optional[Floorplan], Optional[str]]:
    """One greedy pass over ``regions``; returns (floorplan, failing region)."""
    device = problem.device
    partition = problem.partition
    placements: Dict[str, Rect] = {}
    free_areas: Dict[str, Tuple[Rect, str]] = {}
    occupied: List[Rect] = []

    for region in regions:
        request = spec.request_for(region.name) if region.name in spec else None
        copies = request.copies if request is not None else 0

        candidates = list(iter_feasible_rects(device, region, occupied))
        candidates.sort(key=lambda rect: (rect_frames(device, rect), rect.col, rect.row))
        if copies:
            candidates = candidates[:max_candidates_with_copies]

        chosen_rect: Optional[Rect] = None
        chosen_copies: List[Rect] = []
        for rect in candidates:
            if copies:
                compatible = enumerate_free_compatible_areas(
                    partition, rect, occupied + [rect]
                )
                reserved = select_disjoint_areas(compatible, copies)
                if len(reserved) < copies and request is not None and request.hard:
                    continue
            else:
                reserved = []
            chosen_rect = rect
            chosen_copies = reserved
            break

        if chosen_rect is None:
            return None, region.name

        placements[region.name] = chosen_rect
        occupied.append(chosen_rect)
        for index, copy_rect in enumerate(chosen_copies, start=1):
            free_areas[spec.area_name(region.name, index)] = (copy_rect, region.name)
            occupied.append(copy_rect)

    floorplan = Floorplan(problem=problem, solver_status="relocation-greedy")
    for name, rect in placements.items():
        floorplan.placements[name] = RegionPlacement(name=name, rect=rect)
    for name, (rect, region_name) in free_areas.items():
        floorplan.free_areas[name] = RegionPlacement(
            name=name, rect=rect, compatible_with=region_name
        )
    return floorplan, None
