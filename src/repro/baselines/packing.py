"""Shared helpers for the greedy baseline floorplanners."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.device.grid import FPGADevice
from repro.device.resources import ResourceVector
from repro.floorplan.geometry import Rect
from repro.floorplan.problem import Region


def rect_is_free(device: FPGADevice, rect: Rect, occupied: Sequence[Rect]) -> bool:
    """Whether a rectangle fits the device, avoids forbidden cells and overlaps."""
    if not rect.within(device.width, device.height):
        return False
    for other in occupied:
        if rect.overlaps(other):
            return False
    return device.forbidden_cell_count(rect.col, rect.row, rect.width, rect.height) == 0


def rect_resources(device: FPGADevice, rect: Rect) -> ResourceVector:
    """Resources covered by a rectangle (histogram-based, one grid pass)."""
    histogram = device.tile_type_histogram(rect.col, rect.row, rect.width, rect.height)
    total = ResourceVector.zero()
    for count, tile_type in zip(histogram, device.tile_type_list):
        if count:
            total = total + tile_type.resources * count
    return total


def rect_frames(device: FPGADevice, rect: Rect) -> int:
    """Configuration frames covered by a rectangle."""
    histogram = device.tile_type_histogram(rect.col, rect.row, rect.width, rect.height)
    return sum(
        count * tile_type.frames
        for count, tile_type in zip(histogram, device.tile_type_list)
    )


def rect_satisfies(device: FPGADevice, rect: Rect, region: Region) -> bool:
    """Whether a rectangle covers the region's resource requirements."""
    if region.max_width is not None and rect.width > region.max_width:
        return False
    if region.max_height is not None and rect.height > region.max_height:
        return False
    return rect_resources(device, rect).covers(region.requirements)


def iter_feasible_rects(
    device: FPGADevice,
    region: Region,
    occupied: Sequence[Rect],
    heights: Iterable[int] | None = None,
    align_rows: bool = False,
) -> Iterator[Rect]:
    """Enumerate feasible rectangles for a region.

    Candidates are generated column-first (left to right), then by row, then by
    height; for each anchor the width grows until the requirement is met, so
    the yielded rectangle is the narrowest satisfying one at that anchor.

    Parameters
    ----------
    heights:
        Candidate heights to try (defaults to every height from the device
        height down to 1).
    align_rows:
        Restrict anchors to rows that are multiples of the candidate height
        (the "kernel tessellation" style alignment used by the
        reconfiguration-centric baseline).
    """
    height_options = list(heights) if heights is not None else list(range(device.height, 0, -1))
    for col in range(device.width):
        for h in height_options:
            if h <= 0 or h > device.height:
                continue
            row_candidates = (
                range(0, device.height - h + 1, h)
                if align_rows
                else range(0, device.height - h + 1)
            )
            for row in row_candidates:
                for width in range(1, device.width - col + 1):
                    rect = Rect(col, row, width, h)
                    if not rect_is_free(device, rect, occupied):
                        break  # growing wider keeps the conflict
                    if rect_satisfies(device, rect, region):
                        yield rect
                        break  # wider rectangles only add waste at this anchor


def best_rect(
    device: FPGADevice,
    region: Region,
    occupied: Sequence[Rect],
    heights: Iterable[int] | None = None,
    align_rows: bool = False,
) -> Rect | None:
    """The feasible rectangle with the fewest covered frames (ties: leftmost)."""
    best: Rect | None = None
    best_key: tuple | None = None
    for rect in iter_feasible_rects(device, region, occupied, heights, align_rows):
        key = (rect_frames(device, rect), rect.col, rect.row)
        if best_key is None or key < best_key:
            best, best_key = rect, key
    return best


def first_rect(
    device: FPGADevice,
    region: Region,
    occupied: Sequence[Rect],
    heights: Iterable[int] | None = None,
) -> Rect | None:
    """The first feasible rectangle in scan order (true first-fit)."""
    for rect in iter_feasible_rects(device, region, occupied, heights):
        return rect
    return None


def sort_regions_by_demand(regions: Sequence[Region]) -> List[Region]:
    """Regions sorted by decreasing total tile demand (big rocks first)."""
    return sorted(regions, key=lambda r: r.total_tiles, reverse=True)


def sort_regions_by_scarcity(
    device: FPGADevice, regions: Sequence[Region]
) -> List[Region]:
    """Regions sorted so that those needing the scarcest resources go first.

    Scarcity of a resource type is the aggregate demand divided by the device
    capacity; a region's key is the highest scarcity among the types it needs.
    Placing scarce-resource regions first keeps the few BRAM/DSP columns from
    being swallowed by large CLB-dominated regions — the failure mode of a
    plain biggest-first order on column-sparse devices.
    """
    capacity = device.total_resources()
    demand = ResourceVector.zero()
    for region in regions:
        demand = demand + region.requirements
    scarcity = {
        rtype: (demand.get(rtype) / capacity.get(rtype)) if capacity.get(rtype) else 1.0
        for rtype, _ in demand
    }

    def key(region: Region) -> tuple:
        needed = [scarcity[rtype] for rtype, count in region.requirements if count > 0]
        return (max(needed) if needed else 0.0, region.total_tiles)

    return sorted(regions, key=key, reverse=True)


def candidate_orders(device: FPGADevice, regions: Sequence[Region]) -> List[List[Region]]:
    """Placement orders worth trying, most promising first, without duplicates."""
    orders = [
        sort_regions_by_scarcity(device, regions),
        sort_regions_by_demand(regions),
        list(regions),
    ]
    unique: List[List[Region]] = []
    seen: set = set()
    for order in orders:
        signature = tuple(region.name for region in order)
        if signature not in seen:
            seen.add(signature)
            unique.append(order)
    return unique
