"""Architecture-aware greedy tessellation baseline (reference [8]).

Vipin & Fahmy's reconfiguration-centric floorplanner ("Columnar Kernel
Tessellation") is not available as open source; Table II of the paper only
uses its wasted-frame count on the SDR design.  This module implements a
greedy baseline with the same two defining characteristics:

* **architecture aware** — candidate slots follow the columnar resource
  layout and the slot chosen for a region is the one covering the fewest
  configuration frames (i.e. the smallest bitstream);
* **reconfiguration centric** — slots are tessellated: their heights are
  restricted to powers of two and anchored at multiples of that height, so
  that every slot is aligned to reconfiguration-friendly boundaries.  This
  alignment is what makes the heuristic waste more frames than the exact MILP
  of [10], reproducing the qualitative gap of Table II.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.baselines.packing import best_rect, candidate_orders
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem


def _power_of_two_heights(max_height: int) -> List[int]:
    heights = []
    h = 1
    while h <= max_height:
        heights.append(h)
        h *= 2
    return sorted(heights, reverse=True)


def tessellation_floorplan(
    problem: FloorplanProblem,
    region_order: Sequence[str] | None = None,
    align_rows: bool = True,
) -> Optional[Floorplan]:
    """Place every region on tessellated, power-of-two-height slots.

    Parameters
    ----------
    problem:
        The instance to place.
    region_order:
        Optional explicit placement order; defaults to decreasing demand.
    align_rows:
        Keep the kernel alignment (the defining restriction of the baseline);
        disabling it turns the heuristic into an unrestricted minimal-frames
        greedy packer, which the ablation benchmark uses for comparison.

    Returns
    -------
    Floorplan or None
        ``None`` if some region cannot be placed under the tessellation
        restrictions.
    """
    start = time.perf_counter()
    device = problem.device
    if region_order is not None:
        orders = [[problem.region_by_name(name) for name in region_order]]
    else:
        orders = candidate_orders(device, problem.regions)

    heights = _power_of_two_heights(device.height) if align_rows else None
    floorplan: Optional[Floorplan] = None
    for regions in orders:
        occupied: List[Rect] = []
        candidate = Floorplan(problem=problem, solver_status="tessellation")
        failed = False
        for region in regions:
            rect = best_rect(device, region, occupied, heights=heights, align_rows=align_rows)
            if rect is None and align_rows:
                # fall back to unaligned slots rather than failing outright; the
                # alignment preference is a heuristic, not a hard requirement
                rect = best_rect(device, region, occupied, heights=None, align_rows=False)
            if rect is None:
                failed = True
                break
            occupied.append(rect)
            candidate.placements[region.name] = RegionPlacement(name=region.name, rect=rect)
        if not failed:
            floorplan = candidate
            break
    if floorplan is None:
        return None
    floorplan.solve_time = time.perf_counter() - start
    return floorplan
