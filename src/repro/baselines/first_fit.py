"""First-fit greedy floorplanner.

This is the simplest complete placer in the repository: regions are processed
in decreasing resource demand and each one takes the first feasible rectangle
in column-major scan order.  Its purpose is to provide a fast feasible seed
for the HO mode and a lower bar for the baseline comparisons — it makes no
attempt to minimize wasted frames or wirelength.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.baselines.packing import candidate_orders, first_rect
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem


def first_fit_floorplan(
    problem: FloorplanProblem,
    region_order: Sequence[str] | None = None,
) -> Optional[Floorplan]:
    """Place every region with a first-fit scan.

    Parameters
    ----------
    problem:
        The instance to place.
    region_order:
        Optional explicit placement order (region names); defaults to
        decreasing resource demand.

    Returns
    -------
    Floorplan or None
        ``None`` when the greedy scan fails to place some region (which does
        not imply the instance is infeasible — the MILP may still succeed).
    """
    start = time.perf_counter()
    device = problem.device
    if region_order is not None:
        orders = [[problem.region_by_name(name) for name in region_order]]
    else:
        orders = candidate_orders(device, problem.regions)

    for regions in orders:
        occupied: List[Rect] = []
        floorplan = Floorplan(problem=problem, solver_status="first-fit")
        failed = False
        for region in regions:
            rect = first_rect(device, region, occupied)
            if rect is None:
                failed = True
                break
            occupied.append(rect)
            floorplan.placements[region.name] = RegionPlacement(name=region.name, rect=rect)
        if not failed:
            floorplan.solve_time = time.perf_counter() - start
            return floorplan
    return None
