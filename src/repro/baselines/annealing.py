"""Simulated-annealing floorplanner (reference [9]).

Bolchini, Miele and Sandionigi's resource-aware floorplanner explores
placements with simulated annealing, primarily minimizing wirelength while
keeping resource feasibility.  This module provides an equivalent baseline:

* the state is one rectangle per region;
* moves translate, resize or re-anchor a randomly chosen region;
* the cost blends hard-constraint penalties (overlaps, forbidden cells,
  resource deficits) with wasted frames and weighted wirelength, so the
  annealer first repairs feasibility and then polishes quality.

The annealer never uses wall-clock time or global randomness — everything is
driven by an explicit ``numpy`` generator seed, so runs are reproducible.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.packing import first_rect, rect_frames, rect_resources, sort_regions_by_demand
from repro.floorplan.geometry import Rect, manhattan
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem, Region


@dataclasses.dataclass
class AnnealingOptions:
    """Tuning knobs of the simulated-annealing baseline."""

    iterations: int = 20_000
    initial_temperature: float = 50.0
    cooling: float = 0.999
    seed: int = 0
    overlap_penalty: float = 500.0
    deficit_penalty: float = 500.0
    forbidden_penalty: float = 500.0
    wasted_frame_weight: float = 1.0
    wirelength_weight: float = 0.2


def annealing_floorplan(
    problem: FloorplanProblem,
    options: AnnealingOptions | None = None,
) -> Optional[Floorplan]:
    """Anneal a placement for every region of ``problem``.

    Returns ``None`` only when even the initial construction fails; otherwise
    the best feasible state seen is returned (or the best infeasible state,
    flagged through ``solver_status``, when feasibility was never reached).
    """
    options = options or AnnealingOptions()
    start = time.perf_counter()
    rng = np.random.default_rng(options.seed)
    device = problem.device
    regions = list(problem.regions)

    state = _initial_state(problem, rng)
    if state is None:
        return None

    evaluator = _CostEvaluator(problem, options)
    current_cost = evaluator.cost(state)
    best_state = dict(state)
    best_cost = current_cost
    best_feasible: Optional[Dict[str, Rect]] = None
    best_feasible_cost = math.inf
    if evaluator.is_feasible(state):
        best_feasible, best_feasible_cost = dict(state), current_cost

    temperature = options.initial_temperature
    region_names = [region.name for region in regions]

    for _ in range(options.iterations):
        name = region_names[int(rng.integers(len(region_names)))]
        candidate_rect = _propose(state[name], device.width, device.height, rng)
        if candidate_rect is None:
            continue
        old_rect = state[name]
        state[name] = candidate_rect
        candidate_cost = evaluator.cost(state)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current_cost = candidate_cost
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best_state = dict(state)
            if candidate_cost < best_feasible_cost and evaluator.is_feasible(state):
                best_feasible_cost = candidate_cost
                best_feasible = dict(state)
        else:
            state[name] = old_rect
        temperature *= options.cooling

    chosen = best_feasible if best_feasible is not None else best_state
    status = "annealing" if best_feasible is not None else "annealing-infeasible"
    floorplan = Floorplan(problem=problem, solver_status=status)
    for name, rect in chosen.items():
        floorplan.placements[name] = RegionPlacement(name=name, rect=rect)
    floorplan.solve_time = time.perf_counter() - start
    floorplan.metadata["iterations"] = options.iterations
    floorplan.metadata["final_cost"] = best_feasible_cost if best_feasible else best_cost
    return floorplan


# ----------------------------------------------------------------------
def _initial_state(problem: FloorplanProblem, rng: np.random.Generator) -> Optional[Dict[str, Rect]]:
    """Greedy construction, falling back to random rectangles when stuck."""
    device = problem.device
    occupied: List[Rect] = []
    state: Dict[str, Rect] = {}
    for region in sort_regions_by_demand(problem.regions):
        rect = first_rect(device, region, occupied)
        if rect is None:
            # random rectangle roughly sized for the demand; the annealer will repair it
            height = int(rng.integers(1, device.height + 1))
            width = max(1, math.ceil(region.total_tiles / height))
            width = min(width, device.width)
            col = int(rng.integers(0, device.width - width + 1))
            row = int(rng.integers(0, device.height - height + 1))
            rect = Rect(col, row, width, height)
        occupied.append(rect)
        state[region.name] = rect
    return state


def _propose(
    rect: Rect, device_width: int, device_height: int, rng: np.random.Generator
) -> Optional[Rect]:
    """Random neighbourhood move: translate, resize or re-anchor."""
    move = rng.integers(3)
    if move == 0:  # translate
        dcol = int(rng.integers(-2, 3))
        drow = int(rng.integers(-2, 3))
        candidate = Rect(rect.col + dcol, rect.row + drow, rect.width, rect.height)
    elif move == 1:  # resize (keep the anchor)
        dw = int(rng.integers(-1, 2))
        dh = int(rng.integers(-1, 2))
        candidate = Rect(rect.col, rect.row, max(1, rect.width + dw), max(1, rect.height + dh))
    else:  # re-anchor anywhere with the same shape
        col = int(rng.integers(0, max(1, device_width - rect.width + 1)))
        row = int(rng.integers(0, max(1, device_height - rect.height + 1)))
        candidate = Rect(col, row, rect.width, rect.height)
    if not candidate.within(device_width, device_height):
        return None
    return candidate


class _CostEvaluator:
    """Penalized cost of a (possibly infeasible) placement state."""

    def __init__(self, problem: FloorplanProblem, options: AnnealingOptions) -> None:
        self.problem = problem
        self.options = options
        self.device = problem.device
        self.regions: Dict[str, Region] = {r.name: r for r in problem.regions}
        self.required_frames = {
            r.name: problem.required_frames(r) for r in problem.regions
        }

    # ------------------------------------------------------------------
    def cost(self, state: Dict[str, Rect]) -> float:
        options = self.options
        overlap = 0
        rects = list(state.items())
        for i, (_, first) in enumerate(rects):
            for _, second in rects[i + 1 :]:
                overlap += first.intersection_area(second)

        forbidden = 0
        deficit_total = 0
        wasted = 0
        for name, rect in state.items():
            region = self.regions[name]
            for col, row in rect.cells():
                if self.device.is_forbidden(col, row):
                    forbidden += 1
            covered = rect_resources(self.device, rect)
            deficit_total += covered.deficit(region.requirements).total
            wasted += max(0, rect_frames(self.device, rect) - self.required_frames[name])

        wirelength = 0.0
        for connection in self.problem.connections:
            centers = []
            for endpoint in connection.endpoints():
                if endpoint in state:
                    centers.append(state[endpoint].center)
                else:
                    pin = self.problem.pin_by_name(endpoint)
                    centers.append(pin.center)
            wirelength += connection.weight * manhattan(centers[0], centers[1])

        return (
            options.overlap_penalty * overlap
            + options.forbidden_penalty * forbidden
            + options.deficit_penalty * deficit_total
            + options.wasted_frame_weight * wasted
            + options.wirelength_weight * wirelength
        )

    def is_feasible(self, state: Dict[str, Rect]) -> bool:
        rects = list(state.values())
        for i, first in enumerate(rects):
            for second in rects[i + 1 :]:
                if first.overlaps(second):
                    return False
        for name, rect in state.items():
            region = self.regions[name]
            if not rect.within(self.device.width, self.device.height):
                return False
            for col, row in rect.cells():
                if self.device.is_forbidden(col, row):
                    return False
            if not rect_resources(self.device, rect).covers(region.requirements):
                return False
        return True
