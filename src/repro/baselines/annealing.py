"""Simulated-annealing floorplanner (reference [9]).

Bolchini, Miele and Sandionigi's resource-aware floorplanner explores
placements with simulated annealing, primarily minimizing wirelength while
keeping resource feasibility.  This module provides an equivalent baseline:

* the state is one rectangle per region;
* moves translate, resize or re-anchor a randomly chosen region;
* the cost blends hard-constraint penalties (overlaps, forbidden cells,
  resource deficits) with wasted frames and weighted wirelength, so the
  annealer first repairs feasibility and then polishes quality.

The annealer never uses wall-clock time or global randomness — everything is
driven by an explicit ``numpy`` generator seed, so runs are reproducible.

Cost evaluation is *incremental*: a neighbour move changes one region's
rectangle, so only that region's forbidden/deficit/wasted components, its
overlap terms and the wirelength of the connections touching it are
recomputed (:class:`_IncrementalCostEvaluator`).  The full recompute
(:class:`_CostEvaluator`) is kept both as the readable specification of the
cost and as the reference that the equivalence tests run the annealer
against — the incremental path reproduces its costs bit-for-bit (integer
components are exact; the wirelength sum is re-accumulated in connection
order), so both evaluators drive the annealer through identical
accept/reject trajectories.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.packing import first_rect, rect_frames, rect_resources, sort_regions_by_demand
from repro.floorplan.geometry import Rect, manhattan
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem, Region


@dataclasses.dataclass
class AnnealingOptions:
    """Tuning knobs of the simulated-annealing baseline."""

    iterations: int = 20_000
    initial_temperature: float = 50.0
    cooling: float = 0.999
    seed: int = 0
    overlap_penalty: float = 500.0
    deficit_penalty: float = 500.0
    forbidden_penalty: float = 500.0
    wasted_frame_weight: float = 1.0
    wirelength_weight: float = 0.2
    #: Use the delta-cost evaluator (False falls back to full re-evaluation;
    #: both produce identical trajectories — this knob exists for the
    #: equivalence tests and for debugging).
    incremental: bool = True


def annealing_floorplan(
    problem: FloorplanProblem,
    options: AnnealingOptions | None = None,
) -> Optional[Floorplan]:
    """Anneal a placement for every region of ``problem``.

    Returns ``None`` only when even the initial construction fails; otherwise
    the best feasible state seen is returned (or the best infeasible state,
    flagged through ``solver_status``, when feasibility was never reached).
    """
    options = options or AnnealingOptions()
    start = time.perf_counter()
    rng = np.random.default_rng(options.seed)
    device = problem.device
    regions = list(problem.regions)

    state = _initial_state(problem, rng)
    if state is None:
        return None

    evaluator = (
        _IncrementalCostEvaluator(problem, options)
        if options.incremental
        else _CostEvaluator(problem, options)
    )
    current_cost = evaluator.reset(state)
    best_state = dict(state)
    best_cost = current_cost
    best_feasible: Optional[Dict[str, Rect]] = None
    best_feasible_cost = math.inf
    if evaluator.feasible(state):
        best_feasible, best_feasible_cost = dict(state), current_cost

    temperature = options.initial_temperature
    region_names = [region.name for region in regions]

    for _ in range(options.iterations):
        name = region_names[int(rng.integers(len(region_names)))]
        candidate_rect = _propose(state[name], device.width, device.height, rng)
        if candidate_rect is None:
            continue
        old_rect = state[name]
        state[name] = candidate_rect
        candidate_cost = evaluator.propose(name, candidate_rect, state)
        delta = candidate_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            evaluator.commit()
            current_cost = candidate_cost
            if candidate_cost < best_cost:
                best_cost = candidate_cost
                best_state = dict(state)
            if candidate_cost < best_feasible_cost and evaluator.feasible(state):
                best_feasible_cost = candidate_cost
                best_feasible = dict(state)
        else:
            evaluator.reject()
            state[name] = old_rect
        temperature *= options.cooling

    chosen = best_feasible if best_feasible is not None else best_state
    status = "annealing" if best_feasible is not None else "annealing-infeasible"
    floorplan = Floorplan(problem=problem, solver_status=status)
    for name, rect in chosen.items():
        floorplan.placements[name] = RegionPlacement(name=name, rect=rect)
    floorplan.solve_time = time.perf_counter() - start
    floorplan.metadata["iterations"] = options.iterations
    floorplan.metadata["final_cost"] = best_feasible_cost if best_feasible else best_cost
    return floorplan


# ----------------------------------------------------------------------
def _initial_state(problem: FloorplanProblem, rng: np.random.Generator) -> Optional[Dict[str, Rect]]:
    """Greedy construction, falling back to random rectangles when stuck."""
    device = problem.device
    occupied: List[Rect] = []
    state: Dict[str, Rect] = {}
    for region in sort_regions_by_demand(problem.regions):
        rect = first_rect(device, region, occupied)
        if rect is None:
            # random rectangle roughly sized for the demand; the annealer will repair it
            height = int(rng.integers(1, device.height + 1))
            width = max(1, math.ceil(region.total_tiles / height))
            width = min(width, device.width)
            col = int(rng.integers(0, device.width - width + 1))
            row = int(rng.integers(0, device.height - height + 1))
            rect = Rect(col, row, width, height)
        occupied.append(rect)
        state[region.name] = rect
    return state


def _propose(
    rect: Rect, device_width: int, device_height: int, rng: np.random.Generator
) -> Optional[Rect]:
    """Random neighbourhood move: translate, resize or re-anchor."""
    move = rng.integers(3)
    if move == 0:  # translate
        dcol = int(rng.integers(-2, 3))
        drow = int(rng.integers(-2, 3))
        candidate = Rect(rect.col + dcol, rect.row + drow, rect.width, rect.height)
    elif move == 1:  # resize (keep the anchor)
        dw = int(rng.integers(-1, 2))
        dh = int(rng.integers(-1, 2))
        candidate = Rect(rect.col, rect.row, max(1, rect.width + dw), max(1, rect.height + dh))
    else:  # re-anchor anywhere with the same shape
        col = int(rng.integers(0, max(1, device_width - rect.width + 1)))
        row = int(rng.integers(0, max(1, device_height - rect.height + 1)))
        candidate = Rect(col, row, rect.width, rect.height)
    if not candidate.within(device_width, device_height):
        return None
    return candidate


class _CostEvaluator:
    """Penalized cost of a (possibly infeasible) placement state.

    This is the reference implementation: every call re-evaluates the whole
    state.  It defines the semantics that :class:`_IncrementalCostEvaluator`
    must reproduce exactly.
    """

    def __init__(self, problem: FloorplanProblem, options: AnnealingOptions) -> None:
        self.problem = problem
        self.options = options
        self.device = problem.device
        self.regions: Dict[str, Region] = {r.name: r for r in problem.regions}
        self.required_frames = {
            r.name: problem.required_frames(r) for r in problem.regions
        }

    # ------------------------------------------------------------------
    def cost(self, state: Dict[str, Rect]) -> float:
        options = self.options
        overlap = 0
        rects = list(state.items())
        for i, (_, first) in enumerate(rects):
            for _, second in rects[i + 1 :]:
                overlap += first.intersection_area(second)

        forbidden = 0
        deficit_total = 0
        wasted = 0
        for name, rect in state.items():
            region = self.regions[name]
            for col, row in rect.cells():
                if self.device.is_forbidden(col, row):
                    forbidden += 1
            covered = rect_resources(self.device, rect)
            deficit_total += covered.deficit(region.requirements).total
            wasted += max(0, rect_frames(self.device, rect) - self.required_frames[name])

        wirelength = 0.0
        for connection in self.problem.connections:
            centers = []
            for endpoint in connection.endpoints():
                if endpoint in state:
                    centers.append(state[endpoint].center)
                else:
                    pin = self.problem.pin_by_name(endpoint)
                    centers.append(pin.center)
            wirelength += connection.weight * manhattan(centers[0], centers[1])

        return (
            options.overlap_penalty * overlap
            + options.forbidden_penalty * forbidden
            + options.deficit_penalty * deficit_total
            + options.wasted_frame_weight * wasted
            + options.wirelength_weight * wirelength
        )

    def is_feasible(self, state: Dict[str, Rect]) -> bool:
        rects = list(state.values())
        for i, first in enumerate(rects):
            for second in rects[i + 1 :]:
                if first.overlaps(second):
                    return False
        for name, rect in state.items():
            region = self.regions[name]
            if not rect.within(self.device.width, self.device.height):
                return False
            for col, row in rect.cells():
                if self.device.is_forbidden(col, row):
                    return False
            if not rect_resources(self.device, rect).covers(region.requirements):
                return False
        return True

    # -- annealer protocol (full re-evaluation on every call) -----------
    def reset(self, state: Dict[str, Rect]) -> float:
        return self.cost(state)

    def propose(self, name: str, new_rect: Rect, state: Dict[str, Rect]) -> float:
        return self.cost(state)

    def commit(self) -> None:
        pass

    def reject(self) -> None:
        pass

    def feasible(self, state: Dict[str, Rect]) -> bool:
        return self.is_feasible(state)


class _IncrementalCostEvaluator:
    """Delta-cost evaluation: only re-measure what a single move changed.

    Cached per region: the forbidden-cell count, resource deficit and wasted
    frames of its current rectangle (pure functions of the rectangle, memoized
    per ``(name, rect)``), plus its ``within``-bounds flag.  Cached globally:
    the total pairwise overlap (exact integer, updated with the O(n) terms
    involving the moved region) and the per-connection wirelengths.

    Bit-for-bit equivalence with :class:`_CostEvaluator`: all penalty
    components are integers (exact under any update order) and the wirelength
    is re-accumulated over the per-connection values in connection order —
    the same additions, in the same order, as the reference loop.
    """

    def __init__(self, problem: FloorplanProblem, options: AnnealingOptions) -> None:
        self.problem = problem
        self.options = options
        self.device = problem.device
        self.regions: Dict[str, Region] = {r.name: r for r in problem.regions}
        self.required_frames = {
            r.name: problem.required_frames(r) for r in problem.regions
        }
        # connections touching each region, as indices into problem.connections
        self._conn_indices: Dict[str, List[int]] = {name: [] for name in self.regions}
        for index, connection in enumerate(problem.connections):
            for endpoint in connection.endpoints():
                if endpoint in self._conn_indices:
                    self._conn_indices[endpoint].append(index)
        self._component_memo: Dict[Tuple[str, Rect], Tuple[int, int, int, bool]] = {}
        # mutable run state (filled by reset)
        self._names: List[str] = []
        self._rects: Dict[str, Rect] = {}
        self._components: Dict[str, Tuple[int, int, int, bool]] = {}
        self._overlap_total = 0
        self._conn_lengths: List[float] = []
        self._pending: Optional[Tuple[str, Rect, Tuple[int, int, int, bool], int, Dict[int, float]]] = None

    # ------------------------------------------------------------------
    def _region_components(self, name: str, rect: Rect) -> Tuple[int, int, int, bool]:
        """(forbidden, deficit, wasted, within) of one region's rectangle."""
        key = (name, rect)
        cached = self._component_memo.get(key)
        if cached is None:
            region = self.regions[name]
            within = rect.within(self.device.width, self.device.height)
            forbidden = self.device.forbidden_cell_count(
                rect.col, rect.row, rect.width, rect.height
            )
            covered = rect_resources(self.device, rect)
            deficit = covered.deficit(region.requirements).total
            wasted = max(
                0, rect_frames(self.device, rect) - self.required_frames[name]
            )
            cached = (forbidden, deficit, wasted, within)
            self._component_memo[key] = cached
        return cached

    def _connection_length(self, index: int) -> float:
        connection = self.problem.connections[index]
        centers = []
        for endpoint in connection.endpoints():
            if endpoint in self._rects:
                centers.append(self._rects[endpoint].center)
            else:
                centers.append(self.problem.pin_by_name(endpoint).center)
        return connection.weight * manhattan(centers[0], centers[1])

    def _total_cost(self, wirelength: float, forbidden: int, deficit: int, wasted: int) -> float:
        options = self.options
        return (
            options.overlap_penalty * self._overlap_total
            + options.forbidden_penalty * forbidden
            + options.deficit_penalty * deficit
            + options.wasted_frame_weight * wasted
            + options.wirelength_weight * wirelength
        )

    def _summed_components(self) -> Tuple[int, int, int]:
        forbidden = deficit = wasted = 0
        for name in self._names:
            f, d, w, _ = self._components[name]
            forbidden += f
            deficit += d
            wasted += w
        return forbidden, deficit, wasted

    # ------------------------------------------------------------------
    def reset(self, state: Dict[str, Rect]) -> float:
        """Full evaluation; establishes the caches for later deltas."""
        self._pending = None
        self._names = list(state.keys())
        self._rects = dict(state)
        self._components = {
            name: self._region_components(name, rect) for name, rect in state.items()
        }
        self._overlap_total = 0
        rect_list = list(state.values())
        for i, first in enumerate(rect_list):
            for second in rect_list[i + 1 :]:
                self._overlap_total += first.intersection_area(second)
        self._conn_lengths = [
            self._connection_length(index)
            for index in range(len(self.problem.connections))
        ]
        wirelength = 0.0
        for length in self._conn_lengths:
            wirelength += length
        forbidden, deficit, wasted = self._summed_components()
        return self._total_cost(wirelength, forbidden, deficit, wasted)

    def propose(self, name: str, new_rect: Rect, state: Dict[str, Rect]) -> float:
        """Cost of the state with ``name`` moved to ``new_rect`` (uncommitted)."""
        old_rect = self._rects[name]
        overlap_delta = 0
        for other_name in self._names:
            if other_name == name:
                continue
            other = self._rects[other_name]
            overlap_delta += new_rect.intersection_area(other)
            overlap_delta -= old_rect.intersection_area(other)

        new_components = self._region_components(name, new_rect)

        changed_lengths: Dict[int, float] = {}
        if self._conn_indices.get(name):
            # evaluate affected connections against the candidate rectangle
            self._rects[name] = new_rect
            try:
                for index in self._conn_indices[name]:
                    changed_lengths[index] = self._connection_length(index)
            finally:
                self._rects[name] = old_rect

        wirelength = 0.0
        for index, length in enumerate(self._conn_lengths):
            wirelength += changed_lengths.get(index, length)

        self._overlap_total += overlap_delta
        old_components = self._components[name]
        forbidden, deficit, wasted = self._summed_components()
        forbidden += new_components[0] - old_components[0]
        deficit += new_components[1] - old_components[1]
        wasted += new_components[2] - old_components[2]
        cost = self._total_cost(wirelength, forbidden, deficit, wasted)
        self._overlap_total -= overlap_delta

        self._pending = (name, new_rect, new_components, overlap_delta, changed_lengths)
        return cost

    def commit(self) -> None:
        """Adopt the last proposed move into the caches."""
        if self._pending is None:
            raise RuntimeError("commit() without a pending propose()")
        name, new_rect, components, overlap_delta, changed_lengths = self._pending
        self._rects[name] = new_rect
        self._components[name] = components
        self._overlap_total += overlap_delta
        for index, length in changed_lengths.items():
            self._conn_lengths[index] = length
        self._pending = None

    def reject(self) -> None:
        """Discard the last proposed move."""
        self._pending = None

    def feasible(self, state: Dict[str, Rect]) -> bool:
        """Feasibility from the cached components (post-commit state).

        Equivalent to :meth:`_CostEvaluator.is_feasible`: zero overlap, every
        rectangle within bounds and off forbidden cells, zero resource
        deficit.
        """
        if self._overlap_total != 0:
            return False
        for name in self._names:
            forbidden, deficit, _, within = self._components[name]
            if not within or forbidden != 0 or deficit != 0:
                return False
        return True
