"""Mode-activation schedules.

The SDR design configures, for each module, one of several mutually exclusive
modes at a time (Section VI).  A :class:`ModeSchedule` is simply the sequence
of (region, mode) activations a system goes through; the generator below
produces reproducible synthetic schedules for the run-time benchmarks.

Schedules may optionally carry per-step *dwell times* — how long the system
stays in a step's mode before the next activation fires.  Untimed schedules
(the default, dwell 0 everywhere) behave exactly as before; timed ones
convert losslessly into the simulator's trace-replay traffic via
:meth:`ModeSchedule.timed_steps`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ModeSchedule:
    """A sequence of mode activations.

    Attributes
    ----------
    steps:
        Ordered list of ``(region, mode)`` pairs; at each step the given
        region must be reconfigured to run the given mode.
    dwells:
        Optional per-step dwell times (seconds spent in the step's mode
        before the next activation).  Empty means "untimed": every dwell is
        0 and the schedule is a pure ordering, as in the original replays.
        When non-empty it must have one non-negative entry per step.
    """

    steps: Tuple[Tuple[str, str], ...]
    dwells: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.dwells:
            if len(self.dwells) != len(self.steps):
                raise ValueError(
                    f"dwells must match steps: {len(self.dwells)} != {len(self.steps)}"
                )
            if any(dwell < 0 for dwell in self.dwells):
                raise ValueError("dwell times must be non-negative")

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def regions(self) -> List[str]:
        """Regions touched by the schedule, in first-appearance order."""
        seen: Dict[str, None] = {}
        for region, _ in self.steps:
            seen.setdefault(region, None)
        return list(seen.keys())

    def activations_per_region(self) -> Dict[str, int]:
        """Number of activations per region."""
        counts: Dict[str, int] = {}
        for region, _ in self.steps:
            counts[region] = counts.get(region, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def dwell_at(self, index: int) -> float:
        """Dwell time of step ``index`` (0 for untimed schedules)."""
        return self.dwells[index] if self.dwells else 0.0

    @property
    def duration(self) -> float:
        """Total dwell time of the schedule (0 when untimed)."""
        return float(sum(self.dwells)) if self.dwells else 0.0

    def with_dwells(self, dwells: Sequence[float]) -> "ModeSchedule":
        """A timed copy of this schedule with the given per-step dwells."""
        return ModeSchedule(steps=self.steps, dwells=tuple(float(d) for d in dwells))

    def timed_steps(self) -> List[Tuple[float, str, str]]:
        """``(time, region, mode)`` triples with cumulative activation times.

        Step ``i`` fires after the dwells of all preceding steps, so an
        untimed schedule becomes a burst of activations at ``t=0`` in the
        original order — the lossless conversion the simulator replays.
        """
        timed: List[Tuple[float, str, str]] = []
        now = 0.0
        for index, (region, mode) in enumerate(self.steps):
            timed.append((now, region, mode))
            now += self.dwell_at(index)
        return timed

    # ------------------------------------------------------------------
    # serialization (capture→replay round trips through JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe document; :meth:`from_dict` inverts it losslessly."""
        return {
            "steps": [[region, mode] for region, mode in self.steps],
            "dwells": [float(dwell) for dwell in self.dwells],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModeSchedule":
        steps = tuple(
            (str(region), str(mode)) for region, mode in data.get("steps", [])
        )
        return cls(
            steps=steps,
            dwells=tuple(float(dwell) for dwell in data.get("dwells", ())),
        )


def round_robin_schedule(
    regions: Sequence[str],
    modes_per_region: int = 3,
    rounds: int = 2,
) -> ModeSchedule:
    """Cycle every region through its modes, ``rounds`` times."""
    steps: List[Tuple[str, str]] = []
    for round_index in range(rounds):
        for region in regions:
            mode = f"mode{(round_index % modes_per_region) + 1}"
            steps.append((region, mode))
    return ModeSchedule(steps=tuple(steps))


def random_schedule(
    regions: Sequence[str],
    length: int,
    modes_per_region: int = 3,
    seed: int = 0,
    dwell_mean: float = 0.0,
) -> ModeSchedule:
    """A random activation sequence (seeded, reproducible).

    ``dwell_mean > 0`` additionally draws exponential per-step dwell times
    with that mean, producing a timed schedule; the default keeps the
    original untimed behavior (and byte-identical schedules for old seeds).
    """
    if not regions:
        raise ValueError("need at least one region to schedule")
    if dwell_mean < 0:
        raise ValueError("dwell_mean must be non-negative")
    rng = np.random.default_rng(seed)
    steps: List[Tuple[str, str]] = []
    for _ in range(length):
        region = regions[int(rng.integers(len(regions)))]
        mode = f"mode{int(rng.integers(modes_per_region)) + 1}"
        steps.append((region, mode))
    dwells: Tuple[float, ...] = ()
    if dwell_mean > 0:
        dwells = tuple(float(d) for d in rng.exponential(dwell_mean, size=length))
    return ModeSchedule(steps=tuple(steps), dwells=dwells)
