"""Mode-activation schedules.

The SDR design configures, for each module, one of several mutually exclusive
modes at a time (Section VI).  A :class:`ModeSchedule` is simply the sequence
of (region, mode) activations a system goes through; the generator below
produces reproducible synthetic schedules for the run-time benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ModeSchedule:
    """A sequence of mode activations.

    Attributes
    ----------
    steps:
        Ordered list of ``(region, mode)`` pairs; at each step the given
        region must be reconfigured to run the given mode.
    """

    steps: Tuple[Tuple[str, str], ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def regions(self) -> List[str]:
        """Regions touched by the schedule, in first-appearance order."""
        seen: Dict[str, None] = {}
        for region, _ in self.steps:
            seen.setdefault(region, None)
        return list(seen.keys())

    def activations_per_region(self) -> Dict[str, int]:
        """Number of activations per region."""
        counts: Dict[str, int] = {}
        for region, _ in self.steps:
            counts[region] = counts.get(region, 0) + 1
        return counts


def round_robin_schedule(
    regions: Sequence[str],
    modes_per_region: int = 3,
    rounds: int = 2,
) -> ModeSchedule:
    """Cycle every region through its modes, ``rounds`` times."""
    steps: List[Tuple[str, str]] = []
    for round_index in range(rounds):
        for region in regions:
            mode = f"mode{(round_index % modes_per_region) + 1}"
            steps.append((region, mode))
    return ModeSchedule(steps=tuple(steps))


def random_schedule(
    regions: Sequence[str],
    length: int,
    modes_per_region: int = 3,
    seed: int = 0,
) -> ModeSchedule:
    """A random activation sequence (seeded, reproducible)."""
    if not regions:
        raise ValueError("need at least one region to schedule")
    rng = np.random.default_rng(seed)
    steps: List[Tuple[str, str]] = []
    for _ in range(length):
        region = regions[int(rng.integers(len(regions)))]
        mode = f"mode{int(rng.integers(modes_per_region)) + 1}"
        steps.append((region, mode))
    return ModeSchedule(steps=tuple(steps))
