"""A small partial-reconfiguration run-time built on top of the floorplanner.

The introduction of the paper motivates relocation with design re-use and fast
run-time reconfiguration.  This package makes that motivation executable: a
:class:`~repro.runtime.manager.ReconfigurationManager` owns a solved
:class:`~repro.floorplan.placement.Floorplan` (including its reserved
free-compatible areas), loads module modes through the simulated
configuration memory and serves relocation requests by retargeting bitstreams
with the relocation filter.  :mod:`~repro.runtime.scheduler` generates mode
activation schedules (optionally timed, via per-step dwell times) and
:mod:`~repro.runtime.trace` records what happened so the benchmarks can
report reconfiguration counts and moved frame volumes.  The online
discrete-event simulator (:mod:`repro.sim`) layers stochastic traffic, fault
injection and decision policies on top of this package.
"""

import warnings

from repro.runtime.manager import (
    BitstreamCache,
    ReconfigurationError,
    ReconfigurationManager,
)
from repro.runtime.scheduler import ModeSchedule, random_schedule, round_robin_schedule
from repro.runtime.trace import EventKind, RuntimeTrace, TraceEvent

# NOTE: the deprecated RuntimeError_ alias is intentionally NOT in __all__ —
# a star import would otherwise trigger its DeprecationWarning for everyone.
# Explicit `from repro.runtime import RuntimeError_` still resolves (and warns)
# through the module __getattr__ below.
__all__ = [
    "ReconfigurationManager",
    "ReconfigurationError",
    "BitstreamCache",
    "ModeSchedule",
    "round_robin_schedule",
    "random_schedule",
    "RuntimeTrace",
    "TraceEvent",
    "EventKind",
]


def __getattr__(name: str):
    if name == "RuntimeError_":
        warnings.warn(
            "RuntimeError_ is deprecated; use ReconfigurationError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return ReconfigurationError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
