"""A small partial-reconfiguration run-time built on top of the floorplanner.

The introduction of the paper motivates relocation with design re-use and fast
run-time reconfiguration.  This package makes that motivation executable: a
:class:`~repro.runtime.manager.ReconfigurationManager` owns a solved
:class:`~repro.floorplan.placement.Floorplan` (including its reserved
free-compatible areas), loads module modes through the simulated
configuration memory and serves relocation requests by retargeting bitstreams
with the relocation filter.  :mod:`~repro.runtime.scheduler` generates mode
activation schedules and :mod:`~repro.runtime.trace` records what happened so
the benchmarks can report reconfiguration counts and moved frame volumes.
"""

from repro.runtime.manager import (
    ReconfigurationError,
    ReconfigurationManager,
    RuntimeError_,
)
from repro.runtime.scheduler import ModeSchedule, round_robin_schedule
from repro.runtime.trace import EventKind, RuntimeTrace, TraceEvent

__all__ = [
    "ReconfigurationManager",
    "ReconfigurationError",
    "RuntimeError_",  # deprecated alias of ReconfigurationError
    "ModeSchedule",
    "round_robin_schedule",
    "RuntimeTrace",
    "TraceEvent",
    "EventKind",
]
