"""Run-time event tracing."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional


class EventKind(enum.Enum):
    """Kinds of events recorded by the run-time manager."""

    CONFIGURE = "configure"
    RECONFIGURE = "reconfigure"
    RELOCATE = "relocate"
    UNLOAD = "unload"
    REJECT = "reject"
    FAULT = "fault"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded run-time event.

    ``time`` is the virtual timestamp of the event when the manager is driven
    by a simulation clock (see :mod:`repro.sim`); untimed replays leave it 0.
    """

    step: int
    kind: EventKind
    region: str
    module: str
    frames: int = 0
    target: Optional[str] = None
    detail: str = ""
    time: float = 0.0


class RuntimeTrace:
    """An append-only list of :class:`TraceEvent` with summary statistics."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        """Append an event."""
        self.events.append(event)

    def count(self, kind: EventKind) -> int:
        """Number of events of a given kind."""
        return sum(1 for event in self.events if event.kind is kind)

    def frames_written(self) -> int:
        """Total configuration frames written by configure/reconfigure/relocate."""
        return sum(
            event.frames
            for event in self.events
            if event.kind in (EventKind.CONFIGURE, EventKind.RECONFIGURE, EventKind.RELOCATE)
        )

    def summary(self) -> Dict[str, int]:
        """Aggregate counters keyed by event kind plus total frames written."""
        counters = {kind.value: self.count(kind) for kind in EventKind}
        counters["frames_written"] = self.frames_written()
        return counters

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
