"""The partial-reconfiguration run-time manager.

The manager owns a solved floorplan and drives the simulated configuration
path.  It supports the two operations the paper's introduction motivates:

* **reconfigure** a region with a new mode — generate (or fetch from the
  bitstream cache) the mode's bitstream for the region's home placement and
  load it;
* **relocate** a region's currently-loaded module into one of the
  free-compatible areas the floorplanner reserved — retarget the bitstream
  with the relocation filter and load it at the new location, freeing the
  home placement (e.g. to let another, larger module in, or to route around a
  faulty area).

On top of the offline replay path the manager exposes the hooks the online
simulator (:mod:`repro.sim`) needs: a ``clock`` callable that timestamps
trace events with virtual time, :meth:`inject_fault` to mask rectangles as
faulty (placements overlapping a fault are rejected, forcing relocation or a
re-floorplan), an optional ``allowed_modes`` table that turns unknown-mode
requests into :class:`ReconfigurationError`, and an externally-shareable
bounded :class:`BitstreamCache` with hit/miss/eviction counters.

Every operation is recorded in a :class:`~repro.runtime.trace.RuntimeTrace`.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bitstream.bitstream import PartialBitstream, generate_bitstream
from repro.bitstream.memory import ConfigurationMemory
from repro.bitstream.relocate import RelocationError, relocate_bitstream
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan
from repro.runtime.trace import EventKind, RuntimeTrace, TraceEvent


class ReconfigurationError(RuntimeError):
    """Raised on invalid run-time requests (unknown region, no free area...)."""


class BitstreamCache:
    """A bounded LRU cache of generated/relocated partial bitstreams.

    The cache is keyed by ``(device, region, mode, rect)`` and capped at
    ``capacity`` entries; the least-recently-used entry is evicted when the
    cap is hit.  Hit/miss/eviction counters are exposed through :meth:`stats`
    so the simulator's reports can show cache effectiveness.  A single cache
    may be shared by several managers (the "external bitstream cache"
    deployment, where one store backs every device of a fleet) — the device
    name in the key keeps bitstreams generated for different fabrics apart.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, PartialBitstream]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: tuple) -> Optional[PartialBitstream]:
        """The cached bitstream for ``key`` (LRU-refreshed), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, bitstream: PartialBitstream) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail past capacity."""
        self._entries[key] = bitstream
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def drop_device(self, device_name: str) -> int:
        """Invalidate every entry for a device; returns the count dropped.

        Used when a device is retired (e.g. replaced by its fault-masked
        successor after a live re-floorplan) so dead entries stop occupying
        LRU capacity.  Counted separately from capacity evictions.
        """
        dead = [key for key in self._entries if key[0] == device_name]
        for key in dead:
            del self._entries[key]
        self.invalidations += len(dead)
        return len(dead)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counters: size, capacity, hits, misses, evictions, invalidations."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"BitstreamCache({len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )


class ReconfigurationManager:
    """Drives mode reconfiguration and bitstream relocation on a floorplan.

    Parameters
    ----------
    floorplan:
        A complete solved floorplan (every region placed).
    cache:
        Optional externally-owned :class:`BitstreamCache`; by default each
        manager gets a private cache of ``cache_capacity`` entries.
    cache_capacity:
        Capacity of the private cache when ``cache`` is not given.
    clock:
        Optional zero-argument callable returning the current (virtual) time;
        when set, every trace event carries its timestamp.
    allowed_modes:
        Optional ``{region: [mode, ...]}`` table.  When present, reconfigure
        requests for a mode not listed for the region are rejected — the
        simulator uses this to model requests for modes the design does not
        ship bitstreams for.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        cache: Optional[BitstreamCache] = None,
        cache_capacity: int = 64,
        clock: Optional[Callable[[], float]] = None,
        allowed_modes: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        if not floorplan.is_complete:
            raise ReconfigurationError("the floorplan must place every region")
        self.floorplan = floorplan
        self.device = floorplan.device
        self.partition = floorplan.problem.partition
        self.memory = ConfigurationMemory(self.device.name)
        self.trace = RuntimeTrace()
        self.clock = clock
        self.allowed_modes = (
            {region: tuple(modes) for region, modes in allowed_modes.items()}
            if allowed_modes is not None
            else None
        )
        self._step = 0
        # where each region's active module currently lives (home or a free area)
        self._current_rect: Dict[str, Rect] = {
            name: placement.rect for name, placement in floorplan.placements.items()
        }
        self._current_module: Dict[str, Optional[str]] = {
            name: None for name in floorplan.placements
        }
        self._bitstream_cache = cache if cache is not None else BitstreamCache(cache_capacity)
        self._faults: List[Tuple[Rect, str]] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def current_location(self, region: str) -> Rect:
        """Rectangle currently hosting the region's active module."""
        self._check_region(region)
        return self._current_rect[region]

    def active_module(self, region: str) -> Optional[str]:
        """Mode currently loaded for a region (``None`` before the first load)."""
        self._check_region(region)
        return self._current_module[region]

    def available_relocation_targets(self, region: str) -> List[Rect]:
        """Free-compatible areas of the region not currently hosting anyone.

        Fault-masked areas are excluded: relocating into a rectangle that
        overlaps an injected fault would place the module on broken fabric.
        """
        self._check_region(region)
        occupied = [
            rect for name, rect in self._current_rect.items() if name != region
        ]
        targets = []
        for area in self.floorplan.free_areas_for(region):
            if not area.satisfied:
                continue
            if area.rect == self._current_rect[region]:
                continue
            if any(area.rect.overlaps(rect) for rect in occupied):
                continue
            if self.is_fault_masked(area.rect):
                continue
            targets.append(area.rect)
        return targets

    def cache_stats(self) -> Dict[str, int]:
        """Bitstream-cache counters (size/capacity/hits/misses/evictions)."""
        return self._bitstream_cache.stats()

    @property
    def bitstream_cache(self) -> BitstreamCache:
        """The (possibly shared) bitstream cache backing this manager."""
        return self._bitstream_cache

    # ------------------------------------------------------------------
    # fault masking
    # ------------------------------------------------------------------
    @property
    def faulty_rects(self) -> List[Rect]:
        """Rectangles currently masked as faulty."""
        return [rect for rect, _ in self._faults]

    @property
    def faults(self) -> List[Tuple[Rect, str]]:
        """Injected faults as ``(rect, detail)`` pairs."""
        return list(self._faults)

    def is_fault_masked(self, rect: Rect) -> bool:
        """Whether ``rect`` overlaps any injected fault."""
        return any(rect.overlaps(fault) for fault, _ in self._faults)

    def inject_fault(self, rect: Rect, detail: str = "", record: bool = True) -> None:
        """Mask ``rect`` as faulty fabric.

        Subsequent loads into any placement overlapping the fault are
        rejected; already-loaded modules keep running (the model is a
        configuration-plane fault, detected on the next write), but the usual
        recovery is to relocate them away before the next reconfiguration.
        ``record=False`` skips the trace event — used when a replacement
        manager inherits faults that were already recorded once.
        """
        self._faults.append((rect, detail))
        if not record:
            return
        self._step += 1
        self.trace.record(
            TraceEvent(
                step=self._step,
                kind=EventKind.FAULT,
                region="",
                module="",
                target=str(rect),
                detail=detail or "fault injected",
                time=self._now(),
            )
        )

    def clear_faults(self) -> None:
        """Forget every injected fault (a repaired / reloaded device)."""
        self._faults.clear()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def reconfigure(self, region: str, mode: str) -> PartialBitstream:
        """Load ``mode`` into the region at its current location."""
        self._check_region(region)
        if self.allowed_modes is not None and mode not in self.allowed_modes.get(
            region, ()
        ):
            self._reject(region, mode, f"unknown mode {mode!r} for region {region!r}")
        rect = self._current_rect[region]
        if self.is_fault_masked(rect):
            self._reject(
                region,
                mode,
                f"current placement {rect} of region {region!r} is fault-masked",
            )
        self._step += 1
        bitstream = self._bitstream_for(region, mode, rect)
        previous = self._current_module[region]
        if previous is not None:
            self.memory.unload(self._module_key(region, previous))
        self.memory.load(bitstream)
        self._current_module[region] = mode
        kind = EventKind.CONFIGURE if previous is None else EventKind.RECONFIGURE
        self.trace.record(
            TraceEvent(
                step=self._step,
                kind=kind,
                region=region,
                module=mode,
                frames=bitstream.num_frames,
                time=self._now(),
            )
        )
        return bitstream

    def relocate(self, region: str, target: Rect | None = None) -> PartialBitstream:
        """Move the region's active module into a free-compatible area.

        ``target`` defaults to the first available reserved area.  The home
        placement (or previous area) is unloaded, so its frames become free
        for other uses — exactly the design-reuse scenario of the paper.
        """
        self._check_region(region)
        mode = self._current_module[region]
        if mode is None:
            raise ReconfigurationError(f"region {region!r} has no loaded module to relocate")
        targets = self.available_relocation_targets(region)
        if target is None:
            if not targets:
                self._reject(
                    region,
                    mode,
                    f"no free-compatible area available for region {region!r}",
                )
            target = targets[0]
        elif self.is_fault_masked(target):
            self._reject(
                region,
                mode,
                f"relocation target {target} for region {region!r} is fault-masked",
            )

        self._step += 1
        source_rect = self._current_rect[region]
        source = self._bitstream_for(region, mode, source_rect)
        occupied = [
            rect for name, rect in self._current_rect.items() if name != region
        ]
        try:
            relocated = relocate_bitstream(
                source, target, self.device, self.partition, occupied
            )
        except RelocationError as exc:
            self.trace.record(
                TraceEvent(
                    step=self._step,
                    kind=EventKind.REJECT,
                    region=region,
                    module=mode,
                    detail=str(exc),
                    time=self._now(),
                )
            )
            raise ReconfigurationError(str(exc)) from exc

        self.memory.unload(self._module_key(region, mode))
        # relocated bitstream keeps the module identity but a new anchor
        self.memory.load(relocated, allow_overwrite=False)
        self._current_rect[region] = target
        self._bitstream_cache.put(self._cache_key(region, mode, target), relocated)
        self.trace.record(
            TraceEvent(
                step=self._step,
                kind=EventKind.RELOCATE,
                region=region,
                module=mode,
                frames=relocated.num_frames,
                target=str(target),
                time=self._now(),
            )
        )
        return relocated

    def return_home(self, region: str) -> PartialBitstream:
        """Relocate the region's module back to its floorplanned home area."""
        self._check_region(region)
        home = self.floorplan.placements[region].rect
        if self._current_rect[region] == home:
            raise ReconfigurationError(f"region {region!r} is already at its home placement")
        return self.relocate(region, target=home)

    # ------------------------------------------------------------------
    def _bitstream_for(self, region: str, mode: str, rect: Rect) -> PartialBitstream:
        key = self._cache_key(region, mode, rect)
        bitstream = self._bitstream_cache.get(key)
        if bitstream is None:
            bitstream = generate_bitstream(
                self.device, rect, module=self._module_key(region, mode)
            )
            self._bitstream_cache.put(key, bitstream)
        return bitstream

    def _cache_key(self, region: str, mode: str, rect: Rect) -> tuple:
        return (self.device.name, region, mode, self._rect_key(rect))

    def _now(self) -> float:
        return float(self.clock()) if self.clock is not None else 0.0

    def _reject(self, region: str, mode: str, detail: str) -> None:
        self._step += 1
        self.trace.record(
            TraceEvent(
                step=self._step,
                kind=EventKind.REJECT,
                region=region,
                module=mode,
                detail=detail,
                time=self._now(),
            )
        )
        raise ReconfigurationError(detail)

    @staticmethod
    def _module_key(region: str, mode: str) -> str:
        return f"{region}:{mode}"

    @staticmethod
    def _rect_key(rect: Rect) -> tuple:
        return (rect.col, rect.row, rect.width, rect.height)

    def _check_region(self, region: str) -> None:
        if region not in self._current_rect:
            raise ReconfigurationError(f"unknown region {region!r}")


def __getattr__(name: str):
    if name == "RuntimeError_":
        warnings.warn(
            "RuntimeError_ is deprecated; use ReconfigurationError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return ReconfigurationError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
