"""The partial-reconfiguration run-time manager.

The manager owns a solved floorplan and drives the simulated configuration
path.  It supports the two operations the paper's introduction motivates:

* **reconfigure** a region with a new mode — generate (or fetch from the
  bitstream cache) the mode's bitstream for the region's home placement and
  load it;
* **relocate** a region's currently-loaded module into one of the
  free-compatible areas the floorplanner reserved — retarget the bitstream
  with the relocation filter and load it at the new location, freeing the
  home placement (e.g. to let another, larger module in, or to route around a
  faulty area).

Every operation is recorded in a :class:`~repro.runtime.trace.RuntimeTrace`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bitstream.bitstream import PartialBitstream, generate_bitstream
from repro.bitstream.memory import ConfigurationMemory
from repro.bitstream.relocate import RelocationError, relocate_bitstream
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan
from repro.runtime.trace import EventKind, RuntimeTrace, TraceEvent


class ReconfigurationError(RuntimeError):
    """Raised on invalid run-time requests (unknown region, no free area...)."""


#: Deprecated alias kept for backwards compatibility; use
#: :class:`ReconfigurationError` instead.
RuntimeError_ = ReconfigurationError


class ReconfigurationManager:
    """Drives mode reconfiguration and bitstream relocation on a floorplan."""

    def __init__(self, floorplan: Floorplan) -> None:
        if not floorplan.is_complete:
            raise ReconfigurationError("the floorplan must place every region")
        self.floorplan = floorplan
        self.device = floorplan.device
        self.partition = floorplan.problem.partition
        self.memory = ConfigurationMemory(self.device.name)
        self.trace = RuntimeTrace()
        self._step = 0
        # where each region's active module currently lives (home or a free area)
        self._current_rect: Dict[str, Rect] = {
            name: placement.rect for name, placement in floorplan.placements.items()
        }
        self._current_module: Dict[str, Optional[str]] = {
            name: None for name in floorplan.placements
        }
        self._bitstream_cache: Dict[tuple, PartialBitstream] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def current_location(self, region: str) -> Rect:
        """Rectangle currently hosting the region's active module."""
        self._check_region(region)
        return self._current_rect[region]

    def active_module(self, region: str) -> Optional[str]:
        """Mode currently loaded for a region (``None`` before the first load)."""
        self._check_region(region)
        return self._current_module[region]

    def available_relocation_targets(self, region: str) -> List[Rect]:
        """Free-compatible areas of the region not currently hosting anyone."""
        self._check_region(region)
        occupied = [
            rect for name, rect in self._current_rect.items() if name != region
        ]
        targets = []
        for area in self.floorplan.free_areas_for(region):
            if not area.satisfied:
                continue
            if area.rect == self._current_rect[region]:
                continue
            if any(area.rect.overlaps(rect) for rect in occupied):
                continue
            targets.append(area.rect)
        return targets

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def reconfigure(self, region: str, mode: str) -> PartialBitstream:
        """Load ``mode`` into the region at its current location."""
        self._check_region(region)
        self._step += 1
        rect = self._current_rect[region]
        bitstream = self._bitstream_for(region, mode, rect)
        previous = self._current_module[region]
        if previous is not None:
            self.memory.unload(self._module_key(region, previous))
        self.memory.load(bitstream)
        self._current_module[region] = mode
        kind = EventKind.CONFIGURE if previous is None else EventKind.RECONFIGURE
        self.trace.record(
            TraceEvent(
                step=self._step,
                kind=kind,
                region=region,
                module=mode,
                frames=bitstream.num_frames,
            )
        )
        return bitstream

    def relocate(self, region: str, target: Rect | None = None) -> PartialBitstream:
        """Move the region's active module into a free-compatible area.

        ``target`` defaults to the first available reserved area.  The home
        placement (or previous area) is unloaded, so its frames become free
        for other uses — exactly the design-reuse scenario of the paper.
        """
        self._check_region(region)
        mode = self._current_module[region]
        if mode is None:
            raise ReconfigurationError(f"region {region!r} has no loaded module to relocate")
        targets = self.available_relocation_targets(region)
        if target is None:
            if not targets:
                self._step += 1
                self.trace.record(
                    TraceEvent(
                        step=self._step,
                        kind=EventKind.REJECT,
                        region=region,
                        module=mode,
                        detail="no free-compatible area available",
                    )
                )
                raise ReconfigurationError(
                    f"no free-compatible area available for region {region!r}"
                )
            target = targets[0]

        self._step += 1
        source_rect = self._current_rect[region]
        source = self._bitstream_for(region, mode, source_rect)
        occupied = [
            rect for name, rect in self._current_rect.items() if name != region
        ]
        try:
            relocated = relocate_bitstream(
                source, target, self.device, self.partition, occupied
            )
        except RelocationError as exc:
            self.trace.record(
                TraceEvent(
                    step=self._step,
                    kind=EventKind.REJECT,
                    region=region,
                    module=mode,
                    detail=str(exc),
                )
            )
            raise ReconfigurationError(str(exc)) from exc

        self.memory.unload(self._module_key(region, mode))
        # relocated bitstream keeps the module identity but a new anchor
        self.memory.load(relocated, allow_overwrite=False)
        self._current_rect[region] = target
        self._bitstream_cache[(region, mode, self._rect_key(target))] = relocated
        self.trace.record(
            TraceEvent(
                step=self._step,
                kind=EventKind.RELOCATE,
                region=region,
                module=mode,
                frames=relocated.num_frames,
                target=str(target),
            )
        )
        return relocated

    def return_home(self, region: str) -> PartialBitstream:
        """Relocate the region's module back to its floorplanned home area."""
        self._check_region(region)
        home = self.floorplan.placements[region].rect
        if self._current_rect[region] == home:
            raise ReconfigurationError(f"region {region!r} is already at its home placement")
        return self.relocate(region, target=home)

    # ------------------------------------------------------------------
    def _bitstream_for(self, region: str, mode: str, rect: Rect) -> PartialBitstream:
        key = (region, mode, self._rect_key(rect))
        if key not in self._bitstream_cache:
            self._bitstream_cache[key] = generate_bitstream(
                self.device, rect, module=self._module_key(region, mode)
            )
        return self._bitstream_cache[key]

    @staticmethod
    def _module_key(region: str, mode: str) -> str:
        return f"{region}:{mode}"

    @staticmethod
    def _rect_key(rect: Rect) -> tuple:
        return (rect.col, rect.row, rect.width, rect.height)

    def _check_region(self, region: str) -> None:
        if region not in self._current_rect:
            raise ReconfigurationError(f"unknown region {region!r}")
