"""Rendering and reporting helpers (the textual Figures and Tables)."""

from repro.analysis.render import render_device, render_floorplan, render_partition
from repro.analysis.report import (
    SERVER_COUNTER_HEADERS,
    SIM_LATENCY_HEADERS,
    SIM_UTILIZATION_HEADERS,
    SWEEP_HEADERS,
    format_table,
    server_counter_rows,
    sim_latency_rows,
    sim_utilization_rows,
    sweep_table_rows,
    table1_rows,
    table2_rows,
)

__all__ = [
    "render_device",
    "render_partition",
    "render_floorplan",
    "format_table",
    "table1_rows",
    "table2_rows",
    "sweep_table_rows",
    "SWEEP_HEADERS",
    "sim_latency_rows",
    "SIM_LATENCY_HEADERS",
    "sim_utilization_rows",
    "SIM_UTILIZATION_HEADERS",
    "server_counter_rows",
    "SERVER_COUNTER_HEADERS",
]
