"""ASCII rendering of devices, partitions and floorplans.

The paper's Figures 1-5 are drawings of tile grids with coloured areas; the
renderers below produce the same information as monospace text so that the
benchmark harness can print the floorplans of Figures 4 and 5 directly to the
terminal (and the tests can assert on their content).

Rendering conventions:

* rows are printed top-to-bottom (row ``height-1`` first), matching the usual
  die-plot orientation;
* each tile shows either the tile-type letter (lower case) for unoccupied
  fabric, ``#`` for forbidden tiles, a region letter (upper case) for tiles of
  a reconfigurable region, or a digit-suffixed letter for free-compatible
  areas; the legend below the grid maps letters back to names.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.device.grid import FPGADevice
from repro.device.partition import ColumnarPartition
from repro.floorplan.placement import Floorplan


def render_device(device: FPGADevice, cell_width: int = 2) -> str:
    """Render the raw tile grid (tile-type initial letters, ``#`` forbidden)."""
    lines: List[str] = []
    for row in range(device.height - 1, -1, -1):
        cells = []
        for col in range(device.width):
            if device.is_forbidden(col, row):
                symbol = "#"
            else:
                symbol = device.tile_type_at(col, row).name[0].lower()
            cells.append(symbol.ljust(cell_width))
        lines.append("".join(cells).rstrip())
    legend = ", ".join(
        f"{t.name[0].lower()}={t.name}" for t in device.tile_type_list
    )
    lines.append(f"legend: {legend}, #=forbidden")
    return "\n".join(lines)


def render_partition(partition: ColumnarPartition, cell_width: int = 3) -> str:
    """Render the columnar partition: portion indices plus forbidden overlay.

    Reproduces the information of Figure 2c/2d: each column is labelled with
    the index of the portion it belongs to, forbidden cells with ``#``.
    """
    lines: List[str] = []
    for row in range(partition.height - 1, -1, -1):
        cells = []
        for col in range(partition.width):
            if partition.is_forbidden_cell(col, row):
                symbol = "#"
            else:
                symbol = str(partition.portion_of_column(col).index)
            cells.append(symbol.ljust(cell_width))
        lines.append("".join(cells).rstrip())
    legend_parts = [
        f"{p.index}:{p.tile_type.name}[{p.col_start}..{p.col_end}]"
        for p in partition.portions
    ]
    lines.append("portions: " + ", ".join(legend_parts))
    if partition.forbidden_areas:
        lines.append(
            "forbidden: "
            + ", ".join(
                f"{a.name}[cols {a.col_start}..{a.col_end}, rows {sorted(a.rows)}]"
                for a in partition.forbidden_areas
            )
        )
    return "\n".join(lines)


def render_floorplan(
    floorplan: Floorplan,
    cell_width: int = 3,
    show_free_areas: bool = True,
) -> str:
    """Render a solved floorplan (the textual analogue of Figures 4 and 5)."""
    device = floorplan.device
    labels: Dict[str, str] = {}
    grid: List[List[Optional[str]]] = [
        [None] * device.height for _ in range(device.width)
    ]

    def assign_label(name: str, is_free: bool, index: int) -> str:
        base = "".join(word[0] for word in name.split() if word[0].isalpha()).upper()
        if not base:
            base = name[:2].upper()
        label = base if not is_free else f"{base.lower()}"
        # disambiguate duplicates with a counter
        candidate = label
        suffix = 1
        while candidate in labels.values():
            suffix += 1
            candidate = f"{label}{suffix}"
        labels[name] = candidate
        return candidate

    for index, (name, placement) in enumerate(sorted(floorplan.placements.items())):
        label = assign_label(name, is_free=False, index=index)
        for col, row in placement.rect.cells():
            grid[col][row] = label
    if show_free_areas:
        for index, (name, placement) in enumerate(sorted(floorplan.free_areas.items())):
            if not placement.satisfied:
                continue
            label = assign_label(name, is_free=True, index=index)
            for col, row in placement.rect.cells():
                grid[col][row] = label

    lines: List[str] = []
    for row in range(device.height - 1, -1, -1):
        cells = []
        for col in range(device.width):
            if grid[col][row] is not None:
                symbol = grid[col][row]
            elif device.is_forbidden(col, row):
                symbol = "#"
            else:
                symbol = device.tile_type_at(col, row).name[0].lower() if cell_width > 1 else "."
            cells.append(str(symbol).ljust(cell_width))
        lines.append("".join(cells).rstrip())

    lines.append("")
    lines.append("regions:")
    for name, placement in sorted(floorplan.placements.items()):
        lines.append(f"  {labels.get(name, '?'):>4}  {name}  at {placement.rect}")
    if show_free_areas and floorplan.free_areas:
        lines.append("free-compatible areas:")
        for name, placement in sorted(floorplan.free_areas.items()):
            status = "" if placement.satisfied else "  [NOT SATISFIED]"
            label = labels.get(name, "-")
            lines.append(
                f"  {label:>4}  {name} (for {placement.compatible_with})  at {placement.rect}{status}"
            )
    return "\n".join(lines)


def render_rect_overlay(
    device: FPGADevice, rects: Dict[str, "object"], cell_width: int = 3
) -> str:
    """Render arbitrary named rectangles over the device (Figure 1 style)."""
    grid: List[List[Optional[str]]] = [
        [None] * device.height for _ in range(device.width)
    ]
    for label, rect in rects.items():
        for col, row in rect.cells():  # type: ignore[attr-defined]
            grid[col][row] = label[:cell_width - 1] or label
    lines: List[str] = []
    for row in range(device.height - 1, -1, -1):
        cells = []
        for col in range(device.width):
            if grid[col][row] is not None:
                symbol = grid[col][row]
            elif device.is_forbidden(col, row):
                symbol = "#"
            else:
                symbol = device.tile_type_at(col, row).name[0].lower()
            cells.append(str(symbol).ljust(cell_width))
        lines.append("".join(cells).rstrip())
    return "\n".join(lines)
