"""Tabular reports (the textual Tables I and II).

These helpers build plain lists of rows so that the benchmark harness can both
print them (``format_table``) and assert on them in tests without parsing
strings.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.floorplan.metrics import evaluate_floorplan
from repro.floorplan.placement import Floorplan
from repro.floorplan.problem import FloorplanProblem


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Format rows as a fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def table1_rows(problem: FloorplanProblem) -> List[List[object]]:
    """Rows of Table I: per-region tile requirements and frame counts."""
    rows: List[List[object]] = []
    totals = {"CLB": 0, "BRAM": 0, "DSP": 0, "frames": 0}
    for region in problem.regions:
        req = region.requirements.as_dict()
        frames = problem.required_frames(region)
        rows.append(
            [
                region.name,
                req.get("CLB", 0),
                req.get("BRAM", 0),
                req.get("DSP", 0),
                frames,
            ]
        )
        totals["CLB"] += req.get("CLB", 0)
        totals["BRAM"] += req.get("BRAM", 0)
        totals["DSP"] += req.get("DSP", 0)
        totals["frames"] += frames
    rows.append(["Total", totals["CLB"], totals["BRAM"], totals["DSP"], totals["frames"]])
    return rows


TABLE1_HEADERS = ["Region", "CLB tiles", "BRAM tiles", "DSP tiles", "# Frames"]


def table2_rows(
    entries: Mapping[str, tuple],
) -> List[List[object]]:
    """Rows of Table II from ``{label: (design, floorplan or None)}``.

    Each value is a pair ``(design_name, floorplan)``; a missing floorplan
    produces a row with dashes, so partial benchmark runs still render.
    """
    rows: List[List[object]] = []
    for label, (design, floorplan) in entries.items():
        if floorplan is None:
            rows.append([label, design, "-", "-"])
            continue
        metrics = evaluate_floorplan(floorplan)
        rows.append(
            [
                label,
                design,
                floorplan.num_free_compatible_areas,
                metrics.wasted_frames,
            ]
        )
    return rows


TABLE2_HEADERS = ["Algorithm", "Design", "Free-compatible areas", "Wasted frames"]


SWEEP_HEADERS = [
    "Job",
    "Mode",
    "Status",
    "Feasible",
    "Wasted frames",
    "Wirelength",
    "Solve time (s)",
    "Cached",
]


def sweep_table_rows(results: Sequence[object]) -> List[List[object]]:
    """Per-job rows for a batch/sweep run.

    ``results`` are :class:`repro.service.results.JobResult`-shaped objects
    (duck-typed so this module stays independent of the service layer).
    Missing metrics render as dashes, mirroring :func:`table2_rows`.
    """
    rows: List[List[object]] = []
    for result in results:
        wasted = result.wasted_frames
        wires = result.wirelength
        rows.append(
            [
                result.job_name,
                result.mode,
                result.status,
                "yes" if result.feasible else "no",
                wasted if wasted is not None else "-",
                f"{wires:.1f}" if wires is not None else "-",
                f"{result.solve_time:.2f}",
                "hit" if result.cached else "miss",
            ]
        )
    return rows


SIM_LATENCY_HEADERS = ["Metric", "Count", "Mean", "P50", "P90", "P99", "Max"]


def sim_latency_rows(
    summaries: Mapping[str, Mapping[str, float]],
) -> List[List[object]]:
    """Percentile rows for the online simulator's latency table.

    ``summaries`` maps a metric name (latency/wait/service) to the summary
    dict produced by :meth:`repro.sim.stats.SimStats.latency_summary`;
    metrics with no samples render as dashes, mirroring :func:`table2_rows`.
    """
    rows: List[List[object]] = []
    for metric, summary in summaries.items():
        count = int(summary.get("count", 0))
        if count == 0:
            rows.append([metric, 0, "-", "-", "-", "-", "-"])
            continue
        rows.append(
            [
                metric,
                count,
                f"{summary['mean']:.6f}",
                f"{summary['p50']:.6f}",
                f"{summary['p90']:.6f}",
                f"{summary['p99']:.6f}",
                f"{summary['max']:.6f}",
            ]
        )
    return rows


SIM_UTILIZATION_HEADERS = ["Resource", "Busy (s)", "Utilization", "Served", "Blocked"]


def sim_utilization_rows(
    entries: Mapping[str, Mapping[str, object]],
) -> List[List[object]]:
    """Utilization rows (ports and regions) for the online simulator.

    ``entries`` maps a resource label to ``{busy, utilization, served,
    blocked}`` as produced by :meth:`repro.sim.stats.SimStats.utilization_rows`.
    """
    rows: List[List[object]] = []
    for resource, entry in entries.items():
        rows.append(
            [
                resource,
                f"{float(entry['busy']):.6f}",
                f"{float(entry['utilization']):.4f}",
                int(entry["served"]),
                int(entry["blocked"]),
            ]
        )
    return rows


SERVER_COUNTER_HEADERS = ["Counter", "Value"]


def server_counter_rows(counters: Mapping[str, object]) -> List[List[object]]:
    """Two-column rows for the gateway's ``/metrics`` counter block.

    ``counters`` is the flat dict produced by
    :meth:`repro.server.metrics.GatewayMetrics.counters` — insertion order is
    preserved so the table reads in lifecycle order (received -> shed ->
    cache -> batches).  Rates render with fixed precision, counts as-is.
    """
    rows: List[List[object]] = []
    for name, value in counters.items():
        if isinstance(value, float):
            rows.append([name, f"{value:.4f}"])
        else:
            rows.append([name, value])
    return rows


def floorplan_report(floorplan: Floorplan) -> Dict[str, object]:
    """A flat dictionary describing a solved floorplan (for EXPERIMENTS.md)."""
    metrics = evaluate_floorplan(floorplan)
    return {
        "problem": floorplan.problem.name,
        "device": floorplan.device.name,
        "solver_status": floorplan.solver_status,
        "solve_time_s": round(floorplan.solve_time, 3),
        "wasted_frames": metrics.wasted_frames,
        "wirelength": round(metrics.wirelength, 1),
        "free_compatible_areas": metrics.free_compatible_areas,
        "unsatisfied_free_areas": metrics.unsatisfied_free_areas,
    }
