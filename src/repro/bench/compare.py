"""Diff two benchmark reports and gate on regressions.

``repro.bench compare old.json new.json --threshold 0.25`` compares the
median wall time of every benchmark present in both files.  A benchmark
regresses when its median grew by more than the threshold fraction
(0.25 = 25% slower); the CLI exits non-zero when any benchmark regresses,
which is what the CI gate keys on (optionally ``--warn-only`` while a fresh
baseline stabilizes).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.bench.report import BenchReport

__all__ = ["Delta", "CompareResult", "compare_reports", "format_comparison"]

#: Medians this fast are dominated by timer noise; never flag them.
MIN_GATED_SECONDS = 1e-4


@dataclasses.dataclass(frozen=True)
class Delta:
    """Median wall-time change of one benchmark between two reports."""

    name: str
    old_median_s: float
    new_median_s: float

    @property
    def ratio(self) -> float:
        """``new / old`` median time (>1 means slower)."""
        if self.old_median_s <= 0:
            return float("inf") if self.new_median_s > 0 else 1.0
        return self.new_median_s / self.old_median_s

    @property
    def speedup(self) -> float:
        """``old / new`` median time (>1 means faster)."""
        if self.new_median_s <= 0:
            return float("inf") if self.old_median_s > 0 else 1.0
        return self.old_median_s / self.new_median_s

    @property
    def is_noise(self) -> bool:
        """Both medians below the gating floor — timer noise, never flagged."""
        return max(self.old_median_s, self.new_median_s) < MIN_GATED_SECONDS

    def is_regression(self, threshold: float) -> bool:
        """Slower by more than ``threshold`` (fractional) and above noise."""
        return not self.is_noise and self.ratio > 1.0 + threshold

    def is_improvement(self, threshold: float) -> bool:
        """Faster by more than ``threshold`` (fractional) and above noise."""
        return not self.is_noise and self.speedup > 1.0 + threshold


@dataclasses.dataclass
class CompareResult:
    """Outcome of comparing two reports."""

    deltas: List[Delta]
    only_old: List[str]
    only_new: List[str]
    threshold: float

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.is_regression(self.threshold)]

    @property
    def improvements(self) -> List[Delta]:
        return [d for d in self.deltas if d.is_improvement(self.threshold)]

    @property
    def ok(self) -> bool:
        """True when no benchmark regressed past the threshold."""
        return not self.regressions


def compare_reports(
    old: BenchReport, new: BenchReport, threshold: float = 0.25
) -> CompareResult:
    """Compare benchmarks present in both reports; track one-sided names."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    old_names = set(old.names())
    new_names = set(new.names())
    deltas = [
        Delta(
            name=name,
            old_median_s=old.result(name).median_s,
            new_median_s=new.result(name).median_s,
        )
        for name in sorted(old_names & new_names)
    ]
    return CompareResult(
        deltas=deltas,
        only_old=sorted(old_names - new_names),
        only_new=sorted(new_names - old_names),
        threshold=threshold,
    )


def format_comparison(result: CompareResult) -> str:
    """Human-readable comparison table, worst regression first."""
    lines = []
    header = f"{'benchmark':<40} {'old (ms)':>10} {'new (ms)':>10} {'ratio':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for delta in sorted(result.deltas, key=lambda d: -d.ratio):
        flag = ""
        if delta.is_regression(result.threshold):
            flag = "  << REGRESSION"
        elif delta.is_improvement(result.threshold):
            flag = f"  ({delta.speedup:.2f}x faster)"
        lines.append(
            f"{delta.name:<40} {delta.old_median_s * 1e3:>10.3f} "
            f"{delta.new_median_s * 1e3:>10.3f} {delta.ratio:>8.3f}{flag}"
        )
    for name in result.only_old:
        lines.append(f"{name:<40} (removed)")
    for name in result.only_new:
        lines.append(f"{name:<40} (new)")
    lines.append(
        f"{len(result.regressions)} regression(s) past {result.threshold:.0%} "
        f"over {len(result.deltas)} shared benchmark(s)"
    )
    return "\n".join(lines)
