"""Warmup/repeat/timer protocol for registered benchmarks.

Every benchmark is measured the same way:

1. the factory builds the workload (setup, excluded from timing);
2. ``warmup`` untimed calls populate caches/JITs/allocator pools;
3. ``repeats`` timed calls with :func:`time.perf_counter`;
4. the per-call samples are summarized into median/p10/p90 downstream.

Peak RSS is sampled through :func:`resource.getrusage` after the timed calls.
``ru_maxrss`` is a process-lifetime high-water mark, so the value attributed
to one benchmark is "peak RSS observed by the end of this benchmark" — still
useful for spotting which workload blew the memory budget first.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench.registry import REGISTRY, Benchmark, BenchmarkRegistry

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["BenchProfile", "Workload", "Measurement", "run_benchmark", "run_suite"]


@dataclasses.dataclass(frozen=True)
class BenchProfile:
    """How thoroughly to measure: the ``--quick`` / ``--full`` presets."""

    name: str
    warmup: int
    repeats: int

    def scaled(self, quick_value: int, full_value: int) -> int:
        """Pick a problem size for this profile (factories call this)."""
        return full_value if self.name == "full" else quick_value

    @staticmethod
    def quick() -> "BenchProfile":
        """Small inputs, few repeats: CI smoke profile."""
        return BenchProfile(name="quick", warmup=1, repeats=5)

    @staticmethod
    def full() -> "BenchProfile":
        """Larger inputs, more repeats: local performance work."""
        return BenchProfile(name="full", warmup=3, repeats=15)

    @staticmethod
    def by_name(name: str) -> "BenchProfile":
        """Resolve ``"quick"`` / ``"full"`` to a profile."""
        if name == "quick":
            return BenchProfile.quick()
        if name == "full":
            return BenchProfile.full()
        raise ValueError(f"unknown profile {name!r} (expected 'quick' or 'full')")


@dataclasses.dataclass
class Workload:
    """What a benchmark factory returns: the callable plus its unit count.

    ``units`` is how many abstract work units one call performs (events
    simulated, constraints built, iterations annealed, ...); throughput is
    reported as ``units / median_seconds``.
    """

    run: Callable[[], object]
    units: float = 1.0
    unit_name: str = "ops"
    #: Optional per-round teardown (e.g. clearing a cache so rounds are i.i.d.)
    reset: Optional[Callable[[], None]] = None
    #: Auxiliary metrics the workload fills in while running (latency
    #: percentiles, shed rates, ...); snapshotted into the report alongside
    #: the wall-time summary.  Values must be JSON-serializable numbers.
    extras: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Optional once-after-the-last-round teardown (e.g. draining a server
    #: the factory started); always called, even when a round raises.
    teardown: Optional[Callable[[], None]] = None


@dataclasses.dataclass
class Measurement:
    """Raw samples of one benchmark run."""

    benchmark: Benchmark
    profile: BenchProfile
    times: List[float]
    units: float
    unit_name: str
    peak_rss_kb: Optional[int]
    extras: Dict[str, float] = dataclasses.field(default_factory=dict)


def _peak_rss_kb() -> Optional[int]:
    if resource is None:
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # Linux reports kilobytes, macOS bytes; normalize to kb.
    maxrss = int(usage.ru_maxrss)
    if sys.platform == "darwin":
        maxrss //= 1024
    return maxrss


def run_benchmark(bench: Benchmark, profile: BenchProfile) -> Measurement:
    """Apply the warmup/repeat protocol to one registered benchmark."""
    workload = bench.build(profile)
    if not isinstance(workload, Workload):
        raise TypeError(
            f"benchmark {bench.name!r} factory must return a Workload, "
            f"got {type(workload).__name__}"
        )
    times: List[float] = []
    try:
        for _ in range(profile.warmup):
            workload.run()
            if workload.reset is not None:
                workload.reset()
        for _ in range(profile.repeats):
            start = time.perf_counter()
            workload.run()
            times.append(time.perf_counter() - start)
            if workload.reset is not None:
                workload.reset()
    finally:
        if workload.teardown is not None:
            workload.teardown()
    return Measurement(
        benchmark=bench,
        profile=profile,
        times=times,
        units=workload.units,
        unit_name=workload.unit_name,
        peak_rss_kb=_peak_rss_kb(),
        extras=dict(workload.extras),
    )


def run_suite(
    profile: BenchProfile,
    patterns: Optional[Iterable[str]] = None,
    registry: BenchmarkRegistry | None = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Measurement]:
    """Run every selected benchmark of the registry under one profile."""
    registry = registry if registry is not None else REGISTRY
    measurements = []
    for bench in registry.select(patterns):
        if progress is not None:
            progress(bench.name)
        measurements.append(run_benchmark(bench, profile))
    return measurements
