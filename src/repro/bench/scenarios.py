"""Shared benchmark scenarios: devices, problems and floorplans.

These builders used to be duplicated across the ``benchmarks/bench_*.py``
scripts (each re-declared its own synthetic device + region mix).  They are
hoisted here so the pytest-benchmark scripts and the registered
:mod:`repro.bench.suite` micro-benchmarks measure exactly the same inputs.

Everything here is deterministic: fixed device shapes, fixed requirements,
explicit seeds.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.device.catalog import simple_two_type_device, synthetic_device
from repro.device.resources import ResourceVector
from repro.floorplan.geometry import Rect
from repro.floorplan.placement import Floorplan
from repro.floorplan.problem import Connection, FloorplanProblem, Region

__all__ = [
    "bench_time_limit",
    "milp_legacy_mode",
    "small_problem",
    "scaling_problem",
    "pruning_problem",
    "relocation_problem",
    "sim_floorplan",
    "throughput_sweep_jobs",
    "server_payloads",
    "random_rect_state",
    "random_placement",
]


def bench_time_limit(default: float = 60.0) -> float:
    """Per-solve MILP time limit honoured by every benchmark scenario."""
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", default))


def milp_legacy_mode() -> bool:
    """Whether the ``milp.*`` benchmarks should run the pre-optimization path.

    Setting ``REPRO_MILP_LEGACY=1`` makes each factory disable exactly the
    optimization it measures: ``milp.bb_warmstart`` drops presolve and the
    warm-start machinery (textbook branch and bound, same pruned model), and
    ``floorplan.milp_build_pruned`` builds the unpruned model.  The resulting
    snapshot is the "pre" half of the committed
    ``benchmarks/baselines/BENCH_milp_pipeline_{pre,post}.json`` pair.
    """
    return os.environ.get("REPRO_MILP_LEGACY", "") not in ("", "0")


def small_problem(name: str = "ablation") -> FloorplanProblem:
    """Three regions with a BRAM/DSP mix on a 12x5 synthetic device.

    The ablation workhorse: small enough for bounded MILP solves, rich enough
    to exercise every resource type and the wirelength objective.
    """
    device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name=f"{name}-dev")
    regions = [
        Region("A", ResourceVector(CLB=6)),
        Region("B", ResourceVector(CLB=3, BRAM=1)),
        Region("C", ResourceVector(CLB=2, DSP=1)),
    ]
    connections = [Connection("A", "B", weight=16), Connection("B", "C", weight=16)]
    return FloorplanProblem(device, regions, connections, name=name)


def scaling_problem(width: int, name: str | None = None) -> FloorplanProblem:
    """Three fixed regions on a device of configurable width (model scaling)."""
    name = name or f"scale-{width}"
    device = synthetic_device(width, 6, bram_every=5, dsp_every=9, name=f"{name}-dev")
    regions = [
        Region("A", ResourceVector(CLB=5)),
        Region("B", ResourceVector(CLB=3, BRAM=1)),
        Region("C", ResourceVector(CLB=2)),
    ]
    return FloorplanProblem(device, regions, name=name)


def pruning_problem(width: int = 64, name: str | None = None) -> FloorplanProblem:
    """Resource-pinned regions with tight extent caps on a wide device.

    Every region is tied to a scarce column type (DSP every 11 columns, BRAM
    every 7) with ``max_width`` caps of one or two columns, so most
    region x placement candidates are geometrically infeasible — the workload
    where the feasible-placement pruning of
    :func:`repro.floorplan.milp_builder.build_floorplan_milp` shrinks the
    model the most (mirroring the scarce-DSP structure of the SDR study).
    """
    name = name or f"prune-{width}"
    device = synthetic_device(width, 10, bram_every=7, dsp_every=11, name=f"{name}-dev")
    regions = [
        Region("dsp_a", ResourceVector(DSP=4), max_width=1),
        Region("dsp_b", ResourceVector(DSP=6), max_width=1),
        Region("bram_a", ResourceVector(BRAM=4), max_width=1),
        Region("bram_b", ResourceVector(BRAM=6), max_width=1),
        Region("dsp_c", ResourceVector(DSP=2), max_width=1),
    ]
    connections = [
        Connection("dsp_a", "bram_a", weight=8),
        Connection("dsp_b", "dsp_c", weight=8),
    ]
    return FloorplanProblem(device, regions, connections, name=name)


def relocation_problem(name: str = "rt") -> FloorplanProblem:
    """Two-region problem used by the bitstream-relocation flow benchmarks."""
    device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name=f"{name}-dev")
    return FloorplanProblem(
        device,
        [
            Region("filter", ResourceVector(CLB=4)),
            Region("decoder", ResourceVector(CLB=2, BRAM=1)),
        ],
        name=name,
    )


def sim_floorplan(name: str = "sim-bench") -> Floorplan:
    """Two regions with one reserved free area each, built without a solver.

    The discrete-event simulator benchmarks run on this fixed layout so the
    events/sec figure measures the event queue, policy dispatch and the
    bitstream-cache path — not MILP solve time.
    """
    device = simple_two_type_device()
    regions = [
        Region("A", ResourceVector(CLB=4)),
        Region("B", ResourceVector(CLB=4)),
    ]
    problem = FloorplanProblem(device, regions, name=name)
    return Floorplan.from_rects(
        problem,
        {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 2, 2)},
        free_rects={"A 1": (Rect(2, 0, 2, 2), "A"), "B 1": (Rect(8, 0, 2, 2), "B")},
    )


def throughput_sweep_jobs(
    time_limit: float | None = None,
    relocation_copies: int = 1,
) -> list:
    """The 8-job device x workload x relocation grid of the service benchmarks."""
    from repro.milp import SolverOptions
    from repro.service import sweep_jobs
    from repro.service.sweep import constraint_for
    from repro.workloads.synthetic import config_grid

    device = synthetic_device(12, 5, bram_every=4, dsp_every=9, name="throughput-dev")
    configs = config_grid(num_regions=(3, 4), utilizations=(0.45,), seeds=(0, 1))
    options = SolverOptions(
        time_limit=time_limit if time_limit is not None else bench_time_limit(30.0),
        mip_gap=0.05,
    )
    return sweep_jobs(
        [device],
        configs,
        relocations=(None, constraint_for(regions=1, copies=relocation_copies)),
        modes=("HO",),
        options=options,
    )


def server_payloads(unique: int = 4, heavy: bool = False) -> list:
    """Request bodies for the ``server.*`` and ``fleet.*`` benchmarks.

    Small two-region instances with distinct fingerprints (the connection
    weight varies), each solving in a few hundred milliseconds — so the
    cache-miss benchmarks measure batching and dispatch, not MILP asymptotics.
    ``heavy=True`` switches to ~1-2 s three-region instances for the fleet
    benchmarks, where the solve must dominate multi-process coordination
    overhead for work-collapse margins to be attributable.
    """
    from repro.server.loadgen import demo_payloads

    return demo_payloads(unique=unique, time_limit=bench_time_limit(20.0), heavy=heavy)


def random_rect_state(
    problem: FloorplanProblem, seed: int = 0
) -> Dict[str, Rect]:
    """A random (likely infeasible) rectangle per region — annealing input."""
    import numpy as np

    rng = np.random.default_rng(seed)
    device = problem.device
    state: Dict[str, Rect] = {}
    for region in problem.regions:
        width = int(rng.integers(1, max(2, device.width // 2)))
        height = int(rng.integers(1, max(2, device.height // 2)))
        col = int(rng.integers(0, device.width - width + 1))
        row = int(rng.integers(0, device.height - height + 1))
        state[region.name] = Rect(col, row, width, height)
    return state


def random_placement(
    num_rects: int, seed: int = 0, grid: int = 1000
) -> Dict[str, Rect]:
    """A dense non-overlapping placement of ``num_rects`` rectangles.

    Rectangles are laid out in randomly-sized rows of randomly-sized cells
    with random gaps, producing a mix of forced (overlapping-span) and
    "diagonal" pairs — the stress input for sequence-pair extraction.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    rects: Dict[str, Rect] = {}
    row_base = 0
    index = 0
    while index < num_rects:
        row_height = int(rng.integers(2, 6))
        col = int(rng.integers(0, 3))
        while index < num_rects and col < grid:
            width = int(rng.integers(1, 6))
            height = int(rng.integers(1, row_height + 1))
            if col + width > grid:
                break
            rects[f"r{index:04d}"] = Rect(col, row_base, width, height)
            col += width + int(rng.integers(0, 4))
            index += 1
        row_base += row_height + int(rng.integers(0, 3))
    return rects
