"""Unified benchmark harness with machine-readable performance baselines.

The package turns the repository's ad-hoc benchmark scripts into a single
registry-driven harness:

* :func:`~repro.bench.registry.benchmark` registers a benchmark factory under
  a dotted name (``"floorplan.sp_relations"``);
* :mod:`repro.bench.runner` runs registered benchmarks with a
  warmup/repeat/timer protocol under a ``--quick`` or ``--full`` profile;
* :mod:`repro.bench.report` serializes results into a schema-versioned
  ``BENCH_<rev>.json`` (median/p10/p90 wall time, throughput, peak RSS,
  git revision, python version);
* :mod:`repro.bench.compare` diffs two report files and gates on a
  configurable regression threshold;
* :mod:`repro.bench.scenarios` holds the shared device/workload scenario
  builders that the ``benchmarks/`` scripts and the registered suite share.

Run it with ``python -m repro.bench --quick`` and compare two snapshots with
``python -m repro.bench compare old.json new.json``.
"""

from repro.bench.registry import Benchmark, BenchmarkRegistry, REGISTRY, benchmark
from repro.bench.runner import BenchProfile, Measurement, Workload, run_benchmark, run_suite
from repro.bench.report import (
    SCHEMA_VERSION,
    BenchReport,
    BenchResult,
    default_report_name,
    load_report,
    save_report,
)
from repro.bench.compare import CompareResult, Delta, compare_reports

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "REGISTRY",
    "benchmark",
    "BenchProfile",
    "Measurement",
    "Workload",
    "run_benchmark",
    "run_suite",
    "SCHEMA_VERSION",
    "BenchReport",
    "BenchResult",
    "default_report_name",
    "load_report",
    "save_report",
    "CompareResult",
    "Delta",
    "compare_reports",
]
