"""Command-line interface of the benchmark harness.

Run the suite and write a snapshot::

    python -m repro.bench --quick                 # BENCH_<rev>.json
    python -m repro.bench --full --filter floorplan -o BENCH_full.json

Compare two snapshots (exit 1 on regression past the threshold)::

    python -m repro.bench compare old.json new.json --threshold 0.25
    python -m repro.bench compare old.json new.json --warn-only

Exit codes: 0 success / no regression, 1 regression past threshold,
2 usage or input-file errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import suite  # noqa: F401  (importing registers the suite)
from repro.bench.compare import compare_reports, format_comparison
from repro.bench.registry import REGISTRY
from repro.bench.report import default_report_name, load_report, save_report, summarize
from repro.bench.runner import BenchProfile, run_suite

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the benchmark suite or compare two BENCH_*.json files.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run the benchmark suite (the default)")
    for target in (parser, run):
        target.add_argument(
            "--quick", action="store_true", help="small inputs, few repeats (default)"
        )
        target.add_argument(
            "--full", action="store_true", help="larger inputs, more repeats"
        )
        target.add_argument(
            "--filter",
            action="append",
            default=None,
            metavar="SUBSTRING",
            help="only run benchmarks whose name contains SUBSTRING (repeatable)",
        )
        target.add_argument(
            "-o", "--output", default=None, help="output path (default BENCH_<rev>.json)"
        )
        target.add_argument(
            "--list", action="store_true", help="list registered benchmarks and exit"
        )

    cmp_parser = sub.add_parser("compare", help="diff two BENCH_*.json files")
    cmp_parser.add_argument("old", help="baseline report")
    cmp_parser.add_argument("new", help="candidate report")
    cmp_parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional median slowdown that counts as a regression (default 0.25)",
    )
    cmp_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions but always exit 0 (CI warm-up mode)",
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    if args.list:
        for name in REGISTRY.names():
            print(name)
        return EXIT_OK
    if args.quick and args.full:
        print("error: --quick and --full are mutually exclusive", file=sys.stderr)
        return EXIT_USAGE
    profile = BenchProfile.full() if args.full else BenchProfile.quick()
    selected = REGISTRY.select(args.filter)
    if not selected:
        print("error: no benchmarks match the filter", file=sys.stderr)
        return EXIT_USAGE
    print(f"running {len(selected)} benchmark(s) under the {profile.name!r} profile")
    measurements = run_suite(
        profile,
        patterns=args.filter,
        progress=lambda name: print(f"  {name} ...", flush=True),
    )
    report = summarize(measurements, profile.name)
    path = save_report(report, args.output or default_report_name(report.git_rev))
    width = max(len(r.name) for r in report.results)
    for result in report.results:
        print(
            f"{result.name:<{width}}  median {result.median_s * 1e3:9.3f} ms  "
            f"p90 {result.p90_s * 1e3:9.3f} ms  "
            f"{result.throughput:12,.1f} {result.unit_name}/s"
        )
    print(f"wrote {path} (rev {report.git_rev}, python {report.python_version})")
    return EXIT_OK


def _compare(args: argparse.Namespace) -> int:
    try:
        old = load_report(args.old)
        new = load_report(args.new)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.threshold < 0:
        print("error: --threshold must be non-negative", file=sys.stderr)
        return EXIT_USAGE
    result = compare_reports(old, new, threshold=args.threshold)
    print(format_comparison(result))
    if result.ok or args.warn_only:
        if not result.ok:
            print("(warn-only: regressions reported but not gated)")
        return EXIT_OK
    return EXIT_REGRESSION


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (importable for tests; returns the exit code)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "compare":
        return _compare(args)
    return _run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
