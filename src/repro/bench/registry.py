"""Benchmark registry: named factories discovered and run by the harness.

A benchmark is registered by decorating a *factory* with
:func:`benchmark`.  The factory receives the active
:class:`~repro.bench.runner.BenchProfile` and returns a
:class:`~repro.bench.runner.Workload` — a zero-argument callable plus the
number of abstract work units one call performs (used to report throughput).
All expensive setup belongs in the factory so the timed section measures only
the operation under study::

    @benchmark("floorplan.sp_relations", group="floorplan")
    def sp_relations(profile):
        pair = _make_pair(n=profile.scaled(30, 120))
        return Workload(lambda: pair.relations(), units=1, unit_name="calls")
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

__all__ = ["Benchmark", "BenchmarkRegistry", "REGISTRY", "benchmark"]


@dataclasses.dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: a dotted name, a group and a workload factory."""

    name: str
    group: str
    factory: Callable
    description: str = ""

    def build(self, profile):
        """Instantiate the workload for a profile (setup happens here)."""
        return self.factory(profile)


class BenchmarkRegistry:
    """Keyed collection of benchmarks; duplicate names are an error."""

    def __init__(self) -> None:
        self._benchmarks: Dict[str, Benchmark] = {}

    def register(self, bench: Benchmark) -> Benchmark:
        """Add a benchmark; raises ``ValueError`` on a name collision."""
        if bench.name in self._benchmarks:
            raise ValueError(
                f"benchmark name {bench.name!r} already registered "
                f"(group {self._benchmarks[bench.name].group!r})"
            )
        self._benchmarks[bench.name] = bench
        return bench

    def get(self, name: str) -> Benchmark:
        """Look a benchmark up by exact name."""
        try:
            return self._benchmarks[name]
        except KeyError:
            raise KeyError(f"unknown benchmark {name!r}") from None

    def names(self) -> List[str]:
        """Registered names in sorted order."""
        return sorted(self._benchmarks)

    def select(self, patterns: Optional[Iterable[str]] = None) -> List[Benchmark]:
        """Benchmarks whose name contains any of ``patterns`` (all when empty).

        Patterns are plain substrings, so ``--filter floorplan`` selects every
        benchmark of the floorplan group without regex footguns.
        """
        chosen = []
        pattern_list = [p for p in (patterns or []) if p]
        for name in self.names():
            bench = self._benchmarks[name]
            if not pattern_list or any(p in name for p in pattern_list):
                chosen.append(bench)
        return chosen

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks


#: The process-wide registry the harness and the CLI run from.
REGISTRY = BenchmarkRegistry()


def benchmark(
    name: str,
    group: str | None = None,
    description: str = "",
    registry: BenchmarkRegistry | None = None,
) -> Callable:
    """Decorator registering a workload factory under ``name``.

    ``group`` defaults to the first dotted component of the name
    (``"floorplan.sp_relations"`` -> ``"floorplan"``).
    """

    def decorate(factory: Callable) -> Callable:
        target = registry if registry is not None else REGISTRY
        target.register(
            Benchmark(
                name=name,
                group=group or name.split(".", 1)[0],
                factory=factory,
                description=description or (factory.__doc__ or "").strip().split("\n")[0],
            )
        )
        return factory

    return decorate
