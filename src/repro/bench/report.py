"""Schema-versioned JSON snapshots of a benchmark run (``BENCH_<rev>.json``).

The file layout (schema version 1)::

    {
      "schema_version": 1,
      "git_rev": "abc1234",
      "python_version": "3.11.7",
      "platform": "linux",
      "profile": "quick",
      "created_unix": 1753833600,
      "results": [
        {
          "name": "floorplan.sp_relations",
          "group": "floorplan",
          "repeats": 5,
          "warmup": 1,
          "median_s": 0.0123,
          "p10_s": 0.0119,
          "p90_s": 0.0131,
          "mean_s": 0.0124,
          "min_s": 0.0118,
          "units": 1.0,
          "unit_name": "calls",
          "throughput": 81.3,
          "peak_rss_kb": 184320,
          "extras": {"p99_ms": 4.2}
        }, ...
      ]
    }

``extras`` carries workload-reported auxiliary metrics (the ``server.*``
benchmarks record latency percentiles, hit rate and shed rate there); it is
optional on read and omitted on write when empty, so snapshots from before
the field existed still load.

Percentiles are linearly interpolated over the sorted samples (the
``fraction * (n - 1)`` position convention); with a single sample every
quantile field equals that sample.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.runner import Measurement

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "BenchReport",
    "git_revision",
    "default_report_name",
    "summarize",
    "load_report",
    "save_report",
]

SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BenchResult:
    """Summary statistics of one benchmark."""

    name: str
    group: str
    repeats: int
    warmup: int
    median_s: float
    p10_s: float
    p90_s: float
    mean_s: float
    min_s: float
    units: float
    unit_name: str
    throughput: float
    peak_rss_kb: Optional[int]
    #: Workload-reported auxiliary metrics (latency percentiles, shed/hit
    #: rates, ...).  Optional in the file format so pre-extras snapshots
    #: still load; empty dicts are omitted on write.
    extras: Dict[str, float] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict:
        data = dataclasses.asdict(self)
        if not data["extras"]:
            del data["extras"]
        return data

    @staticmethod
    def from_dict(data: Dict) -> "BenchResult":
        fields = {f.name for f in dataclasses.fields(BenchResult)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown benchmark result fields: {sorted(unknown)}")
        missing = fields - set(data) - {"extras"}
        if missing:
            raise ValueError(f"missing benchmark result fields: {sorted(missing)}")
        return BenchResult(**data)


@dataclasses.dataclass
class BenchReport:
    """One harness run: environment metadata plus per-benchmark summaries."""

    results: List[BenchResult]
    git_rev: str
    python_version: str
    platform: str
    profile: str
    created_unix: int
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def result(self, name: str) -> BenchResult:
        """Look a result up by benchmark name."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no result named {name!r} in report")

    def names(self) -> List[str]:
        return [result.name for result in self.results]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "git_rev": self.git_rev,
            "python_version": self.python_version,
            "platform": self.platform,
            "profile": self.profile,
            "created_unix": self.created_unix,
            "results": [result.to_dict() for result in self.results],
        }

    @staticmethod
    def from_dict(data: Dict) -> "BenchReport":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported benchmark report schema {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        for key in ("git_rev", "python_version", "platform", "profile", "created_unix", "results"):
            if key not in data:
                raise ValueError(f"benchmark report missing field {key!r}")
        return BenchReport(
            results=[BenchResult.from_dict(entry) for entry in data["results"]],
            git_rev=data["git_rev"],
            python_version=data["python_version"],
            platform=data["platform"],
            profile=data["profile"],
            created_unix=int(data["created_unix"]),
            schema_version=int(version),
        )


# ----------------------------------------------------------------------
def git_revision(cwd: str | Path | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=str(cwd) if cwd else None,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def default_report_name(rev: str | None = None) -> str:
    """The conventional output filename, ``BENCH_<rev>.json``."""
    return f"BENCH_{rev or git_revision()}.json"


def _quantile(sorted_times: Sequence[float], fraction: float) -> float:
    if len(sorted_times) == 1:
        return sorted_times[0]
    position = fraction * (len(sorted_times) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_times) - 1)
    weight = position - low
    return sorted_times[low] * (1.0 - weight) + sorted_times[high] * weight


def summarize(measurements: Sequence[Measurement], profile_name: str) -> BenchReport:
    """Reduce raw measurements into a serializable report."""
    results = []
    for measurement in measurements:
        ordered = sorted(measurement.times)
        median = statistics.median(ordered)
        results.append(
            BenchResult(
                name=measurement.benchmark.name,
                group=measurement.benchmark.group,
                repeats=len(ordered),
                warmup=measurement.profile.warmup,
                median_s=median,
                p10_s=_quantile(ordered, 0.10),
                p90_s=_quantile(ordered, 0.90),
                mean_s=statistics.fmean(ordered),
                min_s=ordered[0],
                units=measurement.units,
                unit_name=measurement.unit_name,
                throughput=measurement.units / median if median > 0 else float("inf"),
                peak_rss_kb=measurement.peak_rss_kb,
                extras=dict(measurement.extras),
            )
        )
    return BenchReport(
        results=results,
        git_rev=git_revision(),
        python_version=platform.python_version(),
        platform=sys.platform,
        profile=profile_name,
        created_unix=int(time.time()),
    )


def save_report(report: BenchReport, path: str | Path) -> Path:
    """Write a report as pretty-printed JSON (atomic rename)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=False) + "\n")
    tmp.replace(path)
    return path


def load_report(path: str | Path) -> BenchReport:
    """Read and validate a report file."""
    with open(path) as handle:
        return BenchReport.from_dict(json.load(handle))
