"""The registered benchmark suite.

Importing this module populates :data:`repro.bench.registry.REGISTRY` with
micro-benchmarks for the floorplanning hot paths plus scenario benchmarks
covering the same ground as the ``benchmarks/bench_*.py`` scripts (sequence
pairs, MILP build/lowering/solve, heuristic baselines, the discrete-event
simulator, the bitstream path and the batch-service sweep machinery).

Sizes are profile-dependent: ``--quick`` stays small enough for a CI smoke
job, ``--full`` uses inputs large enough to expose asymptotic differences.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.bench import scenarios
from repro.bench.registry import benchmark
from repro.bench.runner import BenchProfile, Workload

__all__ = ["load"]


def load() -> None:
    """No-op entry point; importing the module registers everything."""


# ----------------------------------------------------------------------
# floorplan: sequence-pair machinery
# ----------------------------------------------------------------------
@benchmark("floorplan.sp_from_rects")
def sp_from_rects(profile: BenchProfile) -> Workload:
    """Extract a sequence pair from a dense non-overlapping placement."""
    from repro.floorplan.sequence_pair import SequencePair

    rects = scenarios.random_placement(profile.scaled(40, 120), seed=7)
    return Workload(lambda: SequencePair.from_rects(rects), units=len(rects), unit_name="rects")


@benchmark("floorplan.sp_relations")
def sp_relations(profile: BenchProfile) -> Workload:
    """All pairwise relative positions implied by a sequence pair."""
    from repro.floorplan.sequence_pair import SequencePair

    rects = scenarios.random_placement(profile.scaled(40, 120), seed=11)
    pair = SequencePair.from_rects(rects)

    def run():
        return pair.relations()

    return Workload(run, units=len(rects) * (len(rects) - 1), unit_name="pairs")


@benchmark("floorplan.sp_consistency")
def sp_consistency(profile: BenchProfile) -> Workload:
    """Check a placement against every relation of its sequence pair."""
    from repro.floorplan.sequence_pair import SequencePair

    rects = scenarios.random_placement(profile.scaled(40, 120), seed=13)
    pair = SequencePair.from_rects(rects)

    def run():
        assert pair.is_consistent_with(rects)

    return Workload(run, units=len(rects) * (len(rects) - 1), unit_name="pairs")


@benchmark("floorplan.sp_packing")
def sp_packing(profile: BenchProfile) -> Workload:
    """Evaluate a sequence pair into packed coordinates (weighted-LCS)."""
    from repro.floorplan.sequence_pair import SequencePair

    rects = scenarios.random_placement(profile.scaled(40, 120), seed=17)
    pair = SequencePair.from_rects(rects)
    widths = {name: rect.width for name, rect in rects.items()}
    heights = {name: rect.height for name, rect in rects.items()}
    return Workload(
        lambda: pair.pack(widths, heights), units=len(rects), unit_name="rects"
    )


@benchmark("floorplan.milp_build")
def milp_build(profile: BenchProfile) -> Workload:
    """Build the full occupancy-grid MILP for a mid-size problem."""
    from repro.floorplan.milp_builder import build_floorplan_milp

    problem = scenarios.scaling_problem(profile.scaled(16, 33))
    stats = build_floorplan_milp(problem).model.stats()
    return Workload(
        lambda: build_floorplan_milp(problem),
        units=stats.num_constraints,
        unit_name="constraints",
    )


@benchmark("floorplan.milp_build_pruned")
def milp_build_pruned(profile: BenchProfile) -> Workload:
    """Build the occupancy-grid MILP with feasible-placement pruning.

    ``REPRO_MILP_LEGACY=1`` builds the unpruned model instead, giving the
    pre-optimization half of the committed snapshot pair.
    """
    from repro.floorplan.milp_builder import build_floorplan_milp

    prune = not scenarios.milp_legacy_mode()
    problem = scenarios.pruning_problem(profile.scaled(80, 96))
    stats = build_floorplan_milp(problem, prune=prune).model.stats()
    return Workload(
        lambda: build_floorplan_milp(problem, prune=prune),
        units=stats.num_constraints,
        unit_name="constraints",
    )


@benchmark("floorplan.ho_seed")
def ho_seed(profile: BenchProfile) -> Workload:
    """Heuristic seed + sequence-pair extraction (the HO front half)."""
    from repro.floorplan.ho import HOSeeder

    problem = scenarios.small_problem("ho-seed")
    seeder = HOSeeder(problem)

    def run():
        return seeder.build_seed().fixed_relations()

    return Workload(run, units=1, unit_name="seeds")


# ----------------------------------------------------------------------
# milp: lowering and solving
# ----------------------------------------------------------------------
@benchmark("milp.matrix_form")
def milp_matrix_form(profile: BenchProfile) -> Workload:
    """Lower a built floorplanning model to sparse matrix form."""
    from repro.floorplan.milp_builder import build_floorplan_milp

    problem = scenarios.scaling_problem(profile.scaled(16, 33), name="lowering")
    model = build_floorplan_milp(problem).model
    nnz = model.stats().num_nonzeros
    return Workload(lambda: model.to_matrix_form(), units=nnz, unit_name="nonzeros")


@benchmark("milp.presolve")
def milp_presolve(profile: BenchProfile) -> Workload:
    """Presolve the lowered floorplanning model (reductions + postsolve map)."""
    from repro.floorplan.milp_builder import build_floorplan_milp
    from repro.milp import presolve

    problem = scenarios.scaling_problem(profile.scaled(16, 33), name="presolve")
    form = build_floorplan_milp(problem).model.to_matrix_form()
    nnz = int(form.constraint_matrix.nnz)
    return Workload(lambda: presolve(form), units=nnz, unit_name="nonzeros")


@benchmark("milp.bb_warmstart")
def milp_bb_warmstart(profile: BenchProfile) -> Workload:
    """Branch-and-bound solve of the prebuilt HO ablation model.

    The HO model is built (and seeded) once in setup so the timed section
    measures the solver alone.  ``REPRO_MILP_LEGACY=1`` reverts to the
    textbook configuration (no presolve, most-fractional branching, no
    heuristics, per-node constraint split) so the committed pre/post
    snapshots measure the same workload on both paths.
    """
    from repro.floorplan import ObjectiveWeights
    from repro.floorplan.ho import HOSeeder
    from repro.floorplan.milp_builder import build_floorplan_milp
    from repro.milp import SolverOptions, solve

    legacy = scenarios.milp_legacy_mode()
    problem = scenarios.small_problem("bb-warm")
    seed = HOSeeder(problem).build_seed()
    milp = build_floorplan_milp(problem, fixed_relations=seed.fixed_relations())
    milp.set_objective(ObjectiveWeights(wirelength=0.0, wasted_frames=1.0))
    options = SolverOptions(
        backend="branch-bound",
        time_limit=scenarios.bench_time_limit(60.0),
        mip_gap=0.05,
        presolve=not legacy,
        warm_start=not legacy,
    )

    def run():
        solution = solve(milp.model, options)
        assert solution.status.has_solution
        return solution

    return Workload(run, units=1, unit_name="solves")


@benchmark("milp.solve_small")
def milp_solve_small(profile: BenchProfile) -> Workload:
    """End-to-end HO solve of the small ablation problem via HiGHS."""
    from repro.floorplan import FloorplanSolver, ObjectiveWeights
    from repro.milp import SolverOptions

    problem = scenarios.small_problem("solve-small")
    options = SolverOptions(time_limit=scenarios.bench_time_limit(30.0), mip_gap=0.05)

    def run():
        report = FloorplanSolver(problem, mode="HO", options=options).solve(
            weights=ObjectiveWeights(wirelength=0.0, wasted_frames=1.0)
        )
        assert report.solution.status.has_solution
        return report

    return Workload(run, units=1, unit_name="solves")


# ----------------------------------------------------------------------
# baselines: heuristic floorplanners
# ----------------------------------------------------------------------
@benchmark("baselines.annealing")
def annealing(profile: BenchProfile) -> Workload:
    """Simulated annealing on the small ablation problem."""
    from repro.baselines.annealing import AnnealingOptions, annealing_floorplan

    problem = scenarios.small_problem("anneal-bench")
    iterations = profile.scaled(4000, 20000)
    options = AnnealingOptions(iterations=iterations, seed=1)

    def run():
        floorplan = annealing_floorplan(problem, options)
        assert floorplan is not None
        return floorplan

    return Workload(run, units=iterations, unit_name="moves")


@benchmark("baselines.first_fit")
def first_fit(profile: BenchProfile) -> Workload:
    """First-fit greedy placement."""
    from repro.baselines.first_fit import first_fit_floorplan

    problem = scenarios.small_problem("ff-bench")
    return Workload(lambda: first_fit_floorplan(problem), units=1, unit_name="plans")


@benchmark("baselines.tessellation")
def tessellation(profile: BenchProfile) -> Workload:
    """Kernel-tessellation placement (the [8]-style baseline)."""
    from repro.baselines.tessellation import tessellation_floorplan

    problem = scenarios.small_problem("tess-bench")
    return Workload(lambda: tessellation_floorplan(problem), units=1, unit_name="plans")


# ----------------------------------------------------------------------
# sim: discrete-event simulator
# ----------------------------------------------------------------------
@benchmark("sim.poisson_events")
def sim_poisson(profile: BenchProfile) -> Workload:
    """Events/sec under steady Poisson load with the in-place policy."""
    from repro.runtime import ReconfigurationManager
    from repro.sim import PoissonTraffic, ReconfigureInPlace, SimConfig, SimulationEngine

    floorplan = scenarios.sim_floorplan()
    horizon = float(profile.scaled(100, 500))

    def run():
        engine = SimulationEngine(
            ReconfigurationManager(floorplan),
            traffic=PoissonTraffic(["A", "B"], rate=10.0, seed=0),
            policy=ReconfigureInPlace(),
            config=SimConfig(horizon=horizon, seconds_per_frame=1e-4),
        )
        result = engine.run()
        # deterministic (seeded), so every run observes the same count; the
        # warmup run fills this in before the timed rounds are summarized
        workload.units = float(result.events_processed)
        return result

    workload = Workload(run, units=1.0, unit_name="events")
    return workload


# ----------------------------------------------------------------------
# capacity: fleet simulation and the minimum-fleet-size planner
# ----------------------------------------------------------------------
def _capacity_profile():
    from repro.capacity import DeviceProfile

    # ~8 req/s of serving capacity per device: large enough that the planner
    # has real work to do at double-digit offered rates
    return DeviceProfile(
        name="bench-dev", frame_counts={"A": 100, "B": 150}, seconds_per_frame=1e-3
    )


@benchmark("capacity.fleet_sim")
def capacity_fleet_sim(profile: BenchProfile) -> Workload:
    """Events/sec through a 16-device fleet under shared Poisson load."""
    from repro.capacity import FleetConfig, FleetSimulation, make_dispatcher
    from repro.sim import PoissonTraffic

    device = _capacity_profile()
    horizon = float(profile.scaled(60, 300))

    def run():
        result = FleetSimulation(
            profile=device,
            num_devices=16,
            traffic=PoissonTraffic(["A", "B"], rate=40.0, seed=0),
            dispatcher=make_dispatcher("least-loaded"),
            config=FleetConfig(horizon=horizon),
        ).run()
        workload.units = float(result.events_processed)
        return result

    workload = Workload(run, units=1.0, unit_name="events")
    return workload


@benchmark("capacity.plan_small")
def capacity_plan_small(profile: BenchProfile) -> Workload:
    """One full minimum-fleet-size search (doubling + binary search)."""
    from repro.capacity import CapacityScenario, CapacitySLO, plan_min_devices

    scenario = CapacityScenario(
        profile=_capacity_profile(),
        rate=float(profile.scaled(40, 80)),
        horizon=float(profile.scaled(20, 60)),
        seed=0,
    )
    slo = CapacitySLO(
        max_p99_latency_s=0.5, max_blocking=0.02, min_throughput_fraction=0.95
    )

    def run():
        outcome = plan_min_devices(scenario, slo, max_devices=64)
        workload.units = float(len(outcome.evaluations))
        workload.extras["min_devices"] = float(outcome.min_devices or 0)
        return outcome

    workload = Workload(run, units=1.0, unit_name="evaluations")
    return workload


# ----------------------------------------------------------------------
# bitstream: generation and relocation filter
# ----------------------------------------------------------------------
@benchmark("bitstream.generate")
def bitstream_generate(profile: BenchProfile) -> Workload:
    """Generate a partial bitstream for a 4x4 module."""
    from repro.bitstream import generate_bitstream
    from repro.device.catalog import synthetic_device
    from repro.floorplan.geometry import Rect

    device = synthetic_device(16, 8, bram_every=5, dsp_every=9, name="gen-dev")
    rect = Rect(0, 0, 4, 4)
    return Workload(
        lambda: generate_bitstream(device, rect, "throughput-module"),
        units=1,
        unit_name="bitstreams",
    )


@benchmark("bitstream.relocate")
def bitstream_relocate(profile: BenchProfile) -> Workload:
    """Run the relocation filter on a generated bitstream."""
    from repro.bitstream import generate_bitstream, relocate_bitstream
    from repro.device.catalog import synthetic_device
    from repro.device.partition import columnar_partition
    from repro.floorplan.geometry import Rect

    device = synthetic_device(16, 8, bram_every=5, dsp_every=9, name="filter-dev")
    partition = columnar_partition(device)
    source = generate_bitstream(device, Rect(0, 0, 3, 3), "reloc-module")
    target = Rect(0, 4, 3, 3)
    return Workload(
        lambda: relocate_bitstream(source, target, device, partition),
        units=1,
        unit_name="relocations",
    )


# ----------------------------------------------------------------------
# service: job canonicalization / sweep construction
# ----------------------------------------------------------------------
@benchmark("service.sweep_build")
def service_sweep_build(profile: BenchProfile) -> Workload:
    """Build the 8-job sweep grid (workload generation + job specs)."""
    jobs = scenarios.throughput_sweep_jobs(time_limit=5.0)
    count = len(jobs)
    return Workload(
        lambda: scenarios.throughput_sweep_jobs(time_limit=5.0),
        units=count,
        unit_name="jobs",
    )


@benchmark("service.fingerprint")
def service_fingerprint(profile: BenchProfile) -> Workload:
    """Content-hash the sweep jobs (cache-key canonicalization)."""
    jobs = scenarios.throughput_sweep_jobs(time_limit=5.0)

    def run():
        for job in jobs:
            job._fingerprint = None  # force re-canonicalization
            _ = job.fingerprint

    return Workload(run, units=len(jobs), unit_name="jobs")


# ----------------------------------------------------------------------
# server: the asyncio solve gateway under load
# ----------------------------------------------------------------------
#: Shared server shape of the two cache-miss benchmarks: enough shards that
#: one-request-per-solve dispatch is never queue-limited (making the batched
#: win attributable to coalescing/dedup, not shard starvation), thread
#: executor so no per-batch process-spawn cost muddies the comparison.
_MISS_SHAPE = {"shards": 12, "batch_workers": 8, "executor": "thread"}


def _gateway_workload(profile, make_config, run_load, warm: bool, unique: int = 4):
    """Shared shape of the ``server.*`` benchmarks.

    A :class:`~repro.server.gateway.BackgroundGateway` is started once in
    setup (torn down by the harness's ``teardown`` hook); each timed round
    throws one load pattern at it over real loopback HTTP and records the
    load generator's percentile/shed/hit metrics into the workload extras.
    ``warm=True`` prefills the solve cache in setup so the timed rounds
    measure the serving path; ``warm=False`` clears the cache every round so
    they measure the cache-miss solve pipeline.
    """
    from repro.server.gateway import BackgroundGateway

    payloads = scenarios.server_payloads(unique=unique)
    background = BackgroundGateway(make_config())
    gateway = background.gateway

    def run():
        result = run_load(background.host, background.port, payloads)
        workload.units = float(result.sent)
        workload.extras.update(
            {
                "throughput_rps": round(result.throughput, 3),
                "p50_ms": round(result.p50_s * 1e3, 3),
                "p99_ms": round(result.p99_s * 1e3, 3),
                "shed_rate": round(result.shed_rate, 6),
                "hit_rate": round(result.hit_rate, 6),
            }
        )
        return result

    workload = Workload(run, units=1.0, unit_name="requests")
    workload.teardown = background.stop
    try:
        if warm:
            run()  # prefill: the timed rounds then serve a warm cache
        else:
            def reset():
                gateway.cache.clear(disk=False)

            workload.reset = reset
            reset()
    except BaseException:
        # the runner only sees the Workload (and its teardown) if the factory
        # returns; a failed prefill must not leak the gateway thread/port
        background.stop()
        raise
    return workload


@benchmark("server.gateway_closed_loop")
def server_gateway_closed_loop(profile: BenchProfile) -> Workload:
    """Warm-cache closed-loop serving: N keep-alive clients back to back."""
    from repro.server.gateway import GatewayConfig
    from repro.server.loadgen import run_closed_loop

    requests = profile.scaled(10, 40)

    def load(host, port, payloads):
        return run_closed_loop(
            host, port, payloads, clients=4, requests_per_client=requests
        )

    return _gateway_workload(
        profile, lambda: GatewayConfig(port=0), load, warm=True
    )


@benchmark("server.gateway_open_loop")
def server_gateway_open_loop(profile: BenchProfile) -> Workload:
    """Warm-cache open-loop serving: Poisson arrivals past a rate limiter.

    The offered rate deliberately exceeds the per-client token bucket, so the
    snapshot records a non-zero shed rate — the admission-control path is part
    of what this benchmark guards.
    """
    from repro.server.gateway import GatewayConfig
    from repro.server.loadgen import run_open_loop

    rate = float(profile.scaled(150, 300))

    def load(host, port, payloads):
        return run_open_loop(host, port, payloads, rate=rate, horizon=1.0, seed=7)

    return _gateway_workload(
        profile,
        lambda: GatewayConfig(port=0, rate_limit=0.6 * rate, rate_burst=0.2 * rate),
        load,
        warm=True,
    )


@benchmark("server.miss_microbatch")
def server_miss_microbatch(profile: BenchProfile) -> Workload:
    """Cold-cache misses through the micro-batcher (coalescing + dedup).

    8 concurrent requests over 4 unique jobs land inside one batch window —
    the thundering-herd shape of a popular cache entry expiring.  The batcher
    dedups the duplicate fingerprints and solves only the unique jobs, across
    the full worker width.  Compare against ``server.miss_unbatched``
    (identical gateway shape and load; only the batching knobs differ) for
    the measured micro-batching margin.
    """
    from repro.server.gateway import GatewayConfig
    from repro.server.loadgen import run_closed_loop

    def load(host, port, payloads):
        return run_closed_loop(host, port, payloads, clients=8, requests_per_client=1)

    return _gateway_workload(
        profile,
        lambda: GatewayConfig(port=0, max_batch=16, batch_window=0.05, **_MISS_SHAPE),
        load,
        warm=False,
        unique=4,
    )


@benchmark("server.miss_unbatched")
def server_miss_unbatched(profile: BenchProfile) -> Workload:
    """The one-request-per-solve baseline: same load, ``max_batch=1``.

    No coalescing window: every request is dispatched as its own single-job
    batch the moment it arrives, so concurrent duplicates race and each pays
    its own full solve.  This is the ablation half of the micro-batching
    comparison — same shard/worker shape, no window, no dedup.
    """
    from repro.server.gateway import GatewayConfig
    from repro.server.loadgen import run_closed_loop

    def load(host, port, payloads):
        return run_closed_loop(host, port, payloads, clients=8, requests_per_client=1)

    return _gateway_workload(
        profile,
        lambda: GatewayConfig(port=0, max_batch=1, batch_window=0.0, **_MISS_SHAPE),
        load,
        warm=False,
        unique=4,
    )


# ----------------------------------------------------------------------
# fleet: multi-process replicas behind the consistent-hash router
# ----------------------------------------------------------------------
#: Per-replica knobs of the fleet cache-miss benchmarks: no micro-batch
#: window, so within one process every request dispatches as its own
#: single-job batch.  This is the same unbatched ablation shape as
#: ``server.miss_unbatched`` — it makes duplicate-collapse attributable to
#: the cache tier's cross-replica single-flight, not in-process coalescing.
_FLEET_UNBATCHED = ("--max-batch", "1", "--batch-window", "0")


def _fleet_miss_rounds(profile: BenchProfile, per_round: int):
    """Fresh-fingerprint payload batches, one per warmup/timed round.

    Cache-miss rounds cannot be reset by clearing the shared directory — the
    replicas hold in-memory LRU copies a parent process cannot reach.  Fresh
    fingerprints per round make every round a true miss regardless.  The
    payloads are the heavy (~1-2 s) instances: collapsing duplicate *solves*
    is only visible when a solve costs far more than the lock/poll/HTTP
    coordination spent collapsing it.
    """
    rounds = profile.warmup + profile.repeats + 2  # +2 slack for re-runs
    pool = scenarios.server_payloads(unique=rounds * per_round, heavy=True)
    return [pool[index * per_round : (index + 1) * per_round] for index in range(rounds)]


def _fleet_workload(
    profile: BenchProfile,
    replicas: int,
    clients: int,
    per_round: int,
    direct: bool,
    server_args=_FLEET_UNBATCHED,
):
    """Shared shape of the ``fleet.*`` cache-miss benchmarks.

    A :class:`~repro.fleet.BackgroundFleet` (replica processes + router) is
    started once in setup; each timed round throws one closed-loop burst of
    *fresh-fingerprint* payloads at it.  ``direct=True`` round-robins the
    clients over the replica ports themselves (the cross-replica single-
    flight shape); ``direct=False`` sends everything through the router.
    Per-round extras record fleet-wide solve counts scraped from the
    router's ``/metrics`` roll-up, so the snapshot carries the
    work-collapse evidence (``solves_per_unique``) alongside the latency
    numbers.
    """
    import tempfile

    from repro.fleet import BackgroundFleet
    from repro.server.loadgen import fetch_metrics_json, run_fleet_closed_loop

    rounds = _fleet_miss_rounds(profile, per_round)
    fleet = BackgroundFleet(
        replicas=replicas,
        cache_dir=tempfile.mkdtemp(prefix="repro-bench-fleet-"),
        server_args=server_args,
    )
    state = {"round": 0, "stores": 0.0, "flight_waits": 0.0}

    def run():
        batch = rounds[state["round"] % len(rounds)]
        state["round"] += 1
        targets = fleet.manager.addresses if direct else [(fleet.host, fleet.port)]
        result = run_fleet_closed_loop(
            targets, batch, clients=clients, requests_per_client=1
        )
        rollup = fetch_metrics_json(fleet.host, fleet.port)
        stores = float(rollup["cache"]["stores"])
        flight_waits = float(rollup["counters"]["flight_waits"])
        workload.units = float(result.sent)
        workload.extras.update(
            {
                "throughput_rps": round(result.throughput, 3),
                "p50_ms": round(result.p50_s * 1e3, 3),
                "p99_ms": round(result.p99_s * 1e3, 3),
                "errors": float(result.errors),
                "unique_jobs": float(per_round),
                "solves_fleetwide": stores - state["stores"],
                "solves_per_unique": (stores - state["stores"]) / per_round,
                "flight_waits": flight_waits - state["flight_waits"],
            }
        )
        state["stores"] = stores
        state["flight_waits"] = flight_waits
        return result

    workload = Workload(run, units=float(clients), unit_name="requests")
    workload.teardown = fleet.stop
    return workload


@benchmark("fleet.herd_single")
def fleet_herd_single(profile: BenchProfile) -> Workload:
    """The no-dedup baseline for the duplicate-miss herd: one gateway in the
    ``server.miss_unbatched`` ablation shape.

    8 concurrent requests over 2 unique jobs, fresh fingerprints per round,
    ``max_batch=1`` over the wide ``_MISS_SHAPE`` shard pool — the exact
    configuration ``server.miss_unbatched`` publishes as "every concurrent
    duplicate races its twin and pays its own full solve" (narrow shard
    pools dedup repeats per shard through the BatchSolver's fingerprint
    cache; the wide pool is what removes coalescing *everywhere*).  This is
    the cost of duplicate misses with no collapse mechanism at any layer;
    ``fleet.herd_fleet4`` shows the same herd with fleet-wide single-flight.
    """
    from repro.server.gateway import GatewayConfig
    from repro.server.loadgen import run_closed_loop

    rounds = _fleet_miss_rounds(profile, 2)
    state = {"round": 0, "batches": 0.0}

    from repro.server.gateway import BackgroundGateway

    background = BackgroundGateway(
        GatewayConfig(port=0, max_batch=1, batch_window=0.0, **_MISS_SHAPE)
    )
    gateway = background.gateway

    def run():
        batch = rounds[state["round"] % len(rounds)]
        state["round"] += 1
        result = run_closed_loop(
            background.host, background.port, batch,
            clients=8, requests_per_client=1,
        )
        batches = float(gateway.metrics.batches)
        workload.units = float(result.sent)
        workload.extras.update(
            {
                "throughput_rps": round(result.throughput, 3),
                "p50_ms": round(result.p50_s * 1e3, 3),
                "p99_ms": round(result.p99_s * 1e3, 3),
                "errors": float(result.errors),
                "unique_jobs": 2.0,
                "solves_fleetwide": batches - state["batches"],
                "solves_per_unique": (batches - state["batches"]) / 2.0,
            }
        )
        state["batches"] = batches
        return result

    workload = Workload(run, units=8.0, unit_name="requests")
    workload.teardown = background.stop
    return workload


@benchmark("fleet.herd_fleet4")
def fleet_herd_fleet4(profile: BenchProfile) -> Workload:
    """The same duplicate-miss herd against a 4-replica fleet.

    Identical load as ``fleet.herd_single``, but the duplicates are
    deliberately spread over the replica *ports* (bypassing the router,
    whose fingerprint affinity would hide the mechanism): the replicas meet
    in the shared cache tier, the per-fingerprint lock files elect one
    solver per unique job, and everyone else serves the stored result.  The
    snapshot's acceptance evidence: ``solves_per_unique == 1`` (8 duplicate
    misses → 2 solves fleet-wide, where the baseline pays 8) and a ≥2×
    closed-loop throughput margin over ``fleet.herd_single`` — the margin is
    work collapse, which is why it survives even a single-core runner where
    CPU-parallel replica scaling is physically unavailable.
    """
    return _fleet_workload(profile, replicas=4, clients=8, per_round=2, direct=True)


@benchmark("fleet.miss_r1")
def fleet_miss_r1(profile: BenchProfile) -> Workload:
    """Distinct-fingerprint misses through the router, 1 replica.

    The honest replica-scaling pair (with ``fleet.miss_r4``): 4 concurrent
    clients, 4 unique jobs per round, no duplicates — so single-flight never
    fires and the margin is pure multi-process parallelism.  On a
    multi-core host r4 approaches linear scaling; on a single-core runner
    (like the box that produced ``BENCH_fleet.json``) the pair is ~flat and
    documents exactly that.
    """
    return _fleet_workload(profile, replicas=1, clients=4, per_round=4, direct=False)


@benchmark("fleet.miss_r4")
def fleet_miss_r4(profile: BenchProfile) -> Workload:
    """Distinct-fingerprint misses through the router, 4 replicas.

    See ``fleet.miss_r1`` — this is the scaled half of the pair.
    """
    return _fleet_workload(profile, replicas=4, clients=4, per_round=4, direct=False)


@benchmark("fleet.router_closed_loop")
def fleet_router_closed_loop(profile: BenchProfile) -> Workload:
    """Warm-cache serving *through the router*: the frontend's overhead.

    The fleet analogue of ``server.gateway_closed_loop`` — same closed-loop
    hit traffic, but every request additionally pays the router's decode,
    ring lookup and upstream hop.  Guards routing-path regressions.
    """
    import tempfile

    from repro.fleet import BackgroundFleet
    from repro.server.loadgen import run_closed_loop

    requests = profile.scaled(10, 40)
    payloads = scenarios.server_payloads(unique=4)
    fleet = BackgroundFleet(
        replicas=2,
        cache_dir=tempfile.mkdtemp(prefix="repro-bench-fleet-"),
        server_args=(),  # default batching: this benchmark serves hits
    )

    def run():
        result = run_closed_loop(
            fleet.host, fleet.port, payloads,
            clients=4, requests_per_client=requests,
        )
        workload.units = float(result.sent)
        workload.extras.update(
            {
                "throughput_rps": round(result.throughput, 3),
                "p50_ms": round(result.p50_s * 1e3, 3),
                "p99_ms": round(result.p99_s * 1e3, 3),
                "hit_rate": round(result.hit_rate, 6),
            }
        )
        return result

    workload = Workload(run, units=1.0, unit_name="requests")
    workload.teardown = fleet.stop
    try:
        run()  # prefill: the timed rounds then serve warm hits end to end
    except BaseException:
        fleet.stop()
        raise
    return workload


# ----------------------------------------------------------------------
# obs: tracing overhead on the serving hot path
# ----------------------------------------------------------------------
@benchmark("obs.trace_overhead")
def obs_trace_overhead(profile: BenchProfile) -> Workload:
    """Per-request cost of tracing: traced vs untraced warm cache-hit serving.

    Two identical gateways — one with the recorder on (the default), one
    with ``tracing=False`` — serve the *same* alternating request stream.
    Design notes, each of which a noisy shared box made necessary:

    - Gateways and the load generator share one event loop on one thread.
      A background-thread server lets GIL scheduling (5 ms switch interval)
      inflate a ~30 µs instrumentation cost into a hundreds-of-µs latency
      artifact.
    - Requests alternate traced/untraced *per request* over two keep-alive
      connections (first side swapping every pair), so adjacent samples see
      near-identical machine conditions and slow load drift cancels instead
      of biasing whichever side ran during a noisy stretch.
    - Latencies accumulate across every timed round; the final extras
      compare pooled p50s over the whole protocol.

    ``overhead_pct`` is the acceptance evidence that spans, the recorder
    ring, and header propagation cost < 5% of a cache-hit p50.
    """
    import asyncio
    import statistics as stats_mod

    from repro.server.gateway import GatewayConfig, SolveGateway
    from repro.server.loadgen import GatewayClient

    pairs_per_round = profile.scaled(150, 400)
    payloads = scenarios.server_payloads(unique=4)

    loop = asyncio.new_event_loop()
    traced = SolveGateway(config=GatewayConfig(port=0))
    untraced = SolveGateway(config=GatewayConfig(port=0, tracing=False))
    clients: Dict[str, GatewayClient] = {}
    pooled: Dict[str, List[float]] = {"traced": [], "untraced": []}
    walls: Dict[str, float] = {"traced": 0.0, "untraced": 0.0}

    async def alternating_round():
        sides = [("traced", clients["traced"]), ("untraced", clients["untraced"])]
        for index in range(pairs_per_round):
            payload = payloads[index % len(payloads)]
            order = sides if index % 2 == 0 else sides[::-1]
            for name, client in order:
                started = time.perf_counter()
                status, _ = await client.solve(payload)
                elapsed = time.perf_counter() - started
                if status != 200:
                    raise RuntimeError(f"{name} gateway answered {status}")
                pooled[name].append(elapsed)
                walls[name] += elapsed

    def run():
        loop.run_until_complete(alternating_round())
        traced_p50 = stats_mod.median(pooled["traced"])
        untraced_p50 = stats_mod.median(pooled["untraced"])
        workload.units = float(2 * pairs_per_round)
        overhead = (
            (traced_p50 - untraced_p50) / untraced_p50 if untraced_p50 > 0 else 0.0
        )
        workload.extras.update(
            {
                "traced_p50_ms": round(traced_p50 * 1e3, 3),
                "untraced_p50_ms": round(untraced_p50 * 1e3, 3),
                "traced_throughput_rps": round(
                    len(pooled["traced"]) / walls["traced"], 3
                ),
                "untraced_throughput_rps": round(
                    len(pooled["untraced"]) / walls["untraced"], 3
                ),
                "overhead_pct": round(100.0 * overhead, 3),
            }
        )

    def stop():
        async def shutdown():
            for client in clients.values():
                await client.close()
            await traced.drain()
            await untraced.drain()
            # reap connection handlers still waiting on their close handshake
            leftovers = [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            if leftovers:
                _done, pending = await asyncio.wait(leftovers, timeout=1.0)
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        try:
            loop.run_until_complete(shutdown())
        finally:
            loop.close()

    async def startup():
        await traced.start()
        await untraced.start()
        host = traced.config.host
        clients["traced"] = await GatewayClient(host, traced.port).connect()
        clients["untraced"] = await GatewayClient(host, untraced.port).connect()
        # prefill both caches: every measured request is a warm hit
        for name, client in clients.items():
            for payload in payloads:
                status, _ = await client.solve(payload)
                if status != 200:
                    raise RuntimeError(f"{name} gateway prefill answered {status}")

    workload = Workload(run, units=1.0, unit_name="requests")
    workload.teardown = stop
    try:
        loop.run_until_complete(startup())
    except BaseException:
        stop()
        raise
    return workload


# ----------------------------------------------------------------------
# runtime: reconfiguration manager
# ----------------------------------------------------------------------
@benchmark("runtime.reconfigure")
def runtime_reconfigure(profile: BenchProfile) -> Workload:
    """Round-robin mode swaps through the reconfiguration manager."""
    from repro.runtime import ReconfigurationManager, round_robin_schedule

    floorplan = scenarios.sim_floorplan("runtime-bench")
    rounds = profile.scaled(5, 20)
    steps = list(round_robin_schedule(list(floorplan.placements), rounds=rounds))

    def run():
        manager = ReconfigurationManager(floorplan)
        for region, mode in steps:
            manager.reconfigure(region, mode)
        return manager

    return Workload(run, units=len(steps), unit_name="reconfigs")


# ----------------------------------------------------------------------
# resilience: failure and overload behaviour under load
# ----------------------------------------------------------------------
@benchmark("resilience.failover_latency")
def resilience_failover_latency(profile: BenchProfile) -> Workload:
    """Warm-cache serving through the router while a replica is killed.

    A 2-replica fleet is prefilled so every request is a cache hit, then each
    timed round SIGKILLs one replica (alternating) and immediately throws a
    closed-loop burst through the router.  The measured time is the price of
    failover: circuit-breaker opening, jittered retries, and the supervisor
    bringing the replica back.  ``errors`` must stay 0 — failover means the
    *clients* never notice.
    """
    import tempfile

    from repro.fleet import BackgroundFleet
    from repro.fleet.manager import FleetConfig
    from repro.server.loadgen import run_closed_loop

    payloads = scenarios.server_payloads(unique=2)
    fleet = BackgroundFleet(
        fleet_config=FleetConfig(
            replicas=2,
            cache_dir=tempfile.mkdtemp(prefix="repro-bench-resilience-"),
            backoff_base=0.1,
            backoff_cap=0.5,
            backoff_seed=0,
        )
    )
    state = {"round": 0}

    # prefill: one pass through the router so every replica-side miss lands
    # in the shared tier and the timed rounds measure routing, not solving
    run_closed_loop(fleet.host, fleet.port, payloads, clients=2, requests_per_client=2)

    def run():
        victim = state["round"] % 2
        state["round"] += 1
        fleet.manager.kill_replica(victim)
        result = run_closed_loop(
            fleet.host, fleet.port, payloads, clients=4, requests_per_client=4
        )
        # let the supervisor restore the victim before the next round kills
        # the *other* replica, so the fleet never goes dark
        fleet.manager.wait_healthy(victim, timeout=30.0)
        workload.units = float(result.sent)
        workload.extras.update(
            {
                "throughput_rps": round(result.throughput, 3),
                "p50_ms": round(result.p50_s * 1e3, 3),
                "p99_ms": round(result.p99_s * 1e3, 3),
                "errors": float(result.errors),
                "shed": float(result.shed),
                "restarts": float(fleet.manager.total_restarts),
            }
        )
        return result

    workload = Workload(run, units=16.0, unit_name="requests")
    workload.teardown = fleet.stop
    return workload


@benchmark("resilience.brownout_floor")
def resilience_brownout_floor(profile: BenchProfile) -> Workload:
    """Throughput floor of a browned-out gateway on heavy cache misses.

    The gateway runs with ``brownout_watermark=1``: the moment any work
    queues, the portfolio drops its MILP arm and answers heuristic-only,
    flagged ``degraded``.  Each round is a fresh-fingerprint burst of the
    heavy (~1-2 s MILP) instances — under brown-out they cost milliseconds,
    and the measured throughput is the floor the fleet guarantees while
    overloaded.  ``degraded_share`` in the extras is the evidence the
    mechanism (not a warm cache) produced the numbers.
    """
    from repro.server.gateway import BackgroundGateway, GatewayConfig
    from repro.server.loadgen import run_closed_loop

    per_round = 4
    rounds = profile.warmup + profile.repeats + 2
    pool = scenarios.server_payloads(unique=rounds * per_round, heavy=True)
    batches = [
        pool[index * per_round : (index + 1) * per_round] for index in range(rounds)
    ]
    background = BackgroundGateway(
        GatewayConfig(port=0, solver="portfolio", brownout_watermark=1)
    )
    gateway = background.gateway
    state = {"round": 0, "degraded": 0.0}

    def run():
        batch = batches[state["round"] % len(batches)]
        state["round"] += 1
        result = run_closed_loop(
            background.host, background.port, batch,
            clients=per_round, requests_per_client=1,
        )
        degraded = float(gateway.metrics.degraded)
        workload.units = float(result.sent)
        workload.extras.update(
            {
                "throughput_rps": round(result.throughput, 3),
                "p50_ms": round(result.p50_s * 1e3, 3),
                "p99_ms": round(result.p99_s * 1e3, 3),
                "errors": float(result.errors),
                "degraded_share": (degraded - state["degraded"]) / max(1, result.sent),
            }
        )
        state["degraded"] = degraded
        return result

    workload = Workload(run, units=float(per_round), unit_name="requests")
    workload.teardown = background.stop
    return workload
