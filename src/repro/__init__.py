"""repro — relocation-aware MILP floorplanning for partially-reconfigurable FPGAs.

Reproduction of *Rabozzi et al., "Relocation-aware Floorplanning for
Partially-Reconfigurable FPGA-based Systems", IPDPSW 2015*.

The public API re-exported here is the surface a downstream user needs:

* device modelling (:mod:`repro.device`): tile types, devices, columnar
  partitioning, the device catalog;
* floorplanning (:mod:`repro.floorplan`): problems, the MILP solver facade
  (O and HO modes), metrics, verification;
* relocation (:mod:`repro.relocation`): compatibility predicates, relocation
  specs (constraint / metric), feasibility analysis;
* baselines (:mod:`repro.baselines`): greedy and annealing floorplanners;
* bitstreams and runtime (:mod:`repro.bitstream`, :mod:`repro.runtime`): the
  simulated relocation filter and a small partial-reconfiguration run-time;
* workloads (:mod:`repro.workloads`): the SDR case study and synthetic
  generators;
* analysis (:mod:`repro.analysis`): ASCII floorplan rendering and tables;
* batch service (:mod:`repro.service`): content-addressed solve caching,
  parallel batch execution, portfolio racing and scenario sweeps;
* online simulation (:mod:`repro.sim`): discrete-event simulation of the
  runtime under stochastic traffic, fault injection and live
  re-floorplanning policies;
* serving (:mod:`repro.server`): the asyncio JSON-over-HTTP solve gateway
  with micro-batching, admission control and a load-testing harness.

Quickstart::

    from repro import (
        sdr_problem, sdr2_spec, FloorplanSolver, SolverOptions, render_floorplan,
    )

    problem = sdr_problem()
    solver = FloorplanSolver(problem, relocation=sdr2_spec(), mode="HO",
                             options=SolverOptions(time_limit=60))
    report = solver.solve()
    print(report.summary())
    print(render_floorplan(report.floorplan))
"""

from repro.device import (
    FPGADevice,
    ForbiddenArea,
    Portion,
    ResourceType,
    ResourceVector,
    TileType,
    columnar_partition,
    simple_two_type_device,
    synthetic_device,
    virtex5_fx70t_like,
    virtex7_like,
    zynq_like,
)
from repro.floorplan import (
    Connection,
    Floorplan,
    FloorplanProblem,
    FloorplanSolver,
    IOPin,
    ObjectiveWeights,
    Rect,
    Region,
    RegionPlacement,
    SequencePair,
    SolveReport,
    evaluate_floorplan,
    verify_floorplan,
)
from repro.milp import Model, SolverOptions, SolveStatus, solve
from repro.relocation import (
    RelocationRequest,
    RelocationSpec,
    areas_compatible,
    enumerate_free_compatible_areas,
    feasibility_analysis,
    is_free_compatible,
)
from repro.baselines import (
    annealing_floorplan,
    first_fit_floorplan,
    tessellation_floorplan,
)
from repro.bitstream import (
    ConfigurationMemory,
    PartialBitstream,
    RelocationError,
    generate_bitstream,
    relocate_bitstream,
)
from repro.runtime import (
    ReconfigurationError,
    ReconfigurationManager,
    RuntimeTrace,
)
from repro.workloads import (
    SyntheticWorkloadConfig,
    sdr_problem,
    sdr2_spec,
    sdr3_spec,
    synthetic_problem,
)
from repro.analysis import render_floorplan, render_partition
from repro.service import (
    BatchSolver,
    SolveCache,
    SolveJob,
    SweepReport,
    run_portfolio,
    run_sweep,
    sweep_jobs,
)
from repro.server import (
    BackgroundGateway,
    GatewayConfig,
    SolveGateway,
)
from repro.fleet import (
    BackgroundFleet,
    FleetConfig,
    FleetManager,
    FleetRouter,
    HashRing,
    RouterConfig,
)
from repro.sim import (
    InhomogeneousPoissonTraffic,
    MMPPTraffic,
    PoissonTraffic,
    RandomFaults,
    ReconfigureInPlace,
    RelocateFirst,
    ResolveViaService,
    ScheduledFaults,
    SimConfig,
    SimulationEngine,
    TraceReplayTraffic,
    sinusoidal_rate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # device
    "FPGADevice",
    "TileType",
    "ResourceType",
    "ResourceVector",
    "Portion",
    "ForbiddenArea",
    "columnar_partition",
    "virtex5_fx70t_like",
    "virtex7_like",
    "zynq_like",
    "synthetic_device",
    "simple_two_type_device",
    # floorplanning
    "Rect",
    "Region",
    "IOPin",
    "Connection",
    "FloorplanProblem",
    "RegionPlacement",
    "Floorplan",
    "ObjectiveWeights",
    "SequencePair",
    "FloorplanSolver",
    "SolveReport",
    "evaluate_floorplan",
    "verify_floorplan",
    # MILP substrate
    "Model",
    "solve",
    "SolverOptions",
    "SolveStatus",
    # relocation
    "RelocationSpec",
    "RelocationRequest",
    "areas_compatible",
    "is_free_compatible",
    "enumerate_free_compatible_areas",
    "feasibility_analysis",
    # baselines
    "first_fit_floorplan",
    "tessellation_floorplan",
    "annealing_floorplan",
    # bitstreams
    "PartialBitstream",
    "generate_bitstream",
    "relocate_bitstream",
    "RelocationError",
    "ConfigurationMemory",
    # runtime
    "ReconfigurationManager",
    "ReconfigurationError",
    "RuntimeTrace",
    # workloads
    "sdr_problem",
    "sdr2_spec",
    "sdr3_spec",
    "SyntheticWorkloadConfig",
    "synthetic_problem",
    # analysis
    "render_floorplan",
    "render_partition",
    # batch service
    "SolveJob",
    "SolveCache",
    "BatchSolver",
    "SweepReport",
    "sweep_jobs",
    "run_sweep",
    "run_portfolio",
    # serving
    "SolveGateway",
    "GatewayConfig",
    "BackgroundGateway",
    # fleet
    "HashRing",
    "FleetConfig",
    "FleetManager",
    "RouterConfig",
    "FleetRouter",
    "BackgroundFleet",
    # online simulation
    "SimulationEngine",
    "SimConfig",
    "PoissonTraffic",
    "InhomogeneousPoissonTraffic",
    "sinusoidal_rate",
    "MMPPTraffic",
    "TraceReplayTraffic",
    "ScheduledFaults",
    "RandomFaults",
    "ReconfigureInPlace",
    "RelocateFirst",
    "ResolveViaService",
]
