"""Ready-made device descriptions.

The paper evaluates on a Xilinx Virtex-5 FX70T.  We do not have access to the
vendor device database, so :func:`virtex5_fx70t_like` builds a synthetic
columnar grid with the same *relevant* characteristics:

* three tile types — CLB, BRAM, DSP — with 36, 30 and 28 configuration frames
  per tile respectively (these are the values that make the frame totals of
  Table I come out exactly);
* interleaved CLB/BRAM/DSP columns, eight tile rows (a tile row corresponds to
  one frame row / clock region of the real device);
* a hard-processor (PowerPC-like) forbidden block in the middle of the fabric
  that breaks column contiguity, exactly the situation that motivates the
  *forbidden areas* of Section III.A.

The grid is sized so that the qualitative findings of Section VI hold: the
five SDR regions fit, free-compatible areas exist for the three small regions,
and no free-compatible area exists for the matched filter or the video decoder
(their 5-DSP-tile footprints exhaust the DSP columns).

Additional devices (``virtex7_like``, ``zynq_like``, ``synthetic_device``) are
provided for the scaling benchmarks and the examples.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.device.grid import FPGADevice, ForbiddenRect
from repro.device.tile import BRAM, CLB, DSP, TileType


def simple_two_type_device(
    width: int = 12, height: int = 6, name: str = "simple-two-type"
) -> FPGADevice:
    """A small blue/green style device used by the figure examples and tests.

    Columns alternate in blocks: four CLB columns, one BRAM column, repeated.
    No forbidden areas.
    """
    column_types: List[TileType] = []
    for col in range(width):
        column_types.append(BRAM if col % 5 == 4 else CLB)
    return FPGADevice.from_columns(name, column_types, height)


def virtex5_fx70t_like() -> FPGADevice:
    """The Virtex-5 FX70T-like device used by the SDR case study (Section VI).

    33 columns x 8 tile rows: 28 CLB columns, 3 BRAM columns, 2 DSP columns,
    plus a 2x3 PowerPC-like forbidden block in the centre of the fabric.

    The two DSP columns are the deliberately scarce resource: the SDR regions
    demand 11 of the 16 DSP tiles, which is what makes a free-compatible area
    for the matched filter or the video decoder impossible (their 5-DSP-tile
    footprints cannot be duplicated), reproducing the feasibility finding of
    Section VI.
    """
    pattern = (
        "CCCC B CCC D CCCCCCCCC B CCC D CCCC B CCCCC".replace(" ", "")
    )
    column_types = [_TYPE_BY_LETTER[letter] for letter in pattern]
    forbidden = [ForbiddenRect("PPC", col=13, row=3, width=2, height=3)]
    return FPGADevice.from_columns(
        "virtex5-fx70t-like", column_types, height=8, forbidden=forbidden
    )


def virtex7_like() -> FPGADevice:
    """A larger Virtex-7-style columnar device (no hard processor block).

    48 columns x 12 rows with a denser BRAM/DSP interleave; used by the
    scaling benchmarks and the synthetic workload examples.
    """
    pattern = "CCCCBCCDCCCCBCCDCCCCCCBCCDCCCCBCCDCCCCCCBCCDCCCC"
    column_types = [_TYPE_BY_LETTER[letter] for letter in pattern]
    return FPGADevice.from_columns("virtex7-like", column_types, height=12)


def zynq_like() -> FPGADevice:
    """A small Zynq-style device with a processing-system forbidden corner."""
    pattern = "CCCBCCDCCCCBCCDCCC"
    column_types = [_TYPE_BY_LETTER[letter] for letter in pattern]
    forbidden = [ForbiddenRect("PS", col=0, row=4, width=4, height=2)]
    return FPGADevice.from_columns(
        "zynq-like", column_types, height=6, forbidden=forbidden
    )


def synthetic_device(
    width: int,
    height: int,
    bram_every: int = 5,
    dsp_every: int = 9,
    forbidden_blocks: int = 0,
    seed: int | None = None,
    name: str | None = None,
) -> FPGADevice:
    """Generate a parameterized columnar device.

    Parameters
    ----------
    width, height:
        Grid extent in tiles.
    bram_every, dsp_every:
        A column whose index is a multiple of ``dsp_every`` becomes a DSP
        column; otherwise a multiple of ``bram_every`` becomes BRAM; remaining
        columns are CLB.  Column 0 is always CLB so devices never start with a
        scarce resource.
    forbidden_blocks:
        Number of randomly placed 2x2 forbidden rectangles (requires ``seed``).
    seed:
        RNG seed for forbidden-block placement.
    """
    if width <= 0 or height <= 0:
        raise ValueError("synthetic device needs positive width and height")
    column_types: List[TileType] = []
    for col in range(width):
        if col == 0:
            column_types.append(CLB)
        elif dsp_every > 0 and col % dsp_every == 0:
            column_types.append(DSP)
        elif bram_every > 0 and col % bram_every == 0:
            column_types.append(BRAM)
        else:
            column_types.append(CLB)

    forbidden: List[ForbiddenRect] = []
    if forbidden_blocks > 0:
        if seed is None:
            raise ValueError("forbidden_blocks > 0 requires a seed")
        rng = np.random.default_rng(seed)
        occupied: set[tuple[int, int]] = set()
        attempts = 0
        while len(forbidden) < forbidden_blocks and attempts < 100 * forbidden_blocks:
            attempts += 1
            col = int(rng.integers(0, max(1, width - 2)))
            row = int(rng.integers(0, max(1, height - 2)))
            cells = {(c, r) for c in (col, col + 1) for r in (row, row + 1)}
            if cells & occupied:
                continue
            occupied |= cells
            forbidden.append(
                ForbiddenRect(f"HARD{len(forbidden)}", col=col, row=row, width=2, height=2)
            )

    device_name = name or f"synthetic-{width}x{height}"
    return FPGADevice.from_columns(device_name, column_types, height, forbidden=forbidden)


def figure2_device() -> FPGADevice:
    """The small example device of Figure 2 (hard processor in the middle).

    A 10x6 grid with CLB/BRAM columns and a 2x2 hard-processor block that
    overlaps two CLB columns, reproducing the situation where the processor
    breaks column contiguity and becomes a forbidden area.
    """
    pattern = "CCBCCCCBCC"
    column_types = [_TYPE_BY_LETTER[letter] for letter in pattern]
    forbidden = [ForbiddenRect("PROC", col=4, row=2, width=2, height=2)]
    return FPGADevice.from_columns("figure2-example", column_types, height=6, forbidden=forbidden)


_TYPE_BY_LETTER = {"C": CLB, "B": BRAM, "D": DSP}
