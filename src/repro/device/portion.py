"""Portions and forbidden areas.

A *portion* is a fixed rectangular area of the FPGA containing tiles of the
same type.  After the model simplification of Section III.A the floorplanner
only deals with *columnar portions*: portions extending over the entire device
height.  Hard blocks that would break column contiguity are carried separately
as *forbidden areas* (set ``A`` in the paper), which — unlike in [10] — overlap
the portions instead of being part of the partition.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

from repro.device.tile import TileType


@dataclasses.dataclass(frozen=True)
class Portion:
    """A columnar portion: a run of adjacent columns sharing one tile type.

    Attributes
    ----------
    index:
        Position of the portion in the left-to-right ordering (Property .4).
    col_start, col_end:
        First and last column covered (0-based, inclusive).
    tile_type:
        The single tile type contained in the portion.
    height:
        Device height in tiles (portions span the full height by construction).
    """

    index: int
    col_start: int
    col_end: int
    tile_type: TileType
    height: int

    def __post_init__(self) -> None:
        if self.col_end < self.col_start:
            raise ValueError("portion column range is empty")
        if self.height <= 0:
            raise ValueError("portion height must be positive")

    @property
    def width(self) -> int:
        """Number of columns spanned."""
        return self.col_end - self.col_start + 1

    @property
    def num_tiles(self) -> int:
        """Tiles contained (width x full device height)."""
        return self.width * self.height

    def columns(self) -> range:
        """The columns covered by the portion."""
        return range(self.col_start, self.col_end + 1)

    def contains_column(self, col: int) -> bool:
        """Whether the given column belongs to this portion."""
        return self.col_start <= col <= self.col_end

    def __repr__(self) -> str:
        return (
            f"Portion(#{self.index}, cols {self.col_start}..{self.col_end}, "
            f"type {self.tile_type.name})"
        )


@dataclasses.dataclass(frozen=True)
class ForbiddenArea:
    """A forbidden area in the sense of set ``A`` of the paper.

    It is described by its column extent and the set of rows it lies on
    (parameters ``xa1``, ``xa2`` and ``ra[a,r]`` in the paper), and must not be
    crossed by reconfigurable regions or free-compatible areas.
    """

    name: str
    col_start: int
    col_end: int
    rows: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.col_end < self.col_start:
            raise ValueError("forbidden area column range is empty")
        if not self.rows:
            raise ValueError("forbidden area must lie on at least one row")

    @property
    def width(self) -> int:
        """Number of columns spanned."""
        return self.col_end - self.col_start + 1

    def lies_on_row(self, row: int) -> bool:
        """Parameter ``ra[a,r]`` of the paper."""
        return row in self.rows

    def cells(self) -> Iterator[Tuple[int, int]]:
        """All ``(col, row)`` cells covered by the forbidden area."""
        for col in range(self.col_start, self.col_end + 1):
            for row in self.rows:
                yield col, row

    def __repr__(self) -> str:
        return (
            f"ForbiddenArea({self.name!r}, cols {self.col_start}..{self.col_end}, "
            f"rows {sorted(self.rows)})"
        )
