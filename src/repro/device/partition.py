"""Columnar partitioning (Section III.B of the paper).

The revised partitioning procedure produces:

* the set ``P`` of *columnar portions* — rectangles of same-type tiles spanning
  the entire device height, ordered left to right (Property .4), with adjacent
  portions always differing in tile type (Property .3);
* the set ``A`` of *forbidden areas*, which overlap the portions (step 1 of the
  procedure replaces each forbidden tile by a same-column tile type so that the
  partition itself remains columnar).

The procedure intentionally follows the paper's six steps rather than the
obvious shortcut (group same-type column runs) so that the failure mode —
"if the portion cannot be extended completely to the bottom of the FPGA, then
the FPGA cannot be columnar partitioned" — is reproduced exactly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.device.grid import FPGADevice
from repro.device.portion import ForbiddenArea, Portion
from repro.device.tile import TileType


class PartitionError(ValueError):
    """Raised when a device cannot be columnar partitioned."""


@dataclasses.dataclass
class ColumnarPartition:
    """Result of :func:`columnar_partition`.

    Attributes
    ----------
    device:
        The partitioned device.
    portions:
        Columnar portions ordered left to right (Property .4).
    forbidden_areas:
        Forbidden areas (set ``A``), overlapping the portions.
    column_types:
        Effective tile type of every column after the forbidden-tile
        replacement of step 1.
    """

    device: FPGADevice
    portions: Tuple[Portion, ...]
    forbidden_areas: Tuple[ForbiddenArea, ...]
    column_types: Tuple[TileType, ...]

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Device width in tiles."""
        return self.device.width

    @property
    def height(self) -> int:
        """Device height in tiles."""
        return self.device.height

    @property
    def num_portions(self) -> int:
        """Number of columnar portions (``|P|``)."""
        return len(self.portions)

    @property
    def tile_types(self) -> Tuple[TileType, ...]:
        """Distinct tile types appearing in the partition, in portion order."""
        seen: Dict[TileType, None] = {}
        for portion in self.portions:
            seen.setdefault(portion.tile_type, None)
        return tuple(seen.keys())

    @property
    def num_types(self) -> int:
        """``nTypes`` of the paper."""
        return len(self.tile_types)

    def type_id(self, tile_type: TileType) -> int:
        """Dense id of a tile type (``tid`` values are 0-based here)."""
        return self.tile_types.index(tile_type)

    def portion_type_ids(self) -> Tuple[int, ...]:
        """``tid_p`` for every portion, in portion order."""
        return tuple(self.type_id(p.tile_type) for p in self.portions)

    # ------------------------------------------------------------------
    def portion_of_column(self, col: int) -> Portion:
        """The portion containing the given column."""
        for portion in self.portions:
            if portion.contains_column(col):
                return portion
        raise IndexError(f"column {col} outside device width {self.width}")

    def column_type(self, col: int) -> TileType:
        """Effective tile type of a column (after step-1 replacement)."""
        return self.column_types[col]

    def is_forbidden_cell(self, col: int, row: int) -> bool:
        """Whether a cell lies inside a forbidden area."""
        return self.device.is_forbidden(col, row)

    def forbidden_cells(self) -> List[Tuple[int, int]]:
        """All forbidden cells of the device."""
        return list(self.device.forbidden_cells())

    def frames_in_column(self, col: int) -> int:
        """Frames per tile in a column (every tile shares the column type)."""
        return self.column_type(col).frames

    # ------------------------------------------------------------------
    def check_properties(self) -> None:
        """Assert Properties .3 and .4 plus full/disjoint coverage.

        Used by tests and by :func:`repro.device.validation.validate_device`.
        """
        # Property .4: orderly numbered left to right, covering every column once.
        expected_col = 0
        for index, portion in enumerate(self.portions):
            if portion.index != index:
                raise AssertionError("portion indices are not consecutive")
            if portion.col_start != expected_col:
                raise AssertionError(
                    f"portion {index} starts at column {portion.col_start}, expected {expected_col}"
                )
            expected_col = portion.col_end + 1
        if expected_col != self.width:
            raise AssertionError("portions do not cover the full device width")
        # Property .3: adjacent portions have different tile types.
        for left, right in zip(self.portions, self.portions[1:]):
            if left.tile_type == right.tile_type:
                raise AssertionError(
                    f"adjacent portions {left.index} and {right.index} share tile type "
                    f"{left.tile_type.name}"
                )

    def __repr__(self) -> str:
        return (
            f"ColumnarPartition({self.device.name!r}, {self.num_portions} portions, "
            f"{len(self.forbidden_areas)} forbidden areas)"
        )


def columnar_partition(device: FPGADevice) -> ColumnarPartition:
    """Run the revised partitioning procedure of Section III.B.

    Raises
    ------
    PartitionError
        If a portion cannot be extended to the full device height, i.e. the
        device is not columnar (step 4 failure in the paper).
    """
    width, height = device.width, device.height

    # ------------------------------------------------------------------
    # Step 1: replace forbidden tiles by a same-column, non-forbidden tile type.
    # ------------------------------------------------------------------
    effective = np.empty((width, height), dtype=np.int16)
    for col in range(width):
        non_forbidden_types = {
            device.type_index_at(col, row)
            for row in range(height)
            if not device.is_forbidden(col, row)
        }
        for row in range(height):
            if device.is_forbidden(col, row):
                if not non_forbidden_types:
                    # A fully forbidden column keeps its underlying types; the
                    # paper does not cover this case, but keeping the raw type
                    # lets partitioning proceed and the forbidden-area
                    # constraints still exclude the column from any region.
                    effective[col, row] = device.type_index_at(col, row)
                elif len(non_forbidden_types) == 1:
                    effective[col, row] = next(iter(non_forbidden_types))
                else:
                    raise PartitionError(
                        f"column {col} mixes tile types outside forbidden areas; "
                        "cannot pick a replacement type (step 1)"
                    )
            else:
                effective[col, row] = device.type_index_at(col, row)

    # ------------------------------------------------------------------
    # Steps 2-5: scan top to bottom, left to right, growing portions.
    # ------------------------------------------------------------------
    assigned = np.full((width, height), -1, dtype=np.int32)
    portions: List[Portion] = []
    type_list = device.tile_type_list

    def first_free_tile() -> Tuple[int, int] | None:
        # "top to bottom, left to right": row index height-1 is the top row.
        for row in range(height - 1, -1, -1):
            for col in range(width):
                if assigned[col, row] < 0:
                    return col, row
        return None

    while True:
        seed = first_free_tile()
        if seed is None:
            break
        col0, row0 = seed
        tile_idx = int(effective[col0, row0])

        # Step 3: extend to the right while free tiles of the same type.
        col1 = col0
        while (
            col1 + 1 < width
            and assigned[col1 + 1, row0] < 0
            and int(effective[col1 + 1, row0]) == tile_idx
        ):
            col1 += 1

        # Step 4: extend to the bottom while the whole row below matches.
        row_bottom = row0
        while row_bottom - 1 >= 0:
            candidate = row_bottom - 1
            ok = all(
                assigned[col, candidate] < 0
                and int(effective[col, candidate]) == tile_idx
                for col in range(col0, col1 + 1)
            )
            if not ok:
                break
            row_bottom = candidate
        if row_bottom != 0 or row0 != height - 1:
            raise PartitionError(
                f"portion seeded at column {col0} (type {type_list[tile_idx].name}) "
                f"spans rows {row_bottom}..{row0}, not the full device height; "
                "the device cannot be columnar partitioned"
            )

        portion_index = len(portions)
        portions.append(
            Portion(
                index=portion_index,
                col_start=col0,
                col_end=col1,
                tile_type=type_list[tile_idx],
                height=height,
            )
        )
        assigned[col0 : col1 + 1, :] = portion_index

    # ------------------------------------------------------------------
    # Step 6: identify forbidden areas by position and size.
    # ------------------------------------------------------------------
    forbidden_areas = tuple(
        ForbiddenArea(
            name=rect.name,
            col_start=rect.col,
            col_end=rect.col_end,
            rows=tuple(range(rect.row, rect.row_end + 1)),
        )
        for rect in device.forbidden
    )

    column_types = tuple(
        type_list[int(effective[col, height - 1])] for col in range(width)
    )
    partition = ColumnarPartition(
        device=device,
        portions=tuple(portions),
        forbidden_areas=forbidden_areas,
        column_types=column_types,
    )
    partition.check_properties()
    return partition
