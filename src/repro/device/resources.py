"""Resource types and resource accounting.

The paper expresses region requirements directly in *tiles per type*
(Table I: CLB tiles, BRAM tiles, DSP tiles), so the canonical resource unit in
this reproduction is "one tile of type t".  :class:`ResourceVector` is a small
immutable mapping used both for requirements (``Region.requirements``) and for
capacities (device/area coverage).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class ResourceType(enum.Enum):
    """Heterogeneous resource classes found on the reconfigurable fabric."""

    CLB = "CLB"
    BRAM = "BRAM"
    DSP = "DSP"
    IO = "IO"
    PROC = "PROC"  # hard processor / non-reconfigurable macro

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def from_string(cls, name: str) -> "ResourceType":
        """Parse a resource type from its (case-insensitive) name."""
        try:
            return cls[name.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown resource type {name!r}") from exc


class ResourceVector:
    """An immutable multiset of resources, keyed by :class:`ResourceType`.

    Supports the small algebra needed by the floorplanner: addition,
    subtraction (clamped at zero on request), scaling, and the component-wise
    comparison ``covers``.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[ResourceType, int] | None = None, **kwargs: int) -> None:
        merged: Dict[ResourceType, int] = {}
        if counts:
            for key, value in counts.items():
                if not isinstance(key, ResourceType):
                    key = ResourceType.from_string(str(key))
                if value:
                    merged[key] = merged.get(key, 0) + int(value)
        for name, value in kwargs.items():
            key = ResourceType.from_string(name)
            if value:
                merged[key] = merged.get(key, 0) + int(value)
        for key, value in merged.items():
            if value < 0:
                raise ValueError(f"negative resource count for {key}: {value}")
        self._counts: Dict[ResourceType, int] = merged

    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "ResourceVector":
        """The empty resource vector."""
        return ResourceVector()

    @staticmethod
    def single(rtype: ResourceType, count: int = 1) -> "ResourceVector":
        """A vector with ``count`` units of a single resource type."""
        return ResourceVector({rtype: count})

    # ------------------------------------------------------------------
    def get(self, rtype: ResourceType) -> int:
        """Units of ``rtype`` (0 if absent)."""
        return self._counts.get(rtype, 0)

    def __getitem__(self, rtype: ResourceType) -> int:
        return self.get(rtype)

    def __iter__(self) -> Iterator[Tuple[ResourceType, int]]:
        return iter(sorted(self._counts.items(), key=lambda kv: kv[0].value))

    def types(self) -> Iterable[ResourceType]:
        """Resource types with a strictly positive count."""
        return [t for t, c in self if c > 0]

    @property
    def total(self) -> int:
        """Total number of resource units across all types."""
        return sum(self._counts.values())

    def is_zero(self) -> bool:
        """Whether all counts are zero."""
        return self.total == 0

    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        counts = dict(self._counts)
        for rtype, value in other._counts.items():
            counts[rtype] = counts.get(rtype, 0) + value
        return ResourceVector(counts)

    def subtract(self, other: "ResourceVector", clamp: bool = False) -> "ResourceVector":
        """Component-wise difference; with ``clamp`` negative entries become 0."""
        counts: Dict[ResourceType, int] = dict(self._counts)
        for rtype, value in other._counts.items():
            remaining = counts.get(rtype, 0) - value
            if remaining < 0 and not clamp:
                raise ValueError(
                    f"subtraction would make {rtype} negative ({remaining})"
                )
            counts[rtype] = max(0, remaining)
        return ResourceVector(counts)

    def __mul__(self, factor: int) -> "ResourceVector":
        if factor < 0:
            raise ValueError("cannot scale a ResourceVector by a negative factor")
        return ResourceVector({t: c * factor for t, c in self._counts.items()})

    __rmul__ = __mul__

    def covers(self, requirement: "ResourceVector") -> bool:
        """True if this vector has at least as many units of every type."""
        return all(self.get(t) >= c for t, c in requirement._counts.items())

    def deficit(self, requirement: "ResourceVector") -> "ResourceVector":
        """Resources missing to cover ``requirement`` (all-zero when covered)."""
        missing = {
            t: max(0, c - self.get(t)) for t, c in requirement._counts.items()
        }
        return ResourceVector(missing)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        keys = set(self._counts) | set(other._counts)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self) -> int:
        return hash(tuple(sorted((t.value, c) for t, c in self._counts.items() if c)))

    def as_dict(self) -> Dict[str, int]:
        """Plain-string dictionary representation (for reports/serialization)."""
        return {t.value: c for t, c in self if c > 0}

    def __repr__(self) -> str:
        inner = ", ".join(f"{t.value}={c}" for t, c in self if c > 0)
        return f"ResourceVector({inner})"
