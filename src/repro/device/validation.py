"""Structural validation of device descriptions.

These checks catch malformed device definitions early (before they reach the
MILP builder, where the failure mode would be an opaque infeasibility) and are
reused by the property-based tests.
"""

from __future__ import annotations

from typing import List

from repro.device.grid import FPGADevice
from repro.device.partition import ColumnarPartition, PartitionError, columnar_partition


class DeviceValidationError(ValueError):
    """Raised when a device description is structurally inconsistent."""


def validate_device(device: FPGADevice, require_columnar: bool = True) -> List[str]:
    """Validate a device and return a list of informational warnings.

    Parameters
    ----------
    device:
        The device to validate.
    require_columnar:
        When true (default), the device must admit a columnar partition; this
        is a hard requirement of the paper's model simplification.

    Raises
    ------
    DeviceValidationError
        On hard errors (overlapping forbidden rectangles, non-columnar device
        when ``require_columnar`` is set).
    """
    warnings: List[str] = []

    # forbidden rectangles must not overlap each other
    seen_cells: set[tuple[int, int]] = set()
    for rect in device.forbidden:
        for cell in rect.cells():
            if cell in seen_cells:
                raise DeviceValidationError(
                    f"forbidden rectangles overlap at cell {cell}"
                )
            seen_cells.add(cell)

    if device.num_usable_tiles == 0:
        raise DeviceValidationError("device has no usable tiles")

    usable_fraction = device.num_usable_tiles / device.num_tiles
    if usable_fraction < 0.5:
        warnings.append(
            f"more than half of the device ({1 - usable_fraction:.0%}) is forbidden"
        )

    if require_columnar:
        try:
            partition = columnar_partition(device)
        except PartitionError as exc:
            raise DeviceValidationError(str(exc)) from exc
        _validate_partition(partition, warnings)

    return warnings


def _validate_partition(partition: ColumnarPartition, warnings: List[str]) -> None:
    partition.check_properties()
    if partition.num_portions == partition.width:
        warnings.append(
            "every column is its own portion; consider a coarser tile typing"
        )
    if partition.num_types == 1:
        warnings.append("device is homogeneous; relocation constraints are trivial")
