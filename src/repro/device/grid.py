"""The FPGA tile grid.

:class:`FPGADevice` models the reconfigurable fabric as a ``width x height``
grid of tiles.  Columns are indexed ``0 .. width-1`` left to right and rows
``0 .. height-1`` bottom to top (all code in this repository uses 0-based
indices; the paper's 1-based formulas are translated accordingly).

A device also carries a set of *forbidden rectangles* — areas occupied by hard
blocks (the PowerPC of the Virtex-5 FX70T in the paper) that reconfigurable
regions and free-compatible areas must not cross.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.device.resources import ResourceVector
from repro.device.tile import TileType, TileTypeRegistry


@dataclasses.dataclass(frozen=True)
class ForbiddenRect:
    """A rectangular block of forbidden tiles.

    Attributes
    ----------
    name:
        Identifier used in rendering and reports (e.g. ``"PPC"``).
    col, row:
        Bottom-left corner (0-based, inclusive).
    width, height:
        Extent in tiles.
    """

    name: str
    col: int
    row: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"forbidden rect {self.name!r} must have positive extent")
        if self.col < 0 or self.row < 0:
            raise ValueError(f"forbidden rect {self.name!r} must have non-negative origin")

    @property
    def col_end(self) -> int:
        """Rightmost column covered (inclusive)."""
        return self.col + self.width - 1

    @property
    def row_end(self) -> int:
        """Topmost row covered (inclusive)."""
        return self.row + self.height - 1

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(col, row)`` pairs covered by the rectangle."""
        for col in range(self.col, self.col + self.width):
            for row in range(self.row, self.row + self.height):
                yield col, row

    def contains(self, col: int, row: int) -> bool:
        """Whether the rectangle covers the given cell."""
        return self.col <= col <= self.col_end and self.row <= row <= self.row_end


class FPGADevice:
    """A heterogeneous FPGA fabric described as a tile grid.

    Parameters
    ----------
    name:
        Device name (``"virtex5-fx70t-like"`` ...).
    tile_types:
        2D sequence indexed ``[col][row]`` of :class:`TileType` objects, or a
        per-column sequence when ``columnar=True`` is used via
        :meth:`from_columns`.
    forbidden:
        Rectangles of tiles that cannot be used by reconfigurable regions.
    registry:
        Tile-type registry; defaults to a registry built from the types that
        appear in the grid.
    """

    def __init__(
        self,
        name: str,
        tile_types: Sequence[Sequence[TileType]],
        forbidden: Iterable[ForbiddenRect] = (),
        registry: TileTypeRegistry | None = None,
    ) -> None:
        if not tile_types or not tile_types[0]:
            raise ValueError("device grid must be non-empty")
        self.name = name
        self.width = len(tile_types)
        self.height = len(tile_types[0])
        for col, column in enumerate(tile_types):
            if len(column) != self.height:
                raise ValueError(
                    f"column {col} has {len(column)} rows, expected {self.height}"
                )

        # intern tile types into a compact index grid
        self._type_list: List[TileType] = []
        type_index: Dict[TileType, int] = {}
        grid = np.empty((self.width, self.height), dtype=np.int16)
        for col in range(self.width):
            for row in range(self.height):
                tile_type = tile_types[col][row]
                idx = type_index.get(tile_type)
                if idx is None:
                    idx = len(self._type_list)
                    type_index[tile_type] = idx
                    self._type_list.append(tile_type)
                grid[col, row] = idx
        self._grid = grid

        self.forbidden: Tuple[ForbiddenRect, ...] = tuple(forbidden)
        self._forbidden_mask = np.zeros((self.width, self.height), dtype=bool)
        for rect in self.forbidden:
            if rect.col_end >= self.width or rect.row_end >= self.height:
                raise ValueError(
                    f"forbidden rect {rect.name!r} exceeds device bounds "
                    f"({self.width}x{self.height})"
                )
            self._forbidden_mask[rect.col : rect.col + rect.width, rect.row : rect.row + rect.height] = True

        if registry is None:
            registry = TileTypeRegistry(self._type_list)
        else:
            for tile_type in self._type_list:
                registry.register(tile_type)
        self.registry = registry

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        name: str,
        column_types: Sequence[TileType],
        height: int,
        forbidden: Iterable[ForbiddenRect] = (),
    ) -> "FPGADevice":
        """Build a columnar device where every tile in a column has one type.

        This matches the structure of modern Xilinx devices (Virtex-5/7
        columns of CLB/BRAM/DSP) and is the layout assumed by the paper's
        columnar partitioning simplification.
        """
        if height <= 0:
            raise ValueError("height must be positive")
        grid = [[ctype] * height for ctype in column_types]
        return cls(name, grid, forbidden=forbidden)

    # ------------------------------------------------------------------
    # cell queries
    # ------------------------------------------------------------------
    def tile_type_at(self, col: int, row: int) -> TileType:
        """Tile type at ``(col, row)``."""
        self._check_cell(col, row)
        return self._type_list[int(self._grid[col, row])]

    def type_index_at(self, col: int, row: int) -> int:
        """Dense tile-type index at ``(col, row)`` (stable per device)."""
        self._check_cell(col, row)
        return int(self._grid[col, row])

    @property
    def tile_type_list(self) -> Sequence[TileType]:
        """Tile types present in the device, indexed by their dense index."""
        return tuple(self._type_list)

    def is_forbidden(self, col: int, row: int) -> bool:
        """Whether the cell belongs to a forbidden rectangle."""
        self._check_cell(col, row)
        return bool(self._forbidden_mask[col, row])

    # ------------------------------------------------------------------
    # rectangle aggregates (vectorized hot paths for placers/annealers)
    # ------------------------------------------------------------------
    def tile_type_histogram(self, col: int, row: int, width: int, height: int) -> List[int]:
        """Tiles of each dense type index inside a rectangle (one numpy pass).

        The rectangle must lie within the device.  Index ``i`` of the result
        counts tiles whose type is ``tile_type_list[i]`` — the building block
        of :func:`repro.baselines.packing.rect_resources` and the annealer's
        incremental cost updates, replacing the per-cell ``tile_type_at``
        loop.
        """
        self._check_cell(col, row)
        self._check_cell(col + width - 1, row + height - 1)
        window = self._grid[col : col + width, row : row + height]
        return np.bincount(window.ravel(), minlength=len(self._type_list)).tolist()

    def forbidden_cell_count(self, col: int, row: int, width: int, height: int) -> int:
        """Forbidden cells inside a rectangle (one numpy pass)."""
        self._check_cell(col, row)
        self._check_cell(col + width - 1, row + height - 1)
        return int(
            self._forbidden_mask[col : col + width, row : row + height].sum()
        )

    def type_index_grid(self) -> np.ndarray:
        """Dense tile-type indices as a ``(width, height)`` array (copy).

        Feeds vectorized geometry passes (prefix-sum placement enumeration in
        :mod:`repro.floorplan.milp_builder`) that would otherwise loop over
        :meth:`type_index_at` cell by cell.
        """
        return self._grid.copy()

    def forbidden_mask(self) -> np.ndarray:
        """Boolean forbidden-cell mask as a ``(width, height)`` array (copy)."""
        return self._forbidden_mask.copy()

    def forbidden_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate all forbidden ``(col, row)`` cells."""
        cols, rows = np.nonzero(self._forbidden_mask)
        for col, row in zip(cols.tolist(), rows.tolist()):
            yield col, row

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(col, row)`` cells of the grid."""
        for col in range(self.width):
            for row in range(self.height):
                yield col, row

    def column_is_uniform(self, col: int) -> bool:
        """True if every (non-forbidden) tile in the column shares one type."""
        types = {
            int(self._grid[col, row])
            for row in range(self.height)
            if not self._forbidden_mask[col, row]
        }
        return len(types) <= 1

    def column_type(self, col: int) -> TileType:
        """Dominant tile type of a column, ignoring forbidden cells.

        Raises ``ValueError`` if the column mixes types outside forbidden
        areas (such a device cannot be columnar partitioned).
        """
        types = {
            int(self._grid[col, row])
            for row in range(self.height)
            if not self._forbidden_mask[col, row]
        }
        if not types:
            # fully forbidden column: fall back to the raw grid content
            types = {int(self._grid[col, row]) for row in range(self.height)}
        if len(types) != 1:
            raise ValueError(f"column {col} mixes tile types; device is not columnar")
        return self._type_list[types.pop()]

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Total number of tiles, including forbidden ones."""
        return self.width * self.height

    @property
    def num_usable_tiles(self) -> int:
        """Tiles available to reconfigurable regions (not forbidden)."""
        return int(self.num_tiles - self._forbidden_mask.sum())

    def total_resources(self, include_forbidden: bool = False) -> ResourceVector:
        """Aggregate resources of the fabric."""
        total = ResourceVector.zero()
        for col, row in self.cells():
            if not include_forbidden and self._forbidden_mask[col, row]:
                continue
            total = total + self.tile_type_at(col, row).resources
        return total

    def total_frames(self, include_forbidden: bool = False) -> int:
        """Aggregate configuration frames of the fabric."""
        total = 0
        for col, row in self.cells():
            if not include_forbidden and self._forbidden_mask[col, row]:
                continue
            total += self.tile_type_at(col, row).frames
        return total

    def tile_count_by_type(self, include_forbidden: bool = False) -> Dict[TileType, int]:
        """Number of tiles of each type."""
        counts: Dict[TileType, int] = {}
        for col, row in self.cells():
            if not include_forbidden and self._forbidden_mask[col, row]:
                continue
            tile_type = self.tile_type_at(col, row)
            counts[tile_type] = counts.get(tile_type, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def _check_cell(self, col: int, row: int) -> None:
        if not (0 <= col < self.width and 0 <= row < self.height):
            raise IndexError(
                f"cell ({col}, {row}) outside device {self.width}x{self.height}"
            )

    def __repr__(self) -> str:
        return (
            f"FPGADevice({self.name!r}, {self.width}x{self.height}, "
            f"{len(self._type_list)} tile types, {len(self.forbidden)} forbidden rects)"
        )
