"""Tile types.

A *tile* is the minimal area considered for reconfiguration (the basic block
of the floorplanner in [10]).  Definition .1 of the paper strengthens the
notion of tile type: two tiles are of the same type if they have the same
number and types of resources **and** the same configuration data layout —
i.e. the same number of configuration frames.  :class:`TileType` captures
exactly that pair (resource content, frame count), so equality of
``TileType`` objects is the paper's tile-type equality.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable

from repro.device.resources import ResourceType, ResourceVector


@dataclasses.dataclass(frozen=True)
class TileType:
    """A tile type in the sense of Definition .1.

    Attributes
    ----------
    name:
        Short identifier (``"CLB"``, ``"BRAM"``, ...); used in rendering and
        as the display color key in the figures.
    resources:
        Resources contained in one tile of this type.
    frames:
        Number of configuration frames needed to (re)configure one tile of
        this type.  The Virtex-5 values used in Section VI are 36 (CLB),
        30 (BRAM) and 28 (DSP) — these are what make the frame totals of
        Table I come out exactly.
    """

    name: str
    resources: ResourceVector
    frames: int

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise ValueError(f"tile type {self.name!r} must have a positive frame count")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# Canonical Virtex-5-style tile types (frames per tile from Section VI).
CLB = TileType("CLB", ResourceVector({ResourceType.CLB: 1}), frames=36)
BRAM = TileType("BRAM", ResourceVector({ResourceType.BRAM: 1}), frames=30)
DSP = TileType("DSP", ResourceVector({ResourceType.DSP: 1}), frames=28)


class TileTypeRegistry:
    """A small registry mapping tile-type names to :class:`TileType` objects.

    Devices built by :mod:`repro.device.catalog` share the canonical CLB/BRAM/
    DSP types; synthetic devices may register additional types (e.g. ``"URAM"``)
    through this registry.
    """

    def __init__(self, types: Iterable[TileType] | None = None) -> None:
        self._types: Dict[str, TileType] = {}
        for tile_type in types or (CLB, BRAM, DSP):
            self.register(tile_type)

    def register(self, tile_type: TileType) -> TileType:
        """Add a tile type; re-registering an identical type is a no-op."""
        existing = self._types.get(tile_type.name)
        if existing is not None and existing != tile_type:
            raise ValueError(
                f"tile type {tile_type.name!r} already registered with different content"
            )
        self._types[tile_type.name] = tile_type
        return tile_type

    def get(self, name: str) -> TileType:
        """Look a type up by name."""
        try:
            return self._types[name]
        except KeyError as exc:
            raise KeyError(f"unknown tile type {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self):
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> Iterable[str]:
        """Registered type names in insertion order."""
        return list(self._types.keys())
