"""FPGA device model substrate.

The floorplanner of the paper works on an abstract description of the FPGA
fabric: a grid of *tiles* (the minimal unit of reconfiguration), each tile
having a *type* that bundles the resources it contains and the number of
configuration frames needed to program it (Definition .1 of the paper refines
the tile-type notion so that two tiles of the same type are interchangeable at
the bitstream level).

This package provides:

* :class:`~repro.device.resources.ResourceType` /
  :class:`~repro.device.resources.ResourceVector` — resource bookkeeping;
* :class:`~repro.device.tile.TileType` — tile types with frame counts;
* :class:`~repro.device.grid.FPGADevice` — the W x H tile grid with forbidden
  cells (hard processors, I/O banks);
* :func:`~repro.device.partition.columnar_partition` — the revised
  partitioning procedure of Section III.B;
* :mod:`~repro.device.catalog` — ready-made devices (a Virtex-5 FX70T-like
  grid used by the SDR case study, a Virtex-7-like grid, synthetic grids).
"""

from repro.device.resources import ResourceType, ResourceVector
from repro.device.tile import TileType, TileTypeRegistry, CLB, BRAM, DSP
from repro.device.grid import FPGADevice
from repro.device.portion import Portion, ForbiddenArea
from repro.device.partition import ColumnarPartition, PartitionError, columnar_partition
from repro.device.catalog import (
    simple_two_type_device,
    synthetic_device,
    virtex5_fx70t_like,
    virtex7_like,
    zynq_like,
)
from repro.device.validation import validate_device

__all__ = [
    "ResourceType",
    "ResourceVector",
    "TileType",
    "TileTypeRegistry",
    "CLB",
    "BRAM",
    "DSP",
    "FPGADevice",
    "Portion",
    "ForbiddenArea",
    "ColumnarPartition",
    "PartitionError",
    "columnar_partition",
    "simple_two_type_device",
    "synthetic_device",
    "virtex5_fx70t_like",
    "virtex7_like",
    "zynq_like",
    "validate_device",
]
