"""Occupancy-grid MILP formulation of the floorplanning problem ("O" mode).

This module re-derives the FCCM'14 model ([10]) that the relocation extension
attaches to.  The exact matrix of the original paper is not public; what the
2015 extension relies on is the *interface* of the model — the variables
``k[n,p]`` (area n intersects columnar portion p), ``l[n,p,r]`` (tiles of
portion p covered by area n on row r) and the height ``h[n]`` — plus exact
non-overlap constraints.  The occupancy-grid formulation below provides those
variables with exact (not big-M-relaxed) semantics:

* column-coverage binaries ``u[n,j]`` and row-coverage binaries ``a[n,r]``
  with single-run contiguity enforced through start binaries;
* ``k[n,p]`` derived exactly from the ``u`` variables of the portion's columns;
* ``l[n,p,r]`` as the exact linearization of ``a[n,r] * sum_{j in p} u[n,j]``;
* pairwise non-overlap through the classic 4-way relative-position
  disjunction, which HO mode fixes from a sequence pair;
* forbidden cells excluded by ``u[n,j] + a[n,r] <= 1``;
* resource coverage ``sum_p res_t(p) * sum_r l[n,p,r] >= c[n,t]``.

Free-compatible areas (set ``FC`` of the paper) are modelled as additional
areas with no resource requirements, exactly as Section IV prescribes
(``FC ⊂ N``); the compatibility constraints themselves live in
:mod:`repro.relocation.constraints`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.device.grid import FPGADevice
from repro.device.partition import ColumnarPartition
from repro.device.resources import ResourceVector
from repro.floorplan.geometry import Rect
from repro.floorplan.metrics import ObjectiveWeights, normalization_constants
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem
from repro.floorplan import sequence_pair as sp
from repro.milp import LinExpr, Model, Variable, VarType, quicksum
from repro.milp.solution import MILPSolution

#: Ceiling on elementwise work of the placement enumerator; above it pruning
#: is skipped for the area (masks stay all-true) rather than risking a mask
#: pass slower than the model build it is meant to accelerate.
PRUNE_WORK_LIMIT = 50_000_000


@dataclasses.dataclass(frozen=True)
class PlacementMasks:
    """Which columns/rows of the device an area can possibly occupy.

    Produced by :func:`feasible_placement_masks`: an entry is ``True`` when at
    least one *feasible placement candidate* — a rectangle satisfying the
    area's hard constraints (resource coverage, forbidden-cell avoidance,
    extent caps) — covers that column/row (``col_cover``/``row_cover``) or has
    its bottom-left corner there (``col_start``/``row_start``).  Variables at
    ``False`` positions are zero in every feasible solution of the full MILP,
    so the builder creates them fixed and skips their constraints.
    """

    col_cover: np.ndarray
    col_start: np.ndarray
    row_cover: np.ndarray
    row_start: np.ndarray
    candidates: int

    @property
    def prunes_anything(self) -> bool:
        """Whether any position was ruled out."""
        return not (
            bool(self.col_cover.all())
            and bool(self.col_start.all())
            and bool(self.row_cover.all())
            and bool(self.row_start.all())
        )

    @staticmethod
    def all_true(width: int, height: int) -> "PlacementMasks":
        """Masks that prune nothing (pruning disabled or skipped)."""
        return PlacementMasks(
            col_cover=np.ones(width, dtype=bool),
            col_start=np.ones(width, dtype=bool),
            row_cover=np.ones(height, dtype=bool),
            row_start=np.ones(height, dtype=bool),
            candidates=-1,
        )


def _prefix2d(values: np.ndarray) -> np.ndarray:
    """Zero-padded 2D prefix sums (summed-area table)."""
    padded = np.zeros((values.shape[0] + 1, values.shape[1] + 1))
    padded[1:, 1:] = values.cumsum(axis=0).cumsum(axis=1)
    return padded


def _window_sums(strip: np.ndarray, h: int) -> np.ndarray:
    """Sums of every ``h``-row window from a per-column row-cumsum strip."""
    top = strip[:, h - 1 :]
    out = top.copy()
    if h < strip.shape[1]:
        out[:, 1:] -= strip[:, : strip.shape[1] - h]
    return out


class _PruneTables:
    """Device-invariant summed-area tables shared across the areas of a build.

    ``build_floorplan_milp`` constructs one instance per build so the
    forbidden-cell prefix, the type-index grid and the per-resource-type
    prefixes are each computed once instead of once per area.
    """

    def __init__(self, device: FPGADevice) -> None:
        self.device = device
        self.forbidden_prefix = _prefix2d(device.forbidden_mask().astype(np.float64))
        self._type_grid: "np.ndarray | None" = None
        self._rtype_prefixes: Dict[object, Tuple[np.ndarray, float]] = {}
        self._forbidden_strips: Dict[int, np.ndarray] = {}
        self._rtype_strips: Dict[Tuple[object, int], np.ndarray] = {}

    def forbidden_strip(self, w: int) -> np.ndarray:
        """Row-cumulative forbidden-cell sums over every ``w``-column window."""
        strip = self._forbidden_strips.get(w)
        if strip is None:
            strip = self.forbidden_prefix[w:, 1:] - self.forbidden_prefix[:-w, 1:]
            self._forbidden_strips[w] = strip
        return strip

    def rtype_prefix(self, rtype) -> Tuple[np.ndarray, float]:
        """Prefix table and max per-cell density for one resource type."""
        cached = self._rtype_prefixes.get(rtype)
        if cached is None:
            if self._type_grid is None:
                self._type_grid = self.device.type_index_grid()
            per_type = np.array(
                [tt.resources.get(rtype) for tt in self.device.tile_type_list],
                dtype=np.float64,
            )
            cached = (_prefix2d(per_type[self._type_grid]), float(per_type.max()))
            self._rtype_prefixes[rtype] = cached
        return cached

    def rtype_strip(self, rtype, w: int) -> np.ndarray:
        """Row-cumulative resource sums over every ``w``-column window.

        Depends only on (resource type, width), so areas sharing a scarce
        type reuse the same strip instead of rebuilding it per area.
        """
        strip = self._rtype_strips.get((rtype, w))
        if strip is None:
            prefix, _ = self.rtype_prefix(rtype)
            strip = prefix[w:, 1:] - prefix[:-w, 1:]
            self._rtype_strips[(rtype, w)] = strip
        return strip


def feasible_placement_masks(
    device: FPGADevice,
    area: AreaSpec,
    work_limit: int = PRUNE_WORK_LIMIT,
    tables: "_PruneTables | None" = None,
) -> PlacementMasks:
    """Enumerate feasible placement candidates of ``area`` on ``device``.

    This is the vectorized analogue of the paper's explicit placement
    generation: every candidate rectangle ``(x, y, w, h)`` (with ``w``/``h``
    capped by the area's extent limits) is checked in one numpy pass per
    shape, using summed-area tables over the tile-type grid — the same
    aggregation :meth:`FPGADevice.tile_type_histogram` performs for a single
    rectangle.  A candidate survives when it

    * contains no forbidden cell (hard for every area, soft or not), and
    * supplies the area's resource requirements by itself.

    Both checks are *necessary* conditions enforced exactly by the MILP, so
    discarding positions no candidate touches never changes the feasible set.
    When the total work would exceed ``work_limit`` elementwise operations the
    enumeration is skipped and all-true masks are returned.
    """
    width, height = device.width, device.height
    wmax = min(width, area.max_width or width)
    hmax = min(height, area.max_height or height)

    if wmax * hmax * width * height > work_limit:
        return PlacementMasks.all_true(width, height)

    # Even on uncapped areas the enumeration pays for itself: the handful of
    # start positions it rules out near device edges tightens the exact model
    # enough to matter in the solve, which dwarfs the milliseconds spent here.
    if tables is None:
        tables = _PruneTables(device)

    requirements: List[Tuple[object, float]] = []
    min_cells = 0.0
    if not area.is_free_area:
        for rtype, required in area.requirements:
            if required <= 0:
                continue
            _, density = tables.rtype_prefix(rtype)
            requirements.append((rtype, float(required)))
            # a rect of A cells supplies at most A * max_density of the type,
            # giving a lower bound on the candidate area worth enumerating
            if density > 0:
                min_cells = max(min_cells, float(required) / density)

    col_cover_diff = np.zeros(width + 1, dtype=np.int64)
    row_cover_diff = np.zeros(height + 1, dtype=np.int64)
    col_start = np.zeros(width, dtype=bool)
    row_start = np.zeros(height, dtype=bool)
    candidates = 0

    for w in range(1, wmax + 1):
        # collapse the column dimension once per width: a strip[x, y] is the
        # row-cumulative sum over columns x .. x+w-1, so every height then
        # costs one O(nx*ny) pass instead of a 2D prefix lookup; strips are
        # device-invariant per (grid, width) and cached across areas
        strips = [tables.forbidden_strip(w)] + [
            tables.rtype_strip(rtype, w) for rtype, _ in requirements
        ]
        thresholds = [0.0] + [required for _, required in requirements]
        min_h = max(1, int(np.ceil(min_cells / w)))
        for h in range(min_h, hmax + 1):
            ok = _window_sums(strips[0], h) == 0
            for strip, required in zip(strips[1:], thresholds[1:]):
                if not ok.any():
                    break
                ok &= _window_sums(strip, h) >= required
            if not ok.any():
                continue
            candidates += int(ok.sum())
            origin_cols = np.flatnonzero(ok.any(axis=1))
            origin_rows = np.flatnonzero(ok.any(axis=0))
            col_start[origin_cols] = True
            row_start[origin_rows] = True
            np.add.at(col_cover_diff, origin_cols, 1)
            np.add.at(col_cover_diff, origin_cols + w, -1)
            np.add.at(row_cover_diff, origin_rows, 1)
            np.add.at(row_cover_diff, origin_rows + h, -1)

    return PlacementMasks(
        col_cover=np.cumsum(col_cover_diff[:-1]) > 0,
        col_start=col_start,
        row_cover=np.cumsum(row_cover_diff[:-1]) > 0,
        row_start=row_start,
        candidates=candidates,
    )


@dataclasses.dataclass(frozen=True)
class AreaSpec:
    """One area handled by the MILP: a reconfigurable region or an FC area.

    Attributes
    ----------
    name:
        Unique area name.
    requirements:
        Tiles required per resource type (zero for free-compatible areas,
        whose footprint is fixed by the compatibility constraints instead).
    compatible_with:
        For free-compatible areas, the region whose footprint must be matched
        (parameter ``s[c,n]`` of the paper collapses to this single reference
        because the SDR case study — and the common case — ties each FC area
        to exactly one region).
    soft:
        Relocation-as-a-metric area: its constraints may be violated at a
        price (Section V); a violation binary ``v[c]`` is created.
    weight:
        ``cw[c]`` — weight of the area in the relocation cost (eq. 13).
    max_width, max_height:
        Optional extent caps.
    """

    name: str
    requirements: ResourceVector
    compatible_with: Optional[str] = None
    soft: bool = False
    weight: float = 1.0
    max_width: Optional[int] = None
    max_height: Optional[int] = None

    @property
    def is_free_area(self) -> bool:
        """True for free-compatible areas."""
        return self.compatible_with is not None


@dataclasses.dataclass
class FloorplanMILP:
    """The built model plus handles to every variable family.

    The relocation extension (:mod:`repro.relocation.constraints`) and the
    solver facade both work through this object.
    """

    problem: FloorplanProblem
    partition: ColumnarPartition
    areas: Tuple[AreaSpec, ...]
    model: Model
    # variable families, keyed by area name
    col_cover: Dict[str, List[Variable]]
    col_start: Dict[str, List[Variable]]
    row_cover: Dict[str, List[Variable]]
    row_start: Dict[str, List[Variable]]
    k: Dict[str, List[Variable]]
    l: Dict[str, List[List[Variable]]]
    violation: Dict[str, Variable]
    rel_dirs: Dict[Tuple[str, str], Dict[str, Variable]]
    # derived affine expressions, keyed by area name
    x_expr: Dict[str, LinExpr]
    y_expr: Dict[str, LinExpr]
    w_expr: Dict[str, LinExpr]
    h_expr: Dict[str, LinExpr]
    tiles_in_portion: Dict[str, List[LinExpr]]
    frames_expr: Dict[str, LinExpr]
    # cost expressions
    wasted_frames_expr: LinExpr
    wirelength_expr: LinExpr
    perimeter_expr: LinExpr
    norms: Dict[str, float]
    #: per-area pruning statistics (empty when pruning was disabled)
    prune_stats: Dict[str, Dict[str, int]] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    def area_by_name(self, name: str) -> AreaSpec:
        """Look an area spec up by name."""
        for area in self.areas:
            if area.name == name:
                return area
        raise KeyError(f"unknown area {name!r}")

    def free_area_specs(self) -> List[AreaSpec]:
        """The free-compatible areas of the model."""
        return [area for area in self.areas if area.is_free_area]

    def relocation_cost_expr(self) -> LinExpr:
        """``RLcost`` of eq. 13: weighted sum of violation binaries."""
        return quicksum(
            area.weight * self.violation[area.name]
            for area in self.areas
            if area.soft and area.name in self.violation
        )

    def relocation_cost_max(self) -> float:
        """``RLmax`` of eq. 15."""
        total = sum(area.weight for area in self.areas if area.soft)
        return max(total, 1.0)

    # ------------------------------------------------------------------
    def set_objective(self, weights: ObjectiveWeights | None = None) -> None:
        """Install the normalized weighted objective of eq. 14."""
        weights = weights or ObjectiveWeights.paper_default()
        objective = (
            weights.wirelength * self.wirelength_expr * (1.0 / self.norms["wirelength"])
            + weights.perimeter * self.perimeter_expr * (1.0 / self.norms["perimeter"])
            + weights.wasted_frames
            * self.wasted_frames_expr
            * (1.0 / self.norms["wasted_frames"])
        )
        if weights.relocation > 0:
            objective = objective + weights.relocation * self.relocation_cost_expr() * (
                1.0 / self.relocation_cost_max()
            )
        self.model.minimize(objective)

    # ------------------------------------------------------------------
    def extract(self, solution: MILPSolution) -> Floorplan:
        """Turn an MILP solution into a :class:`Floorplan`."""
        floorplan = Floorplan(
            problem=self.problem,
            objective=solution.objective,
            solve_time=solution.solve_time,
            solver_status=solution.status.value,
            metadata={
                "backend": solution.backend,
                "model_stats": str(self.model.stats()),
                "node_count": solution.node_count,
                "bound": solution.bound,
            },
        )
        if not solution.status.has_solution:
            return floorplan
        for area in self.areas:
            satisfied = True
            if area.soft and area.name in self.violation:
                satisfied = solution.value(self.violation[area.name]) < 0.5
            cols = [
                j
                for j, var in enumerate(self.col_cover[area.name])
                if solution.value(var) > 0.5
            ]
            rows = [
                r
                for r, var in enumerate(self.row_cover[area.name])
                if solution.value(var) > 0.5
            ]
            if not cols or not rows:
                if area.is_free_area:
                    satisfied = False
                    rect = Rect(0, 0, 1, 1)
                else:
                    # a placed region always covers at least one tile; this
                    # branch only triggers on numerically degenerate solutions
                    rect = Rect(0, 0, 1, 1)
            else:
                rect = Rect(min(cols), min(rows), len(cols), len(rows))
            placement = RegionPlacement(
                name=area.name,
                rect=rect,
                compatible_with=area.compatible_with,
                satisfied=satisfied,
            )
            floorplan.add_placement(placement)
        return floorplan


def build_floorplan_milp(
    problem: FloorplanProblem,
    extra_areas: Sequence[AreaSpec] = (),
    fixed_relations: Mapping[Tuple[str, str], str] | None = None,
    model_name: str | None = None,
    prune: bool = True,
) -> FloorplanMILP:
    """Build the base MILP for a problem plus optional free-compatible areas.

    Parameters
    ----------
    problem:
        The floorplanning instance (device + regions + connectivity).
    extra_areas:
        Additional areas, typically the free-compatible areas requested by a
        :class:`~repro.relocation.spec.RelocationSpec`.
    fixed_relations:
        HO mode: mapping ``(a, b) -> relation`` (one of ``"left"``, ``"right"``,
        ``"below"``, ``"above"``) fixing the relative position of area ``a``
        with respect to ``b``; pairs present here skip the disjunction
        binaries entirely.
    model_name:
        Name for the underlying :class:`~repro.milp.model.Model`.
    prune:
        Run :func:`feasible_placement_masks` per area and emit fixed-zero
        variables (and no constraints) for positions no feasible placement
        candidate touches.  Exact — the feasible set is unchanged — but the
        model shrinks before it is built, the way the paper's explicit
        placement-generation step intends.
    """
    partition = problem.partition
    width, height = partition.width, partition.height
    portions = partition.portions
    fixed_relations = dict(fixed_relations or {})

    areas: List[AreaSpec] = [
        AreaSpec(
            name=region.name,
            requirements=region.requirements,
            max_width=region.max_width,
            max_height=region.max_height,
        )
        for region in problem.regions
    ]
    areas.extend(extra_areas)
    names = [area.name for area in areas]
    if len(set(names)) != len(names):
        raise ValueError("area names must be unique (regions + free-compatible areas)")

    model = Model(model_name or f"floorplan[{problem.name}]")

    col_cover: Dict[str, List[Variable]] = {}
    col_start: Dict[str, List[Variable]] = {}
    row_cover: Dict[str, List[Variable]] = {}
    row_start: Dict[str, List[Variable]] = {}
    k_vars: Dict[str, List[Variable]] = {}
    l_vars: Dict[str, List[List[Variable]]] = {}
    violation: Dict[str, Variable] = {}
    x_expr: Dict[str, LinExpr] = {}
    y_expr: Dict[str, LinExpr] = {}
    w_expr: Dict[str, LinExpr] = {}
    h_expr: Dict[str, LinExpr] = {}
    tiles_in_portion: Dict[str, List[LinExpr]] = {}
    frames_expr: Dict[str, LinExpr] = {}
    prune_stats: Dict[str, Dict[str, int]] = {}

    def _fixed_binary(var_name: str) -> Variable:
        return model.add_var(var_name, VarType.BINARY, ub=0.0)

    prune_tables = _PruneTables(partition.device) if prune else None

    # ------------------------------------------------------------------
    # per-area geometry variables
    # ------------------------------------------------------------------
    for area in areas:
        name = area.name
        key = _sanitize(name)
        if prune:
            masks = feasible_placement_masks(
                partition.device, area, tables=prune_tables
            )
        else:
            masks = PlacementMasks.all_true(width, height)

        col_cover[name] = [
            model.add_binary(f"u[{key},{j}]")
            if masks.col_cover[j]
            else _fixed_binary(f"u[{key},{j}]")
            for j in range(width)
        ]
        col_start[name] = [
            model.add_binary(f"us[{key},{j}]")
            if masks.col_start[j]
            else _fixed_binary(f"us[{key},{j}]")
            for j in range(width)
        ]
        row_cover[name] = [
            model.add_binary(f"a[{key},{r}]")
            if masks.row_cover[r]
            else _fixed_binary(f"a[{key},{r}]")
            for r in range(height)
        ]
        row_start[name] = [
            model.add_binary(f"as[{key},{r}]")
            if masks.row_start[r]
            else _fixed_binary(f"as[{key},{r}]")
            for r in range(height)
        ]

        _add_contiguity(
            model, col_cover[name], col_start[name], f"col[{key}]",
            masks.col_cover, masks.col_start,
        )
        _add_contiguity(
            model, row_cover[name], row_start[name], f"row[{key}]",
            masks.row_cover, masks.row_start,
        )

        portion_alive = [
            bool(masks.col_cover[list(portion.columns())].any())
            for portion in portions
        ]
        if prune:
            area_stats = {
                "cols_pruned": int((~masks.col_cover).sum()),
                "rows_pruned": int((~masks.row_cover).sum()),
                "portions_pruned": int(sum(1 for alive in portion_alive if not alive)),
            }
            if masks.candidates >= 0:
                area_stats["candidates"] = masks.candidates
            else:
                # enumeration skipped by the work limit: no candidate count
                area_stats["enumeration_skipped"] = 1
            prune_stats[name] = area_stats

        # derived expressions over the live variables only — fixed-zero
        # variables contribute nothing in any feasible solution, so dropping
        # them keeps the expressions exact while shrinking every constraint
        # they feed (extent caps, non-overlap, wirelength, objective)
        w_expr[name] = quicksum(
            var for var, ok in zip(col_cover[name], masks.col_cover) if ok
        )
        h_expr[name] = quicksum(
            var for var, ok in zip(row_cover[name], masks.row_cover) if ok
        )
        x_expr[name] = LinExpr(
            {
                var: float(j)
                for j, var in enumerate(col_start[name])
                if masks.col_start[j]
            }
        )
        y_expr[name] = LinExpr(
            {
                var: float(r)
                for r, var in enumerate(row_start[name])
                if masks.row_start[r]
            }
        )

        if area.max_width is not None:
            model.add(w_expr[name] <= area.max_width, name=f"maxw[{key}]")
        if area.max_height is not None:
            model.add(h_expr[name] <= area.max_height, name=f"maxh[{key}]")

        # k[n,p]: exact intersection indicator with each columnar portion.
        # A portion no feasible placement candidate reaches gets a fixed-zero
        # indicator and no linking constraints.
        k_vars[name] = []
        for portion in portions:
            if not portion_alive[portion.index]:
                k_vars[name].append(_fixed_binary(f"k[{key},{portion.index}]"))
                continue
            k = model.add_binary(f"k[{key},{portion.index}]")
            live_cols = [j for j in portion.columns() if masks.col_cover[j]]
            for j in live_cols:
                model.add_ge_terms(
                    {k: 1.0, col_cover[name][j]: -1.0},
                    0.0,
                    name=f"kge[{key},{portion.index},{j}]",
                )
            kle_terms = {col_cover[name][j]: -1.0 for j in live_cols}
            kle_terms[k] = 1.0
            model.add_le_terms(kle_terms, 0.0, name=f"kle[{key},{portion.index}]")
            k_vars[name].append(k)

        # l[n,p,r]: exact tiles of portion p covered on row r.  The three
        # linearization constraints per (portion, row) dominate the model; they
        # are emitted through the coefficient-dict fast path from a per-portion
        # template of the covered-width terms.  (portion, row) pairs forced to
        # zero by the placement masks — dead portion or dead row — are the
        # discarded placement candidates: no variable, no constraints (the
        # per-portion list then holds the live rows only).
        l_vars[name] = []
        tiles_in_portion[name] = []
        for portion in portions:
            row_list: List[Variable] = []
            portion_width = portion.width
            if not portion_alive[portion.index]:
                l_vars[name].append(row_list)
                tiles_in_portion[name].append(LinExpr())
                continue
            neg_wcol = {
                col_cover[name][j]: -1.0
                for j in portion.columns()
                if masks.col_cover[j]
            }
            for r in range(height):
                if not masks.row_cover[r]:
                    continue
                l = model.add_continuous(
                    f"l[{key},{portion.index},{r}]", lb=0.0, ub=float(portion_width)
                )
                arow = row_cover[name][r]
                model.add_le_terms(
                    {l: 1.0, **neg_wcol},
                    0.0,
                    name=f"l_le_w[{key},{portion.index},{r}]",
                )
                model.add_le_terms(
                    {l: 1.0, arow: -float(portion_width)},
                    0.0,
                    name=f"l_le_a[{key},{portion.index},{r}]",
                )
                model.add_ge_terms(
                    {l: 1.0, arow: -float(portion_width), **neg_wcol},
                    -float(portion_width),
                    name=f"l_ge[{key},{portion.index},{r}]",
                )
                row_list.append(l)
            l_vars[name].append(row_list)
            tiles_in_portion[name].append(quicksum(row_list))

        # frames covered by the area (dead portions contribute empty sums)
        frames_expr[name] = quicksum(
            portion.tile_type.frames * tiles_in_portion[name][portion.index]
            for portion in portions
            if portion_alive[portion.index]
        )

        # forbidden cells (trivial once either side is fixed to zero)
        for fcol, frow in partition.forbidden_cells():
            if not masks.col_cover[fcol] or not masks.row_cover[frow]:
                continue
            model.add_le_terms(
                {col_cover[name][fcol]: 1.0, row_cover[name][frow]: 1.0},
                1.0,
                name=f"forbid[{key},{fcol},{frow}]",
            )

        # resource coverage (regions only; FC footprints are fixed by eqs. 6-10)
        if not area.is_free_area:
            for rtype, required in area.requirements:
                if required <= 0:
                    continue
                supply = quicksum(
                    portion.tile_type.resources.get(rtype)
                    * tiles_in_portion[name][portion.index]
                    for portion in portions
                    if portion.tile_type.resources.get(rtype) > 0
                )
                model.add(supply >= required, name=f"res[{key},{rtype.value}]")

        # violation binary for soft (relocation-as-a-metric) areas
        if area.soft:
            violation[name] = model.add_binary(f"v[{key}]")

    # ------------------------------------------------------------------
    # pairwise non-overlap
    # ------------------------------------------------------------------
    rel_dirs: Dict[Tuple[str, str], Dict[str, Variable]] = {}
    for i, first in enumerate(areas):
        for second in areas[i + 1 :]:
            _add_non_overlap(
                model,
                first,
                second,
                x_expr,
                y_expr,
                w_expr,
                h_expr,
                violation,
                width,
                height,
                fixed_relations,
                rel_dirs,
            )

    # ------------------------------------------------------------------
    # cost expressions
    # ------------------------------------------------------------------
    region_names = set(problem.region_names)
    wasted = quicksum(
        frames_expr[name] for name in names if name in region_names
    ) - float(problem.total_required_frames())

    wirelength_expr = _build_wirelength(
        model, problem, areas, x_expr, y_expr, w_expr, h_expr
    )
    perimeter_expr = quicksum(
        2.0 * (w_expr[name] + h_expr[name]) for name in names if name in region_names
    )

    milp = FloorplanMILP(
        problem=problem,
        partition=partition,
        areas=tuple(areas),
        model=model,
        col_cover=col_cover,
        col_start=col_start,
        row_cover=row_cover,
        row_start=row_start,
        k=k_vars,
        l=l_vars,
        violation=violation,
        rel_dirs=rel_dirs,
        x_expr=x_expr,
        y_expr=y_expr,
        w_expr=w_expr,
        h_expr=h_expr,
        tiles_in_portion=tiles_in_portion,
        frames_expr=frames_expr,
        wasted_frames_expr=wasted,
        wirelength_expr=wirelength_expr,
        perimeter_expr=perimeter_expr,
        norms=normalization_constants(problem),
        prune_stats=prune_stats,
    )
    milp.set_objective()
    return milp


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    return name.replace(" ", "_").replace(",", "_")


def _add_contiguity(
    model: Model,
    cover: List[Variable],
    start: List[Variable],
    label: str,
    cover_ok: "np.ndarray | None" = None,
    start_ok: "np.ndarray | None" = None,
) -> None:
    """Force the covered indices to form exactly one non-empty contiguous run.

    ``cover_ok``/``start_ok`` are the placement masks: constraints that are
    trivially satisfied because one of their variables is fixed to zero are
    not emitted.  The enumerator guarantees ``start_ok`` implies ``cover_ok``
    at the same index, so the remaining constraints stay exact.
    """
    if cover_ok is None:
        cover_ok = np.ones(len(cover), dtype=bool)
    if start_ok is None:
        start_ok = np.ones(len(start), dtype=bool)
    model.add(
        quicksum(s for s, ok in zip(start, start_ok) if ok) == 1,
        name=f"{label}:one_start",
    )
    for idx, (c, s) in enumerate(zip(cover, start)):
        if start_ok[idx]:
            model.add_ge_terms(
                {c: 1.0, s: -1.0}, 0.0, name=f"{label}:cover_ge_start[{idx}]"
            )
        if idx == 0:
            if cover_ok[0]:
                model.add_le_terms({c: 1.0, s: -1.0}, 0.0, name=f"{label}:first")
        else:
            if cover_ok[idx]:
                model.add_le_terms(
                    {c: 1.0, cover[idx - 1]: -1.0, s: -1.0},
                    0.0,
                    name=f"{label}:chain[{idx}]",
                )
            # a start at idx forbids coverage of idx-1 (the run cannot begin twice)
            if cover_ok[idx - 1] and start_ok[idx]:
                model.add_le_terms(
                    {cover[idx - 1]: 1.0, s: 1.0}, 1.0, name=f"{label}:no_restart[{idx}]"
                )


def _add_non_overlap(
    model: Model,
    first: AreaSpec,
    second: AreaSpec,
    x_expr: Dict[str, LinExpr],
    y_expr: Dict[str, LinExpr],
    w_expr: Dict[str, LinExpr],
    h_expr: Dict[str, LinExpr],
    violation: Dict[str, Variable],
    width: int,
    height: int,
    fixed_relations: Mapping[Tuple[str, str], str],
    rel_dirs: Dict[Tuple[str, str], Dict[str, Variable]],
) -> None:
    a, b = first.name, second.name
    key = f"{_sanitize(a)}|{_sanitize(b)}"

    # soft areas may overlap at the price of their violation binary (Section V)
    slack = LinExpr()
    if first.soft and a in violation:
        slack = slack + violation[a]
    if second.soft and b in violation:
        slack = slack + violation[b]

    relation = fixed_relations.get((a, b))
    if relation is None and (b, a) in fixed_relations:
        mirrored = {
            sp.RELATION_LEFT: sp.RELATION_RIGHT,
            sp.RELATION_RIGHT: sp.RELATION_LEFT,
            sp.RELATION_BELOW: sp.RELATION_ABOVE,
            sp.RELATION_ABOVE: sp.RELATION_BELOW,
        }
        relation = mirrored[fixed_relations[(b, a)]]

    if relation is not None:
        # HO mode: the relative position is fixed, no disjunction needed.
        if relation == sp.RELATION_LEFT:
            model.add(
                x_expr[a] + w_expr[a] <= x_expr[b] + width * slack,
                name=f"sp_left[{key}]",
            )
        elif relation == sp.RELATION_RIGHT:
            model.add(
                x_expr[b] + w_expr[b] <= x_expr[a] + width * slack,
                name=f"sp_right[{key}]",
            )
        elif relation == sp.RELATION_BELOW:
            model.add(
                y_expr[a] + h_expr[a] <= y_expr[b] + height * slack,
                name=f"sp_below[{key}]",
            )
        elif relation == sp.RELATION_ABOVE:
            model.add(
                y_expr[b] + h_expr[b] <= y_expr[a] + height * slack,
                name=f"sp_above[{key}]",
            )
        else:
            raise ValueError(f"unknown fixed relation {relation!r}")
        return

    dirs = {
        "left": model.add_binary(f"d_left[{key}]"),
        "right": model.add_binary(f"d_right[{key}]"),
        "below": model.add_binary(f"d_below[{key}]"),
        "above": model.add_binary(f"d_above[{key}]"),
    }
    rel_dirs[(a, b)] = dirs
    model.add(quicksum(dirs.values()) >= 1, name=f"sep[{key}]")
    model.add(
        x_expr[a] + w_expr[a] <= x_expr[b] + width * (1 - dirs["left"]) + width * slack,
        name=f"no_l[{key}]",
    )
    model.add(
        x_expr[b] + w_expr[b] <= x_expr[a] + width * (1 - dirs["right"]) + width * slack,
        name=f"no_r[{key}]",
    )
    model.add(
        y_expr[a] + h_expr[a] <= y_expr[b] + height * (1 - dirs["below"]) + height * slack,
        name=f"no_b[{key}]",
    )
    model.add(
        y_expr[b] + h_expr[b] <= y_expr[a] + height * (1 - dirs["above"]) + height * slack,
        name=f"no_a[{key}]",
    )


def _build_wirelength(
    model: Model,
    problem: FloorplanProblem,
    areas: Sequence[AreaSpec],
    x_expr: Dict[str, LinExpr],
    y_expr: Dict[str, LinExpr],
    w_expr: Dict[str, LinExpr],
    h_expr: Dict[str, LinExpr],
) -> LinExpr:
    """Weighted Manhattan distance between connected endpoint centres."""
    area_names = {area.name for area in areas}
    terms: List[LinExpr] = []
    for idx, connection in enumerate(problem.connections):
        centers_x: List[LinExpr] = []
        centers_y: List[LinExpr] = []
        for endpoint in connection.endpoints():
            if endpoint in area_names:
                centers_x.append(x_expr[endpoint] + 0.5 * w_expr[endpoint])
                centers_y.append(y_expr[endpoint] + 0.5 * h_expr[endpoint])
            else:
                pin = problem.pin_by_name(endpoint)
                centers_x.append(LinExpr.from_const(pin.col + 0.5))
                centers_y.append(LinExpr.from_const(pin.row + 0.5))
        dx = model.add_continuous(f"wl_dx[{idx}]", lb=0.0)
        dy = model.add_continuous(f"wl_dy[{idx}]", lb=0.0)
        model.add(dx >= centers_x[0] - centers_x[1], name=f"wl_dx_p[{idx}]")
        model.add(dx >= centers_x[1] - centers_x[0], name=f"wl_dx_n[{idx}]")
        model.add(dy >= centers_y[0] - centers_y[1], name=f"wl_dy_p[{idx}]")
        model.add(dy >= centers_y[1] - centers_y[0], name=f"wl_dy_n[{idx}]")
        terms.append(connection.weight * (dx + dy))
    return quicksum(terms) if terms else LinExpr()
