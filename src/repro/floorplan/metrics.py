"""Floorplan quality metrics and the multi-objective cost of eq. 14.

The paper optimizes a normalized weighted sum

    min  q1*WL/WLmax + q2*P/Pmax + q3*R/Rmax + q4*RL/RLmax

where WL is wirelength, P the total region perimeter, R the wasted resources
(we measure it in wasted configuration frames, the unit Table II reports) and
RL the relocation cost of eq. 13.  The evaluation protocol of Section VI is
lexicographic — "first optimize the wasted area and, without increasing the
area cost, minimize the overall wire length" — which
:class:`repro.floorplan.solver.FloorplanSolver` implements on top of these
terms.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.floorplan.geometry import manhattan
from repro.floorplan.placement import Floorplan
from repro.floorplan.problem import FloorplanProblem


@dataclasses.dataclass(frozen=True)
class ObjectiveWeights:
    """Weights ``q1..q4`` of the objective function (eq. 14)."""

    wirelength: float = 1.0
    perimeter: float = 0.0
    wasted_frames: float = 1.0
    relocation: float = 0.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"objective weight {field.name} must be non-negative")

    @staticmethod
    def paper_default() -> "ObjectiveWeights":
        """Weights mimicking the Section VI protocol in a single weighted solve.

        Wasted frames dominate, wirelength acts as a tie breaker; relocation
        cost is only relevant in relocation-as-a-metric mode.
        """
        return ObjectiveWeights(wirelength=0.05, perimeter=0.0, wasted_frames=1.0, relocation=0.5)


@dataclasses.dataclass(frozen=True)
class FloorplanMetrics:
    """Measured metrics of a floorplan."""

    wirelength: float
    perimeter: int
    covered_frames: int
    required_frames: int
    wasted_frames: int
    free_compatible_areas: int
    unsatisfied_free_areas: int
    objective: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict representation for reports."""
        return dataclasses.asdict(self)


def wirelength(floorplan: Floorplan) -> float:
    """Weighted Manhattan wirelength between connected endpoint centres."""
    problem = floorplan.problem
    total = 0.0
    for connection in problem.connections:
        centers = []
        for endpoint in connection.endpoints():
            centers.append(_endpoint_center(floorplan, endpoint))
        total += connection.weight * manhattan(centers[0], centers[1])
    return total


def _endpoint_center(floorplan: Floorplan, endpoint: str) -> Tuple[float, float]:
    problem = floorplan.problem
    if endpoint in floorplan.placements:
        return floorplan.placements[endpoint].rect.center
    try:
        pin = problem.pin_by_name(endpoint)
    except KeyError:
        raise KeyError(
            f"endpoint {endpoint!r} has no placement and is not a pin"
        ) from None
    return pin.center


def total_perimeter(floorplan: Floorplan) -> int:
    """Sum of region perimeters (free-compatible areas excluded)."""
    return sum(p.rect.perimeter for p in floorplan.placements.values())


def covered_frames(floorplan: Floorplan) -> int:
    """Configuration frames covered by the reconfigurable regions.

    Free-compatible areas are *not* counted: as Section VI notes, the
    resources they reserve are not an additional cost, they only hold space
    for relocated bitstreams.
    """
    device = floorplan.device
    return sum(p.covered_frames(device) for p in floorplan.placements.values())


def wasted_frames(floorplan: Floorplan) -> int:
    """Frames covered by regions beyond their minimum requirement (Table II)."""
    problem = floorplan.problem
    required = sum(
        problem.required_frames(name) for name in floorplan.placements.keys()
    )
    return covered_frames(floorplan) - required


def normalization_constants(problem: FloorplanProblem) -> Dict[str, float]:
    """Normalization denominators WLmax, Pmax, Rmax used in eq. 14.

    The paper does not spell these out; any positive constants preserve the
    optimizer's ordering for fixed weights.  We use natural upper bounds:
    every connection spanning the whole die for WLmax, every region covering
    the whole die boundary for Pmax, and all usable frames for Rmax.
    """
    device = problem.device
    span = device.width + device.height
    wl_max = max(1.0, problem.connection_weight_total() * span)
    p_max = max(1.0, 2.0 * span * len(problem.regions))
    r_max = max(1.0, float(device.total_frames()))
    return {"wirelength": wl_max, "perimeter": p_max, "wasted_frames": r_max}


def evaluate_floorplan(
    floorplan: Floorplan, weights: ObjectiveWeights | None = None
) -> FloorplanMetrics:
    """Compute all metrics and the eq.-14 objective for a floorplan."""
    weights = weights or ObjectiveWeights.paper_default()
    problem = floorplan.problem
    norms = normalization_constants(problem)

    wl = wirelength(floorplan)
    perim = total_perimeter(floorplan)
    covered = covered_frames(floorplan)
    required = sum(problem.required_frames(name) for name in floorplan.placements.keys())
    wasted = covered - required

    satisfied = floorplan.num_free_compatible_areas
    unsatisfied = len(floorplan.free_areas) - satisfied
    rl_max = max(1, len(floorplan.free_areas))

    objective = (
        weights.wirelength * wl / norms["wirelength"]
        + weights.perimeter * perim / norms["perimeter"]
        + weights.wasted_frames * wasted / norms["wasted_frames"]
        + weights.relocation * unsatisfied / rl_max
    )
    return FloorplanMetrics(
        wirelength=wl,
        perimeter=perim,
        covered_frames=covered,
        required_frames=required,
        wasted_frames=wasted,
        free_compatible_areas=satisfied,
        unsatisfied_free_areas=unsatisfied,
        objective=objective,
    )
