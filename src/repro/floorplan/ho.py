"""HO ("Heuristic Optimal") mode.

HO first obtains a feasible solution from a fast heuristic, extracts its
sequence-pair representation and uses the implied relative positions as
additional constraints of the MILP, so that the exact solver only improves the
solution *within* that (much smaller) portion of the search space.

Section II.A of the 2015 paper adds one requirement for the relocation
extension: when relocation is used as a constraint, the heuristic seed must
also contain positions for the free-compatible areas so that the sequence pair
naturally covers them and the non-overlapping guarantees extend to every area.
:class:`HOSeeder` implements exactly that — it places the regions with a
heuristic and then reserves free-compatible areas geometrically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.problem import FloorplanProblem
from repro.floorplan.sequence_pair import SequencePair


class HOSeedError(RuntimeError):
    """Raised when no heuristic seed suitable for HO could be produced."""


@dataclasses.dataclass
class HOSeed:
    """A heuristic seed for HO: a floorplan and its sequence pair."""

    floorplan: Floorplan
    sequence_pair: SequencePair

    def fixed_relations(self) -> Dict[Tuple[str, str], str]:
        """The relative-position constraints handed to the MILP builder."""
        return self.sequence_pair.relations()


class HOSeeder:
    """Produce HO seeds, optionally with free-compatible areas included."""

    def __init__(self, problem: FloorplanProblem) -> None:
        self.problem = problem

    # ------------------------------------------------------------------
    def seed_regions(self, heuristic: str = "tessellation") -> Floorplan:
        """Run a heuristic placer for the regions only.

        ``heuristic`` is ``"tessellation"``, ``"first-fit"`` or ``"annealing"``;
        the tessellation baseline is tried first by default and the others are
        used as fallbacks, because HO only needs *a* feasible solution.
        """
        from repro.baselines.annealing import annealing_floorplan
        from repro.baselines.first_fit import first_fit_floorplan
        from repro.baselines.tessellation import tessellation_floorplan

        def tessellation_unaligned(problem):
            return tessellation_floorplan(problem, align_rows=False)

        order = {
            "tessellation": (
                tessellation_floorplan,
                tessellation_unaligned,
                first_fit_floorplan,
                annealing_floorplan,
            ),
            "first-fit": (
                first_fit_floorplan,
                tessellation_floorplan,
                tessellation_unaligned,
                annealing_floorplan,
            ),
            "annealing": (
                annealing_floorplan,
                tessellation_unaligned,
                tessellation_floorplan,
                first_fit_floorplan,
            ),
        }
        if heuristic not in order:
            raise ValueError(f"unknown heuristic {heuristic!r}")
        for placer in order[heuristic]:
            floorplan = placer(self.problem)
            if floorplan is not None and floorplan.is_complete:
                from repro.floorplan.verify import verify_floorplan

                if verify_floorplan(floorplan, check_relocation=False).is_feasible:
                    return floorplan
        raise HOSeedError(
            f"no heuristic produced a feasible seed for {self.problem.name!r}"
        )

    # ------------------------------------------------------------------
    def add_free_areas(self, floorplan: Floorplan, spec) -> Floorplan:
        """Reserve free-compatible areas on top of a heuristic floorplan.

        Areas are selected geometrically (see
        :func:`repro.relocation.compatibility.enumerate_free_compatible_areas`);
        for hard requests a failure to find all copies raises
        :class:`HOSeedError`, because HO with relocation-as-a-constraint needs
        the full set of areas in the seed.  For soft requests the missing
        copies simply stay out of the seed (and thus out of the sequence
        pair) — the MILP can still try to recover them.
        """
        from repro.relocation.compatibility import (
            enumerate_free_compatible_areas,
            select_disjoint_areas,
        )

        partition = self.problem.partition
        seeded = Floorplan(
            problem=self.problem,
            placements=dict(floorplan.placements),
            solver_status=floorplan.solver_status,
        )
        for request in spec.requests:
            if request.region not in seeded.placements:
                raise HOSeedError(
                    f"heuristic seed does not place region {request.region!r}"
                )
            region_rect = seeded.placements[request.region].rect
            occupied = [p.rect for p in seeded.all_placements()]
            candidates = enumerate_free_compatible_areas(
                partition, region_rect, occupied
            )
            chosen = select_disjoint_areas(candidates, request.copies)
            if len(chosen) < request.copies and request.hard:
                raise HOSeedError(
                    f"could only reserve {len(chosen)}/{request.copies} free-compatible "
                    f"areas for {request.region!r} in the heuristic seed"
                )
            for index, rect in enumerate(chosen, start=1):
                name = spec.area_name(request.region, index)
                seeded.free_areas[name] = RegionPlacement(
                    name=name, rect=rect, compatible_with=request.region
                )
        return seeded

    # ------------------------------------------------------------------
    def build_seed(
        self,
        spec=None,
        heuristic: str = "tessellation",
        initial: Optional[Floorplan] = None,
    ) -> HOSeed:
        """End-to-end seed construction (regions, free areas, sequence pair).

        With a relocation spec and no externally-provided seed, the
        relocation-aware greedy constructor is tried first: it interleaves
        region placement and free-area reservation, which succeeds in many
        cases where reserving areas *after* a relocation-oblivious placement
        fails (exactly the Section II.A requirement on HO seeds).
        """
        want_areas = spec is not None and len(spec) > 0
        if initial is not None:
            floorplan = initial
            if want_areas and not initial.free_areas:
                floorplan = self.add_free_areas(floorplan, spec)
        elif want_areas:
            from repro.baselines.relocation_greedy import relocation_aware_greedy
            from repro.floorplan.verify import verify_floorplan

            floorplan = relocation_aware_greedy(self.problem, spec)
            if (
                floorplan is None
                or not floorplan.is_complete
                or not verify_floorplan(floorplan).is_feasible
            ):
                floorplan = self.add_free_areas(self.seed_regions(heuristic), spec)
        else:
            floorplan = self.seed_regions(heuristic)
        sequence_pair = SequencePair.from_floorplan(floorplan)
        return HOSeed(floorplan=floorplan, sequence_pair=sequence_pair)
