"""User-facing floorplanning facade.

:class:`FloorplanSolver` wires together the base MILP (:mod:`milp_builder`),
the relocation extension (:mod:`repro.relocation.constraints`), the HO seeding
machinery (:mod:`ho`) and the MILP backends, and returns a
:class:`SolveReport` bundling the floorplan, the raw solver result, the
measured metrics and an independent feasibility verification.

Typical usage::

    problem = sdr_problem()
    spec = RelocationSpec.as_constraint({"Carrier Recovery": 2, "Demodulator": 2})
    solver = FloorplanSolver(problem, relocation=spec, mode="HO",
                             options=SolverOptions(time_limit=60))
    report = solver.solve()
    print(render_floorplan(report.floorplan))
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.floorplan.metrics import (
    FloorplanMetrics,
    ObjectiveWeights,
    evaluate_floorplan,
)
from repro.floorplan.milp_builder import FloorplanMILP, build_floorplan_milp
from repro.floorplan.placement import Floorplan
from repro.floorplan.problem import FloorplanProblem
from repro.floorplan.verify import VerificationReport, verify_floorplan
from repro.milp import MILPSolution, SolverOptions, solve
from repro.obs.trace import collect_stages, stage_timer


@dataclasses.dataclass
class SolveReport:
    """Everything produced by one :meth:`FloorplanSolver.solve` call.

    ``milp`` is ``None`` on *portable* reports (see :meth:`portable`), which
    drop the model so the report pickles cheaply across process boundaries.
    """

    floorplan: Floorplan
    solution: MILPSolution
    metrics: Optional[FloorplanMetrics]
    verification: Optional[VerificationReport]
    milp: Optional[FloorplanMILP] = None
    #: Solver stage timings (name/seconds dicts) collected by
    #: :func:`repro.obs.trace.collect_stages` during :func:`run_job`; ``None``
    #: outside traced service solves.  Travels with the portable report so the
    #: gateway can attach per-stage spans to the request trace.
    stages: Optional[List[Dict[str, object]]] = None

    @property
    def feasible(self) -> bool:
        """Whether a verified-feasible floorplan was obtained."""
        return (
            self.solution.status.has_solution
            and self.verification is not None
            and self.verification.is_feasible
        )

    def portable(self) -> "SolveReport":
        """A copy safe and cheap to pickle across processes.

        Drops the MILP model and the per-variable incumbent (the floorplan is
        already extracted), shrinking the pickled payload by two orders of
        magnitude.  Metrics, verification and solve metadata are preserved.
        """
        slim_solution = dataclasses.replace(self.solution, values={})
        return SolveReport(
            floorplan=self.floorplan,
            solution=slim_solution,
            metrics=self.metrics,
            verification=self.verification,
            milp=None,
            stages=self.stages,
        )

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"status: {self.solution.status.value} (backend {self.solution.backend}, "
            f"{self.solution.solve_time:.2f}s)",
        ]
        if self.metrics is not None:
            lines.append(
                f"wasted frames: {self.metrics.wasted_frames}, "
                f"wirelength: {self.metrics.wirelength:.1f}, "
                f"free-compatible areas: {self.metrics.free_compatible_areas}"
            )
        if self.verification is not None:
            lines.append(f"verification: {self.verification.summary()}")
        return "\n".join(lines)


class FloorplanSolver:
    """Relocation-aware MILP floorplanner (O and HO modes).

    Parameters
    ----------
    problem:
        The floorplanning instance.
    relocation:
        Optional :class:`~repro.relocation.spec.RelocationSpec`; when omitted
        the solver behaves exactly like the base floorplanner of [10].
    mode:
        ``"O"`` explores the full search space; ``"HO"`` constrains the MILP
        with the sequence pair of a heuristic seed.
    options:
        MILP backend options (time limit, gap, backend choice).
    heuristic:
        Heuristic used to produce the HO seed (``"tessellation"``,
        ``"first-fit"`` or ``"annealing"``).
    seed_floorplan:
        Optional externally-provided heuristic floorplan used as the HO seed
        (free-compatible areas are added on top if the spec requires them).
    prune:
        Run the vectorized feasible-placement pruning of
        :func:`~repro.floorplan.milp_builder.build_floorplan_milp` (exact;
        on by default).
    """

    def __init__(
        self,
        problem: FloorplanProblem,
        relocation=None,
        mode: str = "O",
        options: SolverOptions | None = None,
        heuristic: str = "tessellation",
        seed_floorplan: Floorplan | None = None,
        prune: bool = True,
    ) -> None:
        mode = mode.upper()
        if mode not in ("O", "HO"):
            raise ValueError(f"mode must be 'O' or 'HO', got {mode!r}")
        self.problem = problem
        self.relocation = relocation
        self.mode = mode
        self.options = options or SolverOptions()
        self.heuristic = heuristic
        self.seed_floorplan = seed_floorplan
        self.prune = prune
        self._seed = None  # populated lazily in HO mode

    # ------------------------------------------------------------------
    def build(self, weights: ObjectiveWeights | None = None) -> FloorplanMILP:
        """Build the (relocation-extended) MILP without solving it."""
        from repro.relocation.constraints import apply_relocation_constraints

        extra_areas = []
        fixed_relations: Dict[Tuple[str, str], str] | None = None

        if self.relocation is not None and len(self.relocation) > 0:
            extra_areas = self.relocation.build_area_specs(self.problem)

        if self.mode == "HO":
            from repro.floorplan.ho import HOSeeder

            seeder = HOSeeder(self.problem)
            self._seed = seeder.build_seed(
                spec=self.relocation, heuristic=self.heuristic, initial=self.seed_floorplan
            )
            fixed_relations = self._seed.fixed_relations()

        milp = build_floorplan_milp(
            self.problem,
            extra_areas=extra_areas,
            fixed_relations=fixed_relations,
            model_name=f"{self.problem.name}[{self.mode}]",
            prune=self.prune,
        )
        if extra_areas:
            apply_relocation_constraints(milp)
        milp.set_objective(weights)
        return milp

    # ------------------------------------------------------------------
    def solve(
        self,
        weights: ObjectiveWeights | None = None,
        lexicographic: bool = False,
    ) -> SolveReport:
        """Solve the instance.

        Parameters
        ----------
        weights:
            Objective weights of eq. 14 (defaults to
            :meth:`ObjectiveWeights.paper_default`).
        lexicographic:
            Reproduce the Section VI protocol: first minimize wasted frames,
            then — with the wasted-frame count fixed at its optimum — minimize
            wirelength.
        """
        weights = weights or ObjectiveWeights.paper_default()
        with stage_timer("floorplan.build", mode=self.mode):
            milp = self.build(weights=weights)

        if lexicographic:
            return self._solve_lexicographic(milp, weights)

        solution = solve(milp.model, self.options)
        return self._finalize(milp, solution)

    # ------------------------------------------------------------------
    def _solve_lexicographic(
        self, milp: FloorplanMILP, weights: ObjectiveWeights
    ) -> SolveReport:
        # Phase 1: wasted frames (plus the relocation term when in soft mode,
        # since missing areas are part of the primary cost in Section V).
        phase1_weights = ObjectiveWeights(
            wirelength=0.0,
            perimeter=0.0,
            wasted_frames=1.0,
            relocation=weights.relocation,
        )
        milp.set_objective(phase1_weights)
        first = solve(milp.model, self.options)
        if not first.status.has_solution:
            return self._finalize(milp, first)

        wasted_value = milp.wasted_frames_expr.evaluate(first.values)
        # Phase 2: fix the area cost (allowing round-off slack) and polish wires.
        milp.model.add(
            milp.wasted_frames_expr <= wasted_value + 1e-6, name="lex_area_cap"
        )
        phase2_weights = ObjectiveWeights(
            wirelength=1.0,
            perimeter=weights.perimeter,
            wasted_frames=0.0,
            relocation=weights.relocation,
        )
        milp.set_objective(phase2_weights)
        second = solve(milp.model, self.options)
        chosen = second if second.status.has_solution else first
        return self._finalize(milp, chosen)

    # ------------------------------------------------------------------
    def _finalize(self, milp: FloorplanMILP, solution: MILPSolution) -> SolveReport:
        return _finalize_report(milp, solution, seed=self._seed)


def run_job(job) -> SolveReport:
    """Pure, picklable-result entry point used by :mod:`repro.service`.

    ``job`` is any object exposing the :class:`~repro.service.jobs.SolveJob`
    attributes (``problem``, ``relocation``, ``mode``, ``options``,
    ``heuristic``, ``weights``, ``lexicographic``) — duck-typed so this module
    does not depend on the service layer.  The function holds no state and
    returns a :meth:`SolveReport.portable` report, which makes it safe to run
    inside :class:`concurrent.futures.ProcessPoolExecutor` workers.
    """
    solver = FloorplanSolver(
        job.problem,
        relocation=job.relocation,
        mode=job.mode,
        options=job.options,
        heuristic=job.heuristic,
    )
    # Collect solver stage timings (floorplan.build, milp.presolve,
    # milp.search, floorplan.postsolve) on this thread so the serving layers
    # can attach them to the request trace — the collector is thread-local,
    # which is exactly what survives the executor pools the service uses.
    with collect_stages() as stages:
        report = solver.solve(weights=job.weights, lexicographic=job.lexicographic)
    portable = report.portable()
    portable.stages = stages or None
    return portable


def _finalize_report(
    milp: FloorplanMILP, solution: MILPSolution, seed=None
) -> SolveReport:
    with stage_timer("floorplan.postsolve"):
        floorplan = milp.extract(solution)
        if seed is not None:
            floorplan.metadata["ho_seed_status"] = seed.floorplan.solver_status
        metrics = None
        verification = None
        if solution.status.has_solution and floorplan.is_complete:
            metrics = evaluate_floorplan(floorplan)
            verification = verify_floorplan(floorplan)
    return SolveReport(
        floorplan=floorplan,
        solution=solution,
        metrics=metrics,
        verification=verification,
        milp=milp,
    )
