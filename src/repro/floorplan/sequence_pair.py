"""Sequence-pair representation of a placement.

The HO ("Heuristic Optimal") algorithm of [10] extracts the sequence pair of a
first feasible solution and uses it as an additional constraint: for every pair
of areas the relative position (left-of / right-of / below / above) implied by
the sequence pair is fixed, which removes the pairwise disjunction binaries
from the MILP and shrinks the search space dramatically.

Section II.A of the 2015 paper notes that when relocation is used as a
constraint under HO, the heuristic input must also place the free-compatible
areas so that the sequence pair naturally covers them too — which is exactly
how :class:`~repro.floorplan.ho.HOSeeder` uses this module.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.floorplan.geometry import Rect

#: Relative positions encoded by a sequence pair.
RELATION_LEFT = "left"
RELATION_RIGHT = "right"
RELATION_BELOW = "below"
RELATION_ABOVE = "above"


@dataclasses.dataclass(frozen=True)
class SequencePair:
    """A sequence pair ``(Gamma+, Gamma-)`` over a set of area names.

    The classic semantics are used:

    * ``a`` before ``b`` in both sequences       -> ``a`` is left of ``b``;
    * ``a`` before ``b`` only in ``Gamma-``      -> ``a`` is below ``b``;
    * the two remaining cases are the mirror images.
    """

    gamma_plus: Tuple[str, ...]
    gamma_minus: Tuple[str, ...]

    def __post_init__(self) -> None:
        if set(self.gamma_plus) != set(self.gamma_minus):
            raise ValueError("the two sequences must contain the same names")
        if len(set(self.gamma_plus)) != len(self.gamma_plus):
            raise ValueError("sequence pair entries must be unique")

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Area names in ``Gamma+`` order."""
        return self.gamma_plus

    def relation(self, a: str, b: str) -> str:
        """Relative position of ``a`` with respect to ``b``."""
        if a == b:
            raise ValueError("relation of an area with itself is undefined")
        pos_plus = {name: i for i, name in enumerate(self.gamma_plus)}
        pos_minus = {name: i for i, name in enumerate(self.gamma_minus)}
        before_plus = pos_plus[a] < pos_plus[b]
        before_minus = pos_minus[a] < pos_minus[b]
        if before_plus and before_minus:
            return RELATION_LEFT
        if not before_plus and not before_minus:
            return RELATION_RIGHT
        if not before_plus and before_minus:
            return RELATION_BELOW
        return RELATION_ABOVE

    def relations(self) -> Dict[Tuple[str, str], str]:
        """Relation for every ordered pair ``(a, b)`` with ``a != b``."""
        result = {}
        for a in self.gamma_plus:
            for b in self.gamma_plus:
                if a != b:
                    result[(a, b)] = self.relation(a, b)
        return result

    def is_consistent_with(self, rects: Mapping[str, Rect]) -> bool:
        """Whether a placement satisfies every relation of the pair."""
        for (a, b), relation in self.relations().items():
            if a not in rects or b not in rects:
                continue
            ra, rb = rects[a], rects[b]
            if relation == RELATION_LEFT and not ra.col_end < rb.col:
                return False
            if relation == RELATION_BELOW and not ra.row_end < rb.row:
                return False
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def from_rects(rects: Mapping[str, Rect]) -> "SequencePair":
        """Extract a sequence pair consistent with a non-overlapping placement.

        For every pair of rectangles a separating direction is chosen
        (horizontal separation wins ties), the two induced partial orders are
        built and topologically sorted into ``Gamma+`` and ``Gamma-``.

        Raises
        ------
        ValueError
            If two rectangles overlap (no separating direction exists).
        """
        names = sorted(rects.keys())
        relations: Dict[Tuple[str, str], str] = {}
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                relations[(a, b)] = _separating_relation(a, b, rects[a], rects[b])

        # Gamma+ partial order: a < b when a left-of b OR a above b.
        # Gamma- partial order: a < b when a left-of b OR a below b.
        graph_plus = nx.DiGraph()
        graph_minus = nx.DiGraph()
        graph_plus.add_nodes_from(names)
        graph_minus.add_nodes_from(names)
        for (a, b), relation in relations.items():
            if relation == RELATION_LEFT:
                graph_plus.add_edge(a, b)
                graph_minus.add_edge(a, b)
            elif relation == RELATION_RIGHT:
                graph_plus.add_edge(b, a)
                graph_minus.add_edge(b, a)
            elif relation == RELATION_BELOW:
                graph_plus.add_edge(b, a)
                graph_minus.add_edge(a, b)
            else:  # a above b
                graph_plus.add_edge(a, b)
                graph_minus.add_edge(b, a)

        gamma_plus = tuple(nx.lexicographical_topological_sort(graph_plus))
        gamma_minus = tuple(nx.lexicographical_topological_sort(graph_minus))
        return SequencePair(gamma_plus=gamma_plus, gamma_minus=gamma_minus)

    @staticmethod
    def from_floorplan(floorplan) -> "SequencePair":
        """Extract the sequence pair of a solved floorplan (regions + FC areas)."""
        rects = {p.name: p.rect for p in floorplan.all_placements()}
        return SequencePair.from_rects(rects)


def _separating_relation(a: str, b: str, ra: Rect, rb: Rect) -> str:
    """Pick the relation of ``a`` w.r.t. ``b`` for two disjoint rectangles."""
    if ra.col_end < rb.col:
        return RELATION_LEFT
    if rb.col_end < ra.col:
        return RELATION_RIGHT
    if ra.row_end < rb.row:
        return RELATION_BELOW
    if rb.row_end < ra.row:
        return RELATION_ABOVE
    raise ValueError(
        f"rectangles {a!r} ({ra}) and {b!r} ({rb}) overlap; "
        "a sequence pair requires a non-overlapping placement"
    )
