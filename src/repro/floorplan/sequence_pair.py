"""Sequence-pair representation of a placement.

The HO ("Heuristic Optimal") algorithm of [10] extracts the sequence pair of a
first feasible solution and uses it as an additional constraint: for every pair
of areas the relative position (left-of / right-of / below / above) implied by
the sequence pair is fixed, which removes the pairwise disjunction binaries
from the MILP and shrinks the search space dramatically.

Section II.A of the 2015 paper notes that when relocation is used as a
constraint under HO, the heuristic input must also place the free-compatible
areas so that the sequence pair naturally covers them too — which is exactly
how :class:`~repro.floorplan.ho.HOSeeder` uses this module.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.floorplan.geometry import Rect

#: Relative positions encoded by a sequence pair.
RELATION_LEFT = "left"
RELATION_RIGHT = "right"
RELATION_BELOW = "below"
RELATION_ABOVE = "above"


@dataclasses.dataclass(frozen=True)
class SequencePair:
    """A sequence pair ``(Gamma+, Gamma-)`` over a set of area names.

    The classic semantics are used:

    * ``a`` before ``b`` in both sequences       -> ``a`` is left of ``b``;
    * ``a`` before ``b`` only in ``Gamma-``      -> ``a`` is below ``b``;
    * the two remaining cases are the mirror images.
    """

    gamma_plus: Tuple[str, ...]
    gamma_minus: Tuple[str, ...]

    def __post_init__(self) -> None:
        if set(self.gamma_plus) != set(self.gamma_minus):
            raise ValueError("the two sequences must contain the same names")
        if len(set(self.gamma_plus)) != len(self.gamma_plus):
            raise ValueError("sequence pair entries must be unique")

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Area names in ``Gamma+`` order."""
        return self.gamma_plus

    def relation(self, a: str, b: str) -> str:
        """Relative position of ``a`` with respect to ``b``."""
        if a == b:
            raise ValueError("relation of an area with itself is undefined")
        pos_plus = {name: i for i, name in enumerate(self.gamma_plus)}
        pos_minus = {name: i for i, name in enumerate(self.gamma_minus)}
        before_plus = pos_plus[a] < pos_plus[b]
        before_minus = pos_minus[a] < pos_minus[b]
        if before_plus and before_minus:
            return RELATION_LEFT
        if not before_plus and not before_minus:
            return RELATION_RIGHT
        if not before_plus and before_minus:
            return RELATION_BELOW
        return RELATION_ABOVE

    def relations(self) -> Dict[Tuple[str, str], str]:
        """Relation for every ordered pair ``(a, b)`` with ``a != b``."""
        result = {}
        for a in self.gamma_plus:
            for b in self.gamma_plus:
                if a != b:
                    result[(a, b)] = self.relation(a, b)
        return result

    def is_consistent_with(self, rects: Mapping[str, Rect]) -> bool:
        """Whether a placement satisfies every relation of the pair."""
        for (a, b), relation in self.relations().items():
            if a not in rects or b not in rects:
                continue
            ra, rb = rects[a], rects[b]
            if relation == RELATION_LEFT and not ra.col_end < rb.col:
                return False
            if relation == RELATION_BELOW and not ra.row_end < rb.row:
                return False
        return True

    # ------------------------------------------------------------------
    @staticmethod
    def from_rects(rects: Mapping[str, Rect]) -> "SequencePair":
        """Extract a sequence pair consistent with a non-overlapping placement.

        Pairs whose rectangles overlap in rows (or columns) have their
        relation dictated by the placement and are inserted first.  Pairs
        separated in *both* axes ("diagonal" pairs) admit two valid relations;
        picking one per pair in isolation can create a cyclic combined order
        even for valid placements, so each diagonal pair is resolved against
        the partial orders built so far (horizontal separation preferred,
        falling back to vertical when the horizontal choice would close a
        cycle).

        Raises
        ------
        ValueError
            If two rectangles overlap (no separating direction exists).
        """
        names = sorted(rects.keys())
        forced: List[Tuple[str, str, str]] = []
        flexible: List[Tuple[str, str, Tuple[str, str]]] = []
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                ra, rb = rects[a], rects[b]
                horizontal = _horizontal_relation(ra, rb)
                vertical = _vertical_relation(ra, rb)
                if horizontal is None and vertical is None:
                    raise ValueError(
                        f"rectangles {a!r} ({ra}) and {b!r} ({rb}) overlap; "
                        "a sequence pair requires a non-overlapping placement"
                    )
                if horizontal is not None and vertical is not None:
                    flexible.append((a, b, (horizontal, vertical)))
                else:
                    forced.append((a, b, horizontal or vertical))

        # Gamma+ partial order: a < b when a left-of b OR a above b.
        # Gamma- partial order: a < b when a left-of b OR a below b.
        graph_plus = nx.DiGraph()
        graph_minus = nx.DiGraph()
        graph_plus.add_nodes_from(names)
        graph_minus.add_nodes_from(names)
        for a, b, relation in forced:
            _add_relation_edges(graph_plus, graph_minus, a, b, relation)
        if not (nx.is_directed_acyclic_graph(graph_plus) and
                nx.is_directed_acyclic_graph(graph_minus)):
            raise ValueError("placement induces contradictory forced relations")

        for a, b, candidates in flexible:
            for relation in candidates:
                if _relation_is_safe(graph_plus, graph_minus, a, b, relation):
                    _add_relation_edges(graph_plus, graph_minus, a, b, relation)
                    break
            else:
                raise ValueError(
                    f"could not order areas {a!r} and {b!r} without a cycle"
                )

        gamma_plus = tuple(nx.lexicographical_topological_sort(graph_plus))
        gamma_minus = tuple(nx.lexicographical_topological_sort(graph_minus))
        return SequencePair(gamma_plus=gamma_plus, gamma_minus=gamma_minus)

    @staticmethod
    def from_floorplan(floorplan) -> "SequencePair":
        """Extract the sequence pair of a solved floorplan (regions + FC areas)."""
        rects = {p.name: p.rect for p in floorplan.all_placements()}
        return SequencePair.from_rects(rects)


def _horizontal_relation(ra: Rect, rb: Rect) -> str | None:
    """``a``'s horizontal relation to ``b``, or ``None`` if columns overlap."""
    if ra.col_end < rb.col:
        return RELATION_LEFT
    if rb.col_end < ra.col:
        return RELATION_RIGHT
    return None


def _vertical_relation(ra: Rect, rb: Rect) -> str | None:
    """``a``'s vertical relation to ``b``, or ``None`` if rows overlap."""
    if ra.row_end < rb.row:
        return RELATION_BELOW
    if rb.row_end < ra.row:
        return RELATION_ABOVE
    return None


#: Edge directions each relation of ``(a, b)`` adds to ``(Gamma+, Gamma-)``:
#: True = edge a->b, False = edge b->a.
_RELATION_EDGES = {
    RELATION_LEFT: (True, True),
    RELATION_RIGHT: (False, False),
    RELATION_BELOW: (False, True),
    RELATION_ABOVE: (True, False),
}


def _add_relation_edges(
    graph_plus: "nx.DiGraph", graph_minus: "nx.DiGraph", a: str, b: str, relation: str
) -> None:
    forward_plus, forward_minus = _RELATION_EDGES[relation]
    graph_plus.add_edge(a, b) if forward_plus else graph_plus.add_edge(b, a)
    graph_minus.add_edge(a, b) if forward_minus else graph_minus.add_edge(b, a)


def _relation_is_safe(
    graph_plus: "nx.DiGraph", graph_minus: "nx.DiGraph", a: str, b: str, relation: str
) -> bool:
    """Whether adding the relation's edges keeps both partial orders acyclic."""
    forward_plus, forward_minus = _RELATION_EDGES[relation]
    plus_src, plus_dst = (a, b) if forward_plus else (b, a)
    minus_src, minus_dst = (a, b) if forward_minus else (b, a)
    return not nx.has_path(graph_plus, plus_dst, plus_src) and not nx.has_path(
        graph_minus, minus_dst, minus_src
    )
