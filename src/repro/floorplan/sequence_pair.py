"""Sequence-pair representation of a placement.

The HO ("Heuristic Optimal") algorithm of [10] extracts the sequence pair of a
first feasible solution and uses it as an additional constraint: for every pair
of areas the relative position (left-of / right-of / below / above) implied by
the sequence pair is fixed, which removes the pairwise disjunction binaries
from the MILP and shrinks the search space dramatically.

Section II.A of the 2015 paper notes that when relocation is used as a
constraint under HO, the heuristic input must also place the free-compatible
areas so that the sequence pair naturally covers them too — which is exactly
how :class:`~repro.floorplan.ho.HOSeeder` uses this module.

Performance notes
-----------------
Every query goes through *memoized match positions*: the ``name -> index``
maps of the two sequences are computed once per pair and cached on the
instance, so :meth:`SequencePair.relation` is O(1) and
:meth:`SequencePair.relations` is O(n^2) total (it used to rebuild both maps
on every pairwise query).  :meth:`SequencePair.pack` evaluates a sequence
pair into packed coordinates with the O(n log n) longest-common-subsequence
algorithm (FAST-SP style, a Fenwick tree over match positions) instead of
building and longest-path-ing the O(n^2) horizontal/vertical constraint
graphs.  :meth:`SequencePair.from_rects` runs on plain adjacency sets with an
incremental reachability check rather than a ``networkx`` digraph per call.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.floorplan.geometry import Rect

#: Relative positions encoded by a sequence pair.
RELATION_LEFT = "left"
RELATION_RIGHT = "right"
RELATION_BELOW = "below"
RELATION_ABOVE = "above"


@dataclasses.dataclass(frozen=True)
class SequencePair:
    """A sequence pair ``(Gamma+, Gamma-)`` over a set of area names.

    The classic semantics are used:

    * ``a`` before ``b`` in both sequences       -> ``a`` is left of ``b``;
    * ``a`` before ``b`` only in ``Gamma-``      -> ``a`` is below ``b``;
    * the two remaining cases are the mirror images.
    """

    gamma_plus: Tuple[str, ...]
    gamma_minus: Tuple[str, ...]

    def __post_init__(self) -> None:
        if set(self.gamma_plus) != set(self.gamma_minus):
            raise ValueError("the two sequences must contain the same names")
        if len(set(self.gamma_plus)) != len(self.gamma_plus):
            raise ValueError("sequence pair entries must be unique")

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Area names in ``Gamma+`` order."""
        return self.gamma_plus

    def _positions(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Memoized ``name -> index`` maps of the two sequences."""
        cached = self.__dict__.get("_position_cache")
        if cached is None:
            cached = (
                {name: i for i, name in enumerate(self.gamma_plus)},
                {name: i for i, name in enumerate(self.gamma_minus)},
            )
            # the dataclass is frozen; the cache is derived state, not a field
            object.__setattr__(self, "_position_cache", cached)
        return cached

    def relation(self, a: str, b: str) -> str:
        """Relative position of ``a`` with respect to ``b``."""
        if a == b:
            raise ValueError("relation of an area with itself is undefined")
        pos_plus, pos_minus = self._positions()
        before_plus = pos_plus[a] < pos_plus[b]
        before_minus = pos_minus[a] < pos_minus[b]
        if before_plus and before_minus:
            return RELATION_LEFT
        if not before_plus and not before_minus:
            return RELATION_RIGHT
        if not before_plus and before_minus:
            return RELATION_BELOW
        return RELATION_ABOVE

    def relations(self) -> Dict[Tuple[str, str], str]:
        """Relation for every ordered pair ``(a, b)`` with ``a != b``."""
        pos_plus, pos_minus = self._positions()
        result = {}
        mirror = {
            RELATION_LEFT: RELATION_RIGHT,
            RELATION_BELOW: RELATION_ABOVE,
        }
        for i, a in enumerate(self.gamma_plus):
            pa_minus = pos_minus[a]
            for b in self.gamma_plus[i + 1 :]:
                # a precedes b in Gamma+ by construction
                relation = RELATION_LEFT if pa_minus < pos_minus[b] else RELATION_ABOVE
                result[(a, b)] = relation
                result[(b, a)] = mirror.get(relation, RELATION_BELOW)
        return result

    def is_consistent_with(self, rects: Mapping[str, Rect]) -> bool:
        """Whether a placement satisfies every relation of the pair."""
        pos_minus = self._positions()[1]
        for i, a in enumerate(self.gamma_plus):
            if a not in rects:
                continue
            ra = rects[a]
            pa_minus = pos_minus[a]
            for b in self.gamma_plus[i + 1 :]:
                if b not in rects:
                    continue
                rb = rects[b]
                if pa_minus < pos_minus[b]:
                    if not ra.col_end < rb.col:  # a left of b
                        return False
                elif not rb.row_end < ra.row:  # a above b
                    return False
        return True

    # ------------------------------------------------------------------
    def pack(
        self,
        widths: Mapping[str, int],
        heights: Mapping[str, int],
    ) -> Dict[str, Tuple[int, int]]:
        """Minimal packed bottom-left coordinates realizing the pair.

        The classic sequence-pair evaluation: each name's x-coordinate is the
        weighted longest common subsequence of the two sequences restricted to
        the names before it in *both* orders, and symmetrically for y with
        ``Gamma+`` reversed.  Computed in O(n log n) per axis with a Fenwick
        tree holding prefix maxima over match positions — no constraint graph
        is ever built.

        Returns a ``name -> (x, y)`` mapping; the resulting placement
        satisfies every relation of the pair with rectangles of the given
        extents touching edge-to-edge.
        """
        pos_minus = self._positions()[1]
        xs = _pack_axis(self.gamma_plus, pos_minus, widths)
        ys = _pack_axis(tuple(reversed(self.gamma_plus)), pos_minus, heights)
        return {name: (xs[name], ys[name]) for name in self.gamma_plus}

    def packed_rects(
        self,
        widths: Mapping[str, int],
        heights: Mapping[str, int],
    ) -> Dict[str, Rect]:
        """:meth:`pack` with the extents folded into :class:`Rect` objects."""
        return {
            name: Rect(x, y, widths[name], heights[name])
            for name, (x, y) in self.pack(widths, heights).items()
        }

    # ------------------------------------------------------------------
    @staticmethod
    def from_rects(rects: Mapping[str, Rect]) -> "SequencePair":
        """Extract a sequence pair consistent with a non-overlapping placement.

        Pairs whose rectangles overlap in rows (or columns) have their
        relation dictated by the placement and are inserted first.  Pairs
        separated in *both* axes ("diagonal" pairs) admit two valid relations;
        picking one per pair in isolation can create a cyclic combined order
        even for valid placements, so each diagonal pair is resolved against
        the partial orders built so far (horizontal separation preferred,
        falling back to vertical when the horizontal choice would close a
        cycle).

        Raises
        ------
        ValueError
            If two rectangles overlap (no separating direction exists).
        """
        names = sorted(rects.keys())
        forced: List[Tuple[str, str, str]] = []
        flexible: List[Tuple[str, str, Tuple[str, str]]] = []
        for i, a in enumerate(names):
            ra = rects[a]
            for b in names[i + 1 :]:
                rb = rects[b]
                horizontal = _horizontal_relation(ra, rb)
                vertical = _vertical_relation(ra, rb)
                if horizontal is None and vertical is None:
                    raise ValueError(
                        f"rectangles {a!r} ({ra}) and {b!r} ({rb}) overlap; "
                        "a sequence pair requires a non-overlapping placement"
                    )
                if horizontal is not None and vertical is not None:
                    flexible.append((a, b, (horizontal, vertical)))
                else:
                    forced.append((a, b, horizontal or vertical))

        # Gamma+ partial order: a < b when a left-of b OR a above b.
        # Gamma- partial order: a < b when a left-of b OR a below b.
        graph_plus = _Digraph(names)
        graph_minus = _Digraph(names)
        for a, b, relation in forced:
            _add_relation_edges(graph_plus, graph_minus, a, b, relation)
        if not (graph_plus.is_acyclic() and graph_minus.is_acyclic()):
            raise ValueError("placement induces contradictory forced relations")

        for a, b, candidates in flexible:
            for relation in candidates:
                if _relation_is_safe(graph_plus, graph_minus, a, b, relation):
                    _add_relation_edges(graph_plus, graph_minus, a, b, relation)
                    break
            else:
                raise ValueError(
                    f"could not order areas {a!r} and {b!r} without a cycle"
                )

        gamma_plus = tuple(graph_plus.lexicographic_toposort())
        gamma_minus = tuple(graph_minus.lexicographic_toposort())
        return SequencePair(gamma_plus=gamma_plus, gamma_minus=gamma_minus)

    @staticmethod
    def from_floorplan(floorplan) -> "SequencePair":
        """Extract the sequence pair of a solved floorplan (regions + FC areas)."""
        rects = {p.name: p.rect for p in floorplan.all_placements()}
        return SequencePair.from_rects(rects)


# ----------------------------------------------------------------------
# packing internals
# ----------------------------------------------------------------------
class _PrefixMaxTree:
    """Fenwick tree over ``0..size-1`` answering prefix-max queries."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def update(self, index: int, value: int) -> None:
        """Raise the stored maximum at ``index`` to at least ``value``."""
        index += 1
        while index <= self.size:
            if self.tree[index] < value:
                self.tree[index] = value
            index += index & (-index)

    def query(self, index: int) -> int:
        """Maximum over positions ``0..index`` (inclusive); 0 when empty."""
        best = 0
        index += 1
        while index > 0:
            if self.tree[index] > best:
                best = self.tree[index]
            index -= index & (-index)
        return best


def _pack_axis(
    order: Sequence[str],
    pos_minus: Mapping[str, int],
    extents: Mapping[str, int],
) -> Dict[str, int]:
    """Coordinates along one axis via weighted-LCS over match positions.

    Processing names in ``order``, each name's coordinate is the largest
    ``coordinate + extent`` among already-processed names whose ``Gamma-``
    match position precedes its own — exactly the names that must stay on the
    smaller-coordinate side along this axis.
    """
    tree = _PrefixMaxTree(len(order))
    coords: Dict[str, int] = {}
    for name in order:
        position = pos_minus[name]
        coordinate = tree.query(position - 1) if position > 0 else 0
        coords[name] = coordinate
        tree.update(position, coordinate + extents[name])
    return coords


# ----------------------------------------------------------------------
# extraction internals
# ----------------------------------------------------------------------
class _Digraph:
    """Minimal successor-set digraph: exactly what ``from_rects`` needs."""

    __slots__ = ("nodes", "succ")

    def __init__(self, nodes: Iterable[str]) -> None:
        self.nodes: List[str] = list(nodes)
        self.succ: Dict[str, Set[str]] = {node: set() for node in self.nodes}

    def add_edge(self, src: str, dst: str) -> None:
        self.succ[src].add(dst)

    def has_path(self, src: str, dst: str) -> bool:
        """Depth-first reachability (``src == dst`` counts as reachable)."""
        if src == dst:
            return True
        seen = {src}
        stack = [src]
        while stack:
            for nxt in self.succ[stack.pop()]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _indegrees(self) -> Dict[str, int]:
        indegree = {node: 0 for node in self.nodes}
        for targets in self.succ.values():
            for target in targets:
                indegree[target] += 1
        return indegree

    def is_acyclic(self) -> bool:
        """Kahn's algorithm: every node must be consumable."""
        indegree = self._indegrees()
        ready = [node for node, degree in indegree.items() if degree == 0]
        consumed = 0
        while ready:
            node = ready.pop()
            consumed += 1
            for target in self.succ[node]:
                indegree[target] -= 1
                if indegree[target] == 0:
                    ready.append(target)
        return consumed == len(self.nodes)

    def lexicographic_toposort(self) -> List[str]:
        """Topological order, smallest available name first (deterministic)."""
        indegree = self._indegrees()
        ready = [node for node, degree in indegree.items() if degree == 0]
        heapq.heapify(ready)
        order: List[str] = []
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for target in sorted(self.succ[node]):
                indegree[target] -= 1
                if indegree[target] == 0:
                    heapq.heappush(ready, target)
        if len(order) != len(self.nodes):
            raise ValueError("graph contains a cycle; no topological order exists")
        return order


def _horizontal_relation(ra: Rect, rb: Rect) -> str | None:
    """``a``'s horizontal relation to ``b``, or ``None`` if columns overlap."""
    if ra.col_end < rb.col:
        return RELATION_LEFT
    if rb.col_end < ra.col:
        return RELATION_RIGHT
    return None


def _vertical_relation(ra: Rect, rb: Rect) -> str | None:
    """``a``'s vertical relation to ``b``, or ``None`` if rows overlap."""
    if ra.row_end < rb.row:
        return RELATION_BELOW
    if rb.row_end < ra.row:
        return RELATION_ABOVE
    return None


#: Edge directions each relation of ``(a, b)`` adds to ``(Gamma+, Gamma-)``:
#: True = edge a->b, False = edge b->a.
_RELATION_EDGES = {
    RELATION_LEFT: (True, True),
    RELATION_RIGHT: (False, False),
    RELATION_BELOW: (False, True),
    RELATION_ABOVE: (True, False),
}


def _add_relation_edges(
    graph_plus: _Digraph, graph_minus: _Digraph, a: str, b: str, relation: str
) -> None:
    forward_plus, forward_minus = _RELATION_EDGES[relation]
    graph_plus.add_edge(a, b) if forward_plus else graph_plus.add_edge(b, a)
    graph_minus.add_edge(a, b) if forward_minus else graph_minus.add_edge(b, a)


def _relation_is_safe(
    graph_plus: _Digraph, graph_minus: _Digraph, a: str, b: str, relation: str
) -> bool:
    """Whether adding the relation's edges keeps both partial orders acyclic."""
    forward_plus, forward_minus = _RELATION_EDGES[relation]
    plus_src, plus_dst = (a, b) if forward_plus else (b, a)
    minus_src, minus_dst = (a, b) if forward_minus else (b, a)
    return not graph_plus.has_path(plus_dst, plus_src) and not graph_minus.has_path(
        minus_dst, minus_src
    )
