"""Solved placements.

A :class:`Floorplan` holds the rectangle assigned to every reconfigurable
region and to every *free-compatible area* reserved for relocation, plus the
metadata of the solve that produced it.  It is a plain data object: metrics
live in :mod:`repro.floorplan.metrics`, feasibility checking in
:mod:`repro.floorplan.verify`, and rendering in :mod:`repro.analysis.render`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.device.grid import FPGADevice
from repro.device.resources import ResourceVector
from repro.floorplan.geometry import Rect
from repro.floorplan.problem import FloorplanProblem


@dataclasses.dataclass(frozen=True)
class RegionPlacement:
    """The rectangle assigned to one area (region or free-compatible area).

    Attributes
    ----------
    name:
        Area name.  Free-compatible areas follow the paper's naming scheme:
        the region name followed by a copy number (e.g. ``"Signal Decoder 2"``).
    rect:
        The assigned rectangle.
    compatible_with:
        For free-compatible areas, the name of the region whose bitstreams can
        be relocated into this area; ``None`` for ordinary regions.
    satisfied:
        For soft (relocation-as-a-metric) areas, whether the compatibility
        constraints were actually satisfied in the solution (``v[c] == 0``).
    """

    name: str
    rect: Rect
    compatible_with: Optional[str] = None
    satisfied: bool = True

    @property
    def is_free_compatible_area(self) -> bool:
        """True when this placement is a reserved relocation target."""
        return self.compatible_with is not None

    def covered_resources(self, device: FPGADevice) -> ResourceVector:
        """Resources of the tiles covered on ``device``."""
        total = ResourceVector.zero()
        for col, row in self.rect.cells():
            total = total + device.tile_type_at(col, row).resources
        return total

    def covered_frames(self, device: FPGADevice) -> int:
        """Configuration frames of the tiles covered on ``device``."""
        return sum(
            device.tile_type_at(col, row).frames for col, row in self.rect.cells()
        )

    def covered_tiles_by_type(self, device: FPGADevice) -> Dict[str, int]:
        """Number of covered tiles per tile-type name."""
        counts: Dict[str, int] = {}
        for col, row in self.rect.cells():
            name = device.tile_type_at(col, row).name
            counts[name] = counts.get(name, 0) + 1
        return counts


@dataclasses.dataclass
class Floorplan:
    """A (possibly partial) solution to a :class:`FloorplanProblem`.

    Attributes
    ----------
    problem:
        The problem the floorplan answers.
    placements:
        Placements of the reconfigurable regions, keyed by region name.
    free_areas:
        Placements of the reserved free-compatible areas, keyed by area name.
    objective:
        Objective value reported by the solver (``nan`` for heuristics that do
        not compute it).
    solve_time:
        Wall-clock seconds spent producing the floorplan.
    solver_status:
        Free-form status string (``"optimal"``, ``"feasible"``, heuristic name).
    metadata:
        Additional solver-specific information (model statistics, node counts).
    """

    problem: FloorplanProblem
    placements: Dict[str, RegionPlacement] = dataclasses.field(default_factory=dict)
    free_areas: Dict[str, RegionPlacement] = dataclasses.field(default_factory=dict)
    objective: float = float("nan")
    solve_time: float = 0.0
    solver_status: str = ""
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def device(self) -> FPGADevice:
        """The device the floorplan targets."""
        return self.problem.device

    def placement_for(self, name: str) -> RegionPlacement:
        """Placement of a region or free-compatible area by name."""
        if name in self.placements:
            return self.placements[name]
        if name in self.free_areas:
            return self.free_areas[name]
        raise KeyError(f"no placement for {name!r}")

    def all_placements(self) -> Iterator[RegionPlacement]:
        """Iterate region placements then free-compatible-area placements."""
        yield from self.placements.values()
        yield from self.free_areas.values()

    def all_rects(self) -> List[Rect]:
        """Rectangles of every placed area."""
        return [p.rect for p in self.all_placements()]

    @property
    def is_complete(self) -> bool:
        """Whether every region of the problem has a placement."""
        return all(name in self.placements for name in self.problem.region_names)

    @property
    def num_free_compatible_areas(self) -> int:
        """Number of *satisfied* free-compatible areas (Table II column)."""
        return sum(1 for p in self.free_areas.values() if p.satisfied)

    def free_areas_for(self, region_name: str) -> List[RegionPlacement]:
        """Free-compatible areas reserved for a given region."""
        return [
            p for p in self.free_areas.values() if p.compatible_with == region_name
        ]

    # ------------------------------------------------------------------
    def add_placement(self, placement: RegionPlacement) -> None:
        """Add a placement, routing it to regions or free areas as appropriate."""
        if placement.is_free_compatible_area:
            self.free_areas[placement.name] = placement
        else:
            self.placements[placement.name] = placement

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict representation for serialization and reports."""

        def encode(placement: RegionPlacement) -> Dict[str, object]:
            return {
                "col": placement.rect.col,
                "row": placement.rect.row,
                "width": placement.rect.width,
                "height": placement.rect.height,
                "compatible_with": placement.compatible_with,
                "satisfied": placement.satisfied,
            }

        return {
            "problem": self.problem.name,
            "device": self.device.name,
            "objective": self.objective,
            "solver_status": self.solver_status,
            "solve_time": self.solve_time,
            "placements": {name: encode(p) for name, p in self.placements.items()},
            "free_areas": {name: encode(p) for name, p in self.free_areas.items()},
        }

    @classmethod
    def from_dict(
        cls, problem: FloorplanProblem, data: Mapping[str, object]
    ) -> "Floorplan":
        """Inverse of :meth:`to_dict` (the problem object is supplied, not
        deserialized — the encoding only stores its name)."""

        def decode(name: str, encoded: Mapping[str, object]) -> RegionPlacement:
            return RegionPlacement(
                name=name,
                rect=Rect(
                    encoded["col"], encoded["row"], encoded["width"], encoded["height"]
                ),
                compatible_with=encoded.get("compatible_with"),
                satisfied=encoded.get("satisfied", True),
            )

        floorplan = cls(
            problem=problem,
            objective=data.get("objective", float("nan")),
            solve_time=data.get("solve_time", 0.0),
            solver_status=data.get("solver_status", ""),
        )
        for name, encoded in data.get("placements", {}).items():
            floorplan.placements[name] = decode(name, encoded)
        for name, encoded in data.get("free_areas", {}).items():
            floorplan.free_areas[name] = decode(name, encoded)
        return floorplan

    @staticmethod
    def from_rects(
        problem: FloorplanProblem,
        rects: Mapping[str, Rect],
        free_rects: Mapping[str, Tuple[Rect, str]] | None = None,
        solver_status: str = "manual",
    ) -> "Floorplan":
        """Build a floorplan from plain rectangles (used by heuristics/tests)."""
        floorplan = Floorplan(problem=problem, solver_status=solver_status)
        for name, rect in rects.items():
            floorplan.placements[name] = RegionPlacement(name=name, rect=rect)
        for name, (rect, region_name) in (free_rects or {}).items():
            floorplan.free_areas[name] = RegionPlacement(
                name=name, rect=rect, compatible_with=region_name
            )
        return floorplan

    def __repr__(self) -> str:
        return (
            f"Floorplan({self.problem.name!r}, {len(self.placements)} regions placed, "
            f"{len(self.free_areas)} free-compatible areas, status={self.solver_status!r})"
        )
