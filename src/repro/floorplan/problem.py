"""Designer-facing floorplanning problem description.

A :class:`FloorplanProblem` bundles the target device, the reconfigurable
regions with their resource requirements (set ``N`` and parameters ``c[n,t]``
of the paper) and the inter-region connectivity used by the wirelength cost.
"""

from __future__ import annotations

import dataclasses
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.device.grid import FPGADevice
from repro.device.partition import ColumnarPartition, columnar_partition
from repro.device.resources import ResourceType, ResourceVector


@dataclasses.dataclass(frozen=True)
class Region:
    """A reconfigurable region to be placed.

    Attributes
    ----------
    name:
        Unique region name (``"Matched Filter"`` ...).
    requirements:
        Tiles required per type (parameter ``c[n,t]``).
    max_width, max_height:
        Optional designer-imposed caps on the region extent, in tiles.
    """

    name: str
    requirements: ResourceVector
    max_width: Optional[int] = None
    max_height: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.requirements.is_zero():
            raise ValueError(f"region {self.name!r} requires no resources")

    def required_frames(self, frames_per_type: Dict[ResourceType, int]) -> int:
        """Minimum configuration frames needed (last column of Table I).

        ``frames_per_type`` maps each resource type to the frames of the tile
        type that provides it (36/30/28 for CLB/BRAM/DSP on the Virtex-5).
        """
        total = 0
        for rtype, count in self.requirements:
            if count == 0:
                continue
            if rtype not in frames_per_type:
                raise KeyError(f"no tile type provides resource {rtype}")
            total += count * frames_per_type[rtype]
        return total

    @property
    def total_tiles(self) -> int:
        """Total number of tiles required, regardless of type."""
        return self.requirements.total


@dataclasses.dataclass(frozen=True)
class IOPin:
    """A fixed connection endpoint (I/O pad, static-logic port)."""

    name: str
    col: int
    row: int

    @property
    def center(self) -> Tuple[float, float]:
        """Location used by the wirelength cost."""
        return (float(self.col), float(self.row))


@dataclasses.dataclass(frozen=True)
class Connection:
    """A weighted connection between two endpoints (regions or pins).

    The weight is typically the bus width in wires; the SDR case study uses a
    64-bit bus between consecutive modules.
    """

    source: str
    target: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("connection endpoints must differ")
        if self.weight <= 0:
            raise ValueError("connection weight must be positive")

    def endpoints(self) -> Tuple[str, str]:
        """The two endpoint names."""
        return (self.source, self.target)


class FloorplanProblem:
    """A complete floorplanning instance.

    Parameters
    ----------
    device:
        Target FPGA.
    regions:
        Reconfigurable regions to place.
    connections:
        Weighted connectivity between regions and/or pins.
    pins:
        Fixed endpoints referenced by connections.
    name:
        Instance name used in reports.
    """

    def __init__(
        self,
        device: FPGADevice,
        regions: Sequence[Region],
        connections: Sequence[Connection] = (),
        pins: Sequence[IOPin] = (),
        name: str = "floorplan",
    ) -> None:
        self.device = device
        self.regions: Tuple[Region, ...] = tuple(regions)
        self.connections: Tuple[Connection, ...] = tuple(connections)
        self.pins: Tuple[IOPin, ...] = tuple(pins)
        self.name = name
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError("region names must be unique")
        pin_names = [p.name for p in self.pins]
        if len(set(pin_names)) != len(pin_names):
            raise ValueError("pin names must be unique")
        if set(names) & set(pin_names):
            raise ValueError("pin names must not collide with region names")
        known = set(names) | set(pin_names)
        for connection in self.connections:
            for endpoint in connection.endpoints():
                if endpoint not in known:
                    raise ValueError(
                        f"connection endpoint {endpoint!r} is neither a region nor a pin"
                    )
        for pin in self.pins:
            if not (0 <= pin.col < self.device.width and 0 <= pin.row < self.device.height):
                raise ValueError(f"pin {pin.name!r} lies outside the device")

        available = self.device.total_resources()
        demanded = ResourceVector.zero()
        for region in self.regions:
            demanded = demanded + region.requirements
        if not available.covers(demanded):
            missing = available.deficit(demanded)
            raise ValueError(
                f"device {self.device.name!r} cannot satisfy aggregate demand; "
                f"missing {missing.as_dict()}"
            )

    # ------------------------------------------------------------------
    @cached_property
    def partition(self) -> ColumnarPartition:
        """Columnar partition of the device (computed once, cached)."""
        return columnar_partition(self.device)

    def region_by_name(self, name: str) -> Region:
        """Look a region up by name."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")

    def pin_by_name(self, name: str) -> IOPin:
        """Look a pin up by name."""
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise KeyError(f"unknown pin {name!r}")

    @property
    def region_names(self) -> List[str]:
        """Region names in declaration order."""
        return [r.name for r in self.regions]

    def frames_per_resource_type(self) -> Dict[ResourceType, int]:
        """Frames of the tile type providing each resource type.

        Assumes, like the paper, that each tile type contributes a single
        resource type (CLB/BRAM/DSP tiles); raises if a resource type is
        provided by tile types with different frame counts.
        """
        mapping: Dict[ResourceType, int] = {}
        for tile_type in self.device.tile_type_list:
            for rtype, count in tile_type.resources:
                if count <= 0:
                    continue
                if rtype in mapping and mapping[rtype] != tile_type.frames:
                    raise ValueError(
                        f"resource {rtype} provided by tile types with different frame counts"
                    )
                mapping[rtype] = tile_type.frames
        return mapping

    def required_frames(self, region: Region | str) -> int:
        """Minimum frames required by a region on this device (Table I column)."""
        if isinstance(region, str):
            region = self.region_by_name(region)
        return region.required_frames(self.frames_per_resource_type())

    def total_required_frames(self) -> int:
        """Sum of minimum frames over all regions."""
        return sum(self.required_frames(region) for region in self.regions)

    def connection_weight_total(self) -> float:
        """Sum of connection weights (used to normalize the wirelength cost)."""
        return sum(connection.weight for connection in self.connections)

    def __repr__(self) -> str:
        return (
            f"FloorplanProblem({self.name!r}, device={self.device.name!r}, "
            f"{len(self.regions)} regions, {len(self.connections)} connections)"
        )
