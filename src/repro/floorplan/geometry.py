"""Rectangles and geometric helpers used throughout the floorplanner."""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle of tiles.

    ``col``/``row`` locate the bottom-left tile (0-based, inclusive); ``width``
    and ``height`` are extents in tiles, so the rectangle covers columns
    ``col .. col+width-1`` and rows ``row .. row+height-1``.
    """

    col: int
    row: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"rectangle must have positive extent, got {self.width}x{self.height}")

    # ------------------------------------------------------------------
    @property
    def col_end(self) -> int:
        """Rightmost column covered (inclusive)."""
        return self.col + self.width - 1

    @property
    def row_end(self) -> int:
        """Topmost row covered (inclusive)."""
        return self.row + self.height - 1

    @property
    def area(self) -> int:
        """Number of tiles covered."""
        return self.width * self.height

    @property
    def perimeter(self) -> int:
        """Half-perimeter times two, in tile units."""
        return 2 * (self.width + self.height)

    @property
    def center(self) -> Tuple[float, float]:
        """Geometric centre ``(x, y)`` in tile coordinates."""
        return (self.col + (self.width - 1) / 2.0, self.row + (self.height - 1) / 2.0)

    # ------------------------------------------------------------------
    def contains(self, col: int, row: int) -> bool:
        """Whether the rectangle covers the given cell."""
        return self.col <= col <= self.col_end and self.row <= row <= self.row_end

    def cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate covered ``(col, row)`` cells."""
        for col in range(self.col, self.col + self.width):
            for row in range(self.row, self.row + self.height):
                yield col, row

    def columns(self) -> range:
        """Covered columns."""
        return range(self.col, self.col + self.width)

    def rows(self) -> range:
        """Covered rows."""
        return range(self.row, self.row + self.height)

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one tile."""
        return not (
            self.col_end < other.col
            or other.col_end < self.col
            or self.row_end < other.row
            or other.row_end < self.row
        )

    def intersection_area(self, other: "Rect") -> int:
        """Number of tiles shared with ``other``."""
        dx = min(self.col_end, other.col_end) - max(self.col, other.col) + 1
        dy = min(self.row_end, other.row_end) - max(self.row, other.row) + 1
        return max(0, dx) * max(0, dy)

    def within(self, width: int, height: int) -> bool:
        """Whether the rectangle fits inside a ``width x height`` grid."""
        return self.col >= 0 and self.row >= 0 and self.col_end < width and self.row_end < height

    def translated(self, dcol: int, drow: int) -> "Rect":
        """A copy moved by ``(dcol, drow)`` tiles."""
        return Rect(self.col + dcol, self.row + drow, self.width, self.height)

    def __repr__(self) -> str:
        return f"Rect(col={self.col}, row={self.row}, w={self.width}, h={self.height})"


def half_perimeter_wirelength(points: Sequence[Tuple[float, float]]) -> float:
    """Half-perimeter wirelength (HPWL) of a set of points."""
    if not points:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Manhattan distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def total_overlap_area(rects: Iterable[Rect]) -> int:
    """Total pairwise overlap (in tiles) of a collection of rectangles."""
    rect_list = list(rects)
    total = 0
    for i, first in enumerate(rect_list):
        for second in rect_list[i + 1 :]:
            total += first.intersection_area(second)
    return total
