"""MILP-based floorplanner for partially-reconfigurable FPGAs.

This package re-implements the FCCM'14 floorplanner ([10] in the paper) that
the relocation extension builds on:

* :class:`~repro.floorplan.problem.Region` /
  :class:`~repro.floorplan.problem.FloorplanProblem` — the designer-facing
  problem description (regions, resource requirements, connectivity);
* :class:`~repro.floorplan.placement.Floorplan` — a solved placement;
* :mod:`~repro.floorplan.milp_builder` — the occupancy-grid MILP ("O" mode);
* :mod:`~repro.floorplan.sequence_pair` and :mod:`~repro.floorplan.ho` — the
  sequence-pair-constrained "HO" mode seeded by a heuristic solution;
* :class:`~repro.floorplan.solver.FloorplanSolver` — the user-facing facade
  that also wires in the relocation extension of :mod:`repro.relocation`;
* :mod:`~repro.floorplan.metrics` / :mod:`~repro.floorplan.verify` — solution
  metrics and an MILP-independent feasibility checker.
"""

from repro.floorplan.geometry import Rect
from repro.floorplan.problem import Connection, FloorplanProblem, IOPin, Region
from repro.floorplan.placement import Floorplan, RegionPlacement
from repro.floorplan.metrics import FloorplanMetrics, ObjectiveWeights, evaluate_floorplan
from repro.floorplan.sequence_pair import SequencePair
from repro.floorplan.verify import VerificationReport, verify_floorplan
from repro.floorplan.solver import FloorplanSolver, SolveReport

__all__ = [
    "Rect",
    "Region",
    "IOPin",
    "Connection",
    "FloorplanProblem",
    "RegionPlacement",
    "Floorplan",
    "ObjectiveWeights",
    "FloorplanMetrics",
    "evaluate_floorplan",
    "SequencePair",
    "VerificationReport",
    "verify_floorplan",
    "FloorplanSolver",
    "SolveReport",
]
