"""MILP-independent feasibility checking of floorplans.

The verifier re-derives every constraint of the formulation directly from the
geometry of a :class:`~repro.floorplan.placement.Floorplan`:

* placements inside the device;
* no overlap among regions, free-compatible areas and forbidden areas;
* resource coverage of every region;
* optional caps on region extent;
* free-compatible areas actually compatible (Definition .2) with their region.

It is used by the tests to cross-check the MILP solutions, by the heuristics
to validate their output, and by the property-based tests as the ground truth
oracle.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.floorplan.placement import Floorplan, RegionPlacement


@dataclasses.dataclass
class VerificationReport:
    """Outcome of :func:`verify_floorplan`."""

    violations: List[str] = dataclasses.field(default_factory=list)
    warnings: List[str] = dataclasses.field(default_factory=list)

    @property
    def is_feasible(self) -> bool:
        """True when no hard violation was found."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.is_feasible

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.is_feasible:
            extra = f" ({len(self.warnings)} warnings)" if self.warnings else ""
            return "feasible" + extra
        return f"INFEASIBLE: {len(self.violations)} violations"


def verify_floorplan(
    floorplan: Floorplan, check_relocation: bool = True
) -> VerificationReport:
    """Check a floorplan against every constraint of the problem.

    Parameters
    ----------
    floorplan:
        The floorplan to check.
    check_relocation:
        Also check that every *satisfied* free-compatible area is actually
        free-compatible (Definition .2) with its region.
    """
    report = VerificationReport()
    problem = floorplan.problem
    device = problem.device

    # every region placed
    for name in problem.region_names:
        if name not in floorplan.placements:
            report.violations.append(f"region {name!r} has no placement")

    all_areas: List[RegionPlacement] = list(floorplan.all_placements())

    # bounds and forbidden cells
    for placement in all_areas:
        if placement.is_free_compatible_area and not placement.satisfied:
            continue  # unsatisfied soft areas carry no geometric guarantees
        rect = placement.rect
        if not rect.within(device.width, device.height):
            report.violations.append(
                f"{placement.name!r} at {rect} exceeds device bounds "
                f"{device.width}x{device.height}"
            )
            continue
        for col, row in rect.cells():
            if device.is_forbidden(col, row):
                report.violations.append(
                    f"{placement.name!r} covers forbidden cell ({col}, {row})"
                )
                break

    # pairwise non-overlap
    effective = [
        p for p in all_areas if not (p.is_free_compatible_area and not p.satisfied)
    ]
    for i, first in enumerate(effective):
        for second in effective[i + 1 :]:
            if first.rect.overlaps(second.rect):
                report.violations.append(
                    f"{first.name!r} and {second.name!r} overlap "
                    f"({first.rect} vs {second.rect})"
                )

    # resource coverage and extent caps
    for name, placement in floorplan.placements.items():
        try:
            region = problem.region_by_name(name)
        except KeyError:
            report.warnings.append(f"placement {name!r} does not match any region")
            continue
        if not placement.rect.within(device.width, device.height):
            continue  # already reported above
        covered = placement.covered_resources(device)
        if not covered.covers(region.requirements):
            missing = covered.deficit(region.requirements)
            report.violations.append(
                f"region {name!r} lacks resources {missing.as_dict()} "
                f"(covers {covered.as_dict()})"
            )
        if region.max_width is not None and placement.rect.width > region.max_width:
            report.violations.append(
                f"region {name!r} wider than its cap ({placement.rect.width} > {region.max_width})"
            )
        if region.max_height is not None and placement.rect.height > region.max_height:
            report.violations.append(
                f"region {name!r} taller than its cap ({placement.rect.height} > {region.max_height})"
            )

    # free-compatible areas actually compatible with their region
    if check_relocation and floorplan.free_areas:
        from repro.relocation.compatibility import areas_compatible

        partition = problem.partition
        for name, area in floorplan.free_areas.items():
            if not area.satisfied:
                report.warnings.append(
                    f"free-compatible area {name!r} was not satisfied by the solver"
                )
                continue
            if area.compatible_with is None:
                report.violations.append(
                    f"free-compatible area {name!r} does not reference a region"
                )
                continue
            if area.compatible_with not in floorplan.placements:
                report.violations.append(
                    f"free-compatible area {name!r} references unplaced region "
                    f"{area.compatible_with!r}"
                )
                continue
            region_rect = floorplan.placements[area.compatible_with].rect
            if not areas_compatible(partition, region_rect, area.rect):
                report.violations.append(
                    f"area {name!r} at {area.rect} is not compatible with region "
                    f"{area.compatible_with!r} at {region_rect}"
                )

    return report
