"""Minimal asyncio HTTP/1.1 plumbing (stdlib only).

The gateway needs exactly four things from HTTP: parse a request line plus
headers, read a ``Content-Length`` body, write a JSON response, and keep the
connection alive between requests so closed-loop clients are not paying a TCP
handshake per solve.  This module provides those four things over
``asyncio.StreamReader``/``StreamWriter`` and nothing else — no chunked
encoding, no TLS, no HTTP/2.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

__all__ = [
    "HttpError",
    "HttpRequest",
    "HtmlPayload",
    "read_request",
    "write_response",
    "parse_query",
    "parse_response_headers",
    "REASONS",
]


def parse_query(query: str) -> Dict[str, str]:
    """``"a=1&b"`` → ``{"a": "1", "b": ""}`` (no decoding; keys are ASCII)."""
    params: Dict[str, str] = {}
    for pair in query.split("&"):
        if not pair:
            continue
        name, _sep, value = pair.partition("=")
        params[name] = value
    return params

#: Largest accepted request body; big devices encode to ~1 MB, so 32 MB is
#: generous while still bounding a hostile Content-Length.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Largest accepted request line + header block.
MAX_HEADER_BYTES = 64 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HtmlPayload(str):
    """A response body to serve as ``text/html`` instead of JSON.

    The gateway/router response path is JSON-first; the dashboard wraps its
    rendered page in this marker type so :func:`encode_response` picks the
    right content type without a parallel write path.
    """


class HttpError(Exception):
    """A malformed request; carries the status the connection should answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> object:
        """Decode the body as JSON (:class:`HttpError` 400 on failure)."""
        if not self.body:
            raise HttpError(400, "empty request body")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def _read_line(reader, limit: int) -> bytes:
    try:
        line = await reader.readline()
    except ValueError as exc:
        # the StreamReader's own buffer limit tripped before ours could:
        # surface it as the same 413 instead of an unhandled exception
        raise HttpError(413, "header line too long") from exc
    if len(line) > limit:
        raise HttpError(413, "header line too long")
    return line


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a cleanly closed connection.

    Raises :class:`HttpError` on malformed input — the caller answers with the
    carried status and closes the connection.
    """
    request_line = await _read_line(reader, MAX_HEADER_BYTES)
    if not request_line:
        return None  # EOF between requests: client closed the keep-alive
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, path, _version = parts

    headers: Dict[str, str] = {}
    consumed = len(request_line)
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES)
        consumed += len(line)
        if consumed > MAX_HEADER_BYTES:
            raise HttpError(413, "header block too large")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "connection closed mid-headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


def encode_response(
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize a JSON response (dict payload) or raw bytes."""
    if isinstance(payload, HtmlPayload):
        body = str(payload).encode("utf-8")
        content_type = "text/html; charset=utf-8"
    elif isinstance(payload, (bytes, bytearray)):
        body = bytes(payload)
        content_type = "application/octet-stream"
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def write_response(
    writer,
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Write one response and flush it."""
    writer.write(encode_response(status, payload, keep_alive, extra_headers))
    await writer.drain()


def parse_response(raw_head: bytes, body: bytes) -> Tuple[int, object]:
    """Client-side response decoding (used by the load generator)."""
    status_line = raw_head.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(400, f"malformed status line: {status_line!r}")
    status = int(parts[1])
    payload: object = None
    if body:
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = body
    return status, payload


def parse_response_headers(raw_head: bytes) -> Dict[str, str]:
    """Client-side header decoding: lower-cased names, values stripped.

    The chaos invariant checker and the loadgen smoke need to see response
    headers (``Retry-After``, ``X-Repro-Queue-Depth``) that
    :func:`parse_response` discards; malformed lines are skipped, never fatal.
    """
    headers: Dict[str, str] = {}
    for line in raw_head.split(b"\r\n")[1:]:
        name, sep, value = line.decode("latin-1", errors="replace").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return headers
