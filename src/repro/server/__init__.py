"""Async solve gateway: the network front door of the solver fleet.

Everything built below this package — the MILP pipeline, the batch service,
the portfolio — is a blocking library call.  ``repro.server`` turns it into a
system: an asyncio JSON-over-HTTP gateway that validates and fingerprints
incoming solve requests (:mod:`~repro.server.protocol`), answers repeats
inline from the content-addressed :class:`~repro.service.cache.SolveCache`,
coalesces cache misses in a time/size micro-batch window with per-batch dedup
(:mod:`~repro.server.batcher`), and executes batches on worker shards running
:class:`~repro.service.executor.BatchSolver` or portfolio races off the event
loop (:mod:`~repro.server.workers`).  Admission control
(:mod:`~repro.server.admission`) sheds load with 429s — per-client token
buckets at the front door, a bounded solver queue behind the cache — and
``/healthz`` + ``/metrics`` expose queue depth, hit rate and latency
histograms through the :mod:`repro.analysis` tables.

Start one with ``python -m repro.server``; throw load at it with
:mod:`repro.server.loadgen` (open-loop Poisson arrivals reusing
:mod:`repro.sim.traffic`, or closed-loop concurrent clients)::

    python -m repro.server --port 8765 &
    python -m repro.server.loadgen --port 8765 --mode closed --clients 4

Everything is stdlib ``asyncio`` — no new dependencies.
"""

from repro.server.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.server.batcher import MicroBatcher
from repro.server.gateway import BackgroundGateway, GatewayConfig, SolveGateway
from repro.server.metrics import GatewayMetrics, LatencyHistogram
from repro.server.protocol import (
    ProtocolError,
    device_from_dict,
    job_from_dict,
    job_to_dict,
    problem_from_dict,
    relocation_from_list,
)
from repro.server.workers import WorkerPool

#: Load-generator names resolved lazily (PEP 562) so ``python -m
#: repro.server.loadgen`` does not re-execute an already-imported module.
_LOADGEN_NAMES = (
    "GatewayClient",
    "LoadResult",
    "demo_payloads",
    "closed_loop",
    "open_loop",
    "run_closed_loop",
    "run_open_loop",
)


def __getattr__(name: str):
    if name in _LOADGEN_NAMES:
        from repro.server import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "GatewayConfig",
    "SolveGateway",
    "BackgroundGateway",
    "MicroBatcher",
    "WorkerPool",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "GatewayMetrics",
    "LatencyHistogram",
    "ProtocolError",
    "job_from_dict",
    "job_to_dict",
    "problem_from_dict",
    "device_from_dict",
    "relocation_from_list",
    "GatewayClient",
    "LoadResult",
    "demo_payloads",
    "closed_loop",
    "open_loop",
    "run_closed_loop",
    "run_open_loop",
]
