"""Command-line entry point: ``python -m repro.server``.

Starts a gateway and serves until SIGINT/SIGTERM, then drains gracefully
(refuse new work with 503, finish in-flight batches, close the listener).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from typing import Optional, Sequence

from repro.server.gateway import GatewayConfig, SolveGateway


def build_config(args: argparse.Namespace) -> GatewayConfig:
    return GatewayConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        max_queue_depth=args.queue_depth if args.queue_depth > 0 else None,
        rate_limit=args.rate_limit,
        shards=args.shards,
        batch_workers=args.batch_workers,
        executor=args.executor,
        solver=args.solver,
        cache_dir=args.cache_dir,
        cache_capacity=args.cache_capacity if args.cache_capacity > 0 else None,
        trust_client_id=args.trust_client_id,
        brownout_watermark=(
            args.brownout_watermark if args.brownout_watermark > 0 else None
        ),
        tracing=not args.no_trace,
        trace_capacity=args.trace_capacity,
        trace_sink=args.trace_sink,
    )


async def serve(config: GatewayConfig, quiet: bool = False) -> None:
    gateway = SolveGateway(config)
    await gateway.start()
    if not quiet:
        print(
            f"repro.server listening on http://{config.host}:{gateway.port} "
            f"(batch window {config.batch_window * 1e3:.0f} ms x {config.max_batch}, "
            f"{config.shards} shard(s), queue depth "
            f"{config.max_queue_depth if config.max_queue_depth else 'unbounded'})",
            flush=True,
        )

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # pragma: no cover - win32
            loop.add_signal_handler(signum, stop.set)

    serve_task = asyncio.ensure_future(gateway.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
    finally:
        if not quiet:
            print("draining ...", flush=True)
        serve_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await gateway.drain()
        stop_task.cancel()
        if not quiet:
            snapshot = gateway.metrics_snapshot()
            print(snapshot["tables"]["counters"], flush=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve floorplanning solve requests over JSON/HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--max-batch", type=int, default=8, help="micro-batch size cap")
    parser.add_argument(
        "--batch-window", type=float, default=0.01, help="micro-batch window (s)"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="solver queue bound (0 = unbounded)"
    )
    parser.add_argument(
        "--rate-limit", type=float, default=None, help="per-client requests/second"
    )
    parser.add_argument("--shards", type=int, default=2, help="concurrent worker shards")
    parser.add_argument(
        "--batch-workers", type=int, default=4, help="solver workers per shard"
    )
    parser.add_argument(
        "--executor", choices=("thread", "process", "serial"), default="thread"
    )
    parser.add_argument("--solver", choices=("batch", "portfolio"), default="batch")
    parser.add_argument("--cache-dir", default=None, help="persist solve results here")
    parser.add_argument(
        "--trust-client-id", action="store_true",
        help="rate-limit by X-Client-Id header (only behind an authenticating proxy)",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=1024,
        help="in-memory LRU entries (0 = unbounded)",
    )
    parser.add_argument(
        "--brownout-watermark", type=int, default=0,
        help="queue depth past which solves brown out to heuristic-only "
        "degraded answers (0 = disabled)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="disable request tracing (/debug/traces answers 404)",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=256,
        help="completed traces kept in the in-memory ring",
    )
    parser.add_argument(
        "--trace-sink", default=None, metavar="PATH",
        help="also append completed traces to this rotating JSONL file "
        "(feed it to `python -m repro.obs export` for capture->replay)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    try:
        asyncio.run(serve(build_config(args), quiet=args.quiet))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C before handler installs
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
