"""Worker shards: run solver batches off the gateway event loop.

A :class:`WorkerPool` owns ``shards`` dedicated threads.  Each flushed batch
occupies one shard thread, which runs it through the existing service-layer
machinery — :class:`~repro.service.executor.BatchSolver` (default) or a
:func:`~repro.service.portfolio.run_portfolio` race per unique job — so the
event loop never blocks on a MILP.  The shard count bounds concurrent batch
execution; ``batch_workers`` bounds intra-batch parallelism, giving
``shards * batch_workers`` as the solver-process/thread ceiling.

The pool shares the gateway's :class:`~repro.service.cache.SolveCache`, so
results solved here are the cache hits the next request is answered with
inline.
"""

from __future__ import annotations

import asyncio
import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional

from repro.service.cache import SolveCache
from repro.service.executor import BatchSolver, execute_job
from repro.service.jobs import SolveJob
from repro.service.results import JobResult

__all__ = ["WorkerPool", "MIN_CLAMPED_TIME_LIMIT"]

SOLVER_KINDS = ("batch", "portfolio")

#: Floor on a deadline-clamped solver time limit: below this the backend
#: cannot even build the model, so the clamp would buy nothing but an error.
MIN_CLAMPED_TIME_LIMIT = 0.05


class WorkerPool:
    """A fixed pool of shard threads executing solve batches.

    Parameters
    ----------
    cache:
        Shared solve cache (results land here; the gateway answers repeats
        inline from it).
    shards:
        Number of batches that may execute concurrently.
    batch_workers:
        ``max_workers`` handed to each shard's :class:`BatchSolver`.
    executor:
        Executor kind inside a shard: ``"thread"`` (default — the scipy/HiGHS
        backend releases the GIL during the solve), ``"process"`` or
        ``"serial"``.
    solver:
        ``"batch"`` (one BatchSolver per batch) or ``"portfolio"`` (race the
        default strategy portfolio per unique job; wins on hard instances,
        costs a full portfolio per job).
    portfolio_deadline:
        Shared wall-clock budget per portfolio race (``solver="portfolio"``).
    brownout:
        Optional zero-argument predicate polled once per batch.  While it
        returns ``True`` the pool serves heuristic-only (annealing) results
        flagged ``degraded`` instead of running MILP solves — the gateway
        wires its overload watermark here.
    """

    def __init__(
        self,
        cache: Optional[SolveCache] = None,
        shards: int = 2,
        batch_workers: Optional[int] = None,
        executor: str = "thread",
        solver: str = "batch",
        portfolio_deadline: Optional[float] = None,
        brownout: Optional[Callable[[], bool]] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if solver not in SOLVER_KINDS:
            raise ValueError(f"solver must be one of {SOLVER_KINDS}, got {solver!r}")
        self.cache = cache if cache is not None else SolveCache()
        self.shards = shards
        self.batch_workers = batch_workers
        self.executor = executor
        self.solver = solver
        self.portfolio_deadline = portfolio_deadline
        self.brownout = brownout
        self._threads = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="repro-shard"
        )

    # ------------------------------------------------------------------
    async def solve_batch(
        self, jobs: List[SolveJob], budgets: Optional[Dict[str, float]] = None
    ) -> Dict[str, JobResult]:
        """Solve one (already deduplicated) batch on a shard thread.

        ``budgets`` maps fingerprints to the remaining wall-clock seconds of
        the most impatient waiter; a budget tighter than the job's own
        ``time_limit`` clamps the solver, and a clamped solve that could not
        prove optimality comes back ``degraded`` (and is never cached).
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._threads, self._solve_sync, list(jobs), dict(budgets or {})
        )

    def _solve_sync(
        self, jobs: List[SolveJob], budgets: Dict[str, float]
    ) -> Dict[str, JobResult]:
        if self.brownout is not None and self.brownout():
            return self._solve_heuristic(jobs)
        if self.solver == "portfolio":
            return self._solve_portfolio(jobs, budgets)
        results: Dict[str, JobResult] = {}
        clamped = [job for job in jobs if self._budget_binds(job, budgets)]
        for job in clamped:
            results[job.fingerprint] = self._solve_clamped(job, budgets[job.fingerprint])
        unclamped = [job for job in jobs if job.fingerprint not in results]
        if not unclamped:
            return results
        # single-job batches (the max_batch=1 configuration, or a window that
        # caught one request) run in-process: no point spawning a pool of one
        executor = "serial" if len(unclamped) == 1 else self.executor
        solver = BatchSolver(
            cache=self.cache, max_workers=self.batch_workers, executor=executor
        )
        for _index, job, result in solver.iter_results(unclamped):
            results[job.fingerprint] = result
        return results

    # ------------------------------------------------------------------
    @staticmethod
    def _budget_binds(job: SolveJob, budgets: Dict[str, float]) -> bool:
        budget = budgets.get(job.fingerprint)
        if budget is None:
            return False
        limit = job.options.time_limit
        return limit is None or budget < limit

    def _solve_clamped(self, job: SolveJob, budget: float) -> JobResult:
        """One solve under a client deadline tighter than its own time limit.

        The job is re-solved with ``time_limit`` clamped to the remaining
        budget.  A clamp changes the job's content fingerprint, so the result
        is re-keyed to the *request* fingerprint before fan-out; it is marked
        ``degraded`` (and kept out of the cache) unless the solver proved
        optimality anyway — in which case the clamp did not bind and the
        answer is canonical.
        """
        hit = self.cache.get(job.fingerprint)
        if hit is not None:
            return dataclasses.replace(hit, cached=True)
        clamp = max(budget, MIN_CLAMPED_TIME_LIMIT)
        derived = dataclasses.replace(job, options=job.options.replace(time_limit=clamp))
        result = execute_job(derived)
        result = dataclasses.replace(result, fingerprint=job.fingerprint)
        if result.status == "optimal":
            self.cache.put(result)
            return result
        return dataclasses.replace(result, degraded=True)

    def _solve_heuristic(self, jobs: List[SolveJob]) -> Dict[str, JobResult]:
        """Brown-out path: annealing only, every fresh result ``degraded``."""
        from repro.service.portfolio import HEURISTIC_STRATEGIES, run_strategy

        results: Dict[str, JobResult] = {}
        for job in jobs:
            hit = self.cache.get(job.fingerprint)
            if hit is not None:
                results[job.fingerprint] = dataclasses.replace(hit, cached=True)
                continue
            result = run_strategy(
                HEURISTIC_STRATEGIES[0],
                job.problem,
                relocation=job.relocation,
                options=job.options,
                weights=job.weights,
            )
            results[job.fingerprint] = dataclasses.replace(
                result, fingerprint=job.fingerprint, degraded=True
            )
        return results

    def _solve_portfolio(
        self, jobs: List[SolveJob], budgets: Dict[str, float]
    ) -> Dict[str, JobResult]:
        from repro.service.portfolio import run_portfolio

        results: Dict[str, JobResult] = {}
        for job in jobs:
            hit = self.cache.get(job.fingerprint)
            if hit is not None:
                results[job.fingerprint] = dataclasses.replace(hit, cached=True)
                continue
            deadline = self.portfolio_deadline
            budget = budgets.get(job.fingerprint)
            clamped = budget is not None and (deadline is None or budget < deadline)
            if clamped:
                deadline = max(budget, MIN_CLAMPED_TIME_LIMIT)
            race = run_portfolio(
                job.problem,
                relocation=job.relocation,
                options=job.options,
                weights=job.weights,
                deadline=deadline,
                policy="first_feasible",
                executor="thread",
                max_workers=self.batch_workers,
            )
            result = race.winner_result
            if result is None:
                # no strategy produced a feasible plan: surface the best
                # attempt (sorted like the portfolio's own "best" policy)
                outcomes = sorted(race.outcomes.values(), key=lambda r: r.objective_key())
                result = outcomes[0] if outcomes else JobResult.failure(
                    job, "portfolio produced no outcome"
                )
            # key the outcome by the *request* fingerprint so waiters find it
            result = dataclasses.replace(result, fingerprint=job.fingerprint)
            if clamped and result.status != "optimal":
                result = dataclasses.replace(result, degraded=True)
            elif result.status != "error":
                self.cache.put(result)
            results[job.fingerprint] = result
        return results

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting batches and (optionally) wait for running ones."""
        self._threads.shutdown(wait=wait)
