"""Worker shards: run solver batches off the gateway event loop.

A :class:`WorkerPool` owns ``shards`` dedicated threads.  Each flushed batch
occupies one shard thread, which runs it through the existing service-layer
machinery — :class:`~repro.service.executor.BatchSolver` (default) or a
:func:`~repro.service.portfolio.run_portfolio` race per unique job — so the
event loop never blocks on a MILP.  The shard count bounds concurrent batch
execution; ``batch_workers`` bounds intra-batch parallelism, giving
``shards * batch_workers`` as the solver-process/thread ceiling.

The pool shares the gateway's :class:`~repro.service.cache.SolveCache`, so
results solved here are the cache hits the next request is answered with
inline.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.service.cache import SolveCache
from repro.service.executor import BatchSolver
from repro.service.jobs import SolveJob
from repro.service.results import JobResult

__all__ = ["WorkerPool"]

SOLVER_KINDS = ("batch", "portfolio")


class WorkerPool:
    """A fixed pool of shard threads executing solve batches.

    Parameters
    ----------
    cache:
        Shared solve cache (results land here; the gateway answers repeats
        inline from it).
    shards:
        Number of batches that may execute concurrently.
    batch_workers:
        ``max_workers`` handed to each shard's :class:`BatchSolver`.
    executor:
        Executor kind inside a shard: ``"thread"`` (default — the scipy/HiGHS
        backend releases the GIL during the solve), ``"process"`` or
        ``"serial"``.
    solver:
        ``"batch"`` (one BatchSolver per batch) or ``"portfolio"`` (race the
        default strategy portfolio per unique job; wins on hard instances,
        costs a full portfolio per job).
    portfolio_deadline:
        Shared wall-clock budget per portfolio race (``solver="portfolio"``).
    """

    def __init__(
        self,
        cache: Optional[SolveCache] = None,
        shards: int = 2,
        batch_workers: Optional[int] = None,
        executor: str = "thread",
        solver: str = "batch",
        portfolio_deadline: Optional[float] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if solver not in SOLVER_KINDS:
            raise ValueError(f"solver must be one of {SOLVER_KINDS}, got {solver!r}")
        self.cache = cache if cache is not None else SolveCache()
        self.shards = shards
        self.batch_workers = batch_workers
        self.executor = executor
        self.solver = solver
        self.portfolio_deadline = portfolio_deadline
        self._threads = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="repro-shard"
        )

    # ------------------------------------------------------------------
    async def solve_batch(self, jobs: List[SolveJob]) -> Dict[str, JobResult]:
        """Solve one (already deduplicated) batch on a shard thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._threads, self._solve_sync, list(jobs))

    def _solve_sync(self, jobs: List[SolveJob]) -> Dict[str, JobResult]:
        if self.solver == "portfolio":
            return self._solve_portfolio(jobs)
        # single-job batches (the max_batch=1 configuration, or a window that
        # caught one request) run in-process: no point spawning a pool of one
        executor = "serial" if len(jobs) == 1 else self.executor
        solver = BatchSolver(
            cache=self.cache, max_workers=self.batch_workers, executor=executor
        )
        results: Dict[str, JobResult] = {}
        for _index, job, result in solver.iter_results(jobs):
            results[job.fingerprint] = result
        return results

    def _solve_portfolio(self, jobs: List[SolveJob]) -> Dict[str, JobResult]:
        from repro.service.portfolio import run_portfolio

        results: Dict[str, JobResult] = {}
        for job in jobs:
            hit = self.cache.get(job.fingerprint)
            if hit is not None:
                import dataclasses

                results[job.fingerprint] = dataclasses.replace(hit, cached=True)
                continue
            race = run_portfolio(
                job.problem,
                relocation=job.relocation,
                options=job.options,
                weights=job.weights,
                deadline=self.portfolio_deadline,
                policy="first_feasible",
                executor="thread",
                max_workers=self.batch_workers,
            )
            result = race.winner_result
            if result is None:
                # no strategy produced a feasible plan: surface the best
                # attempt (sorted like the portfolio's own "best" policy)
                outcomes = sorted(race.outcomes.values(), key=lambda r: r.objective_key())
                result = outcomes[0] if outcomes else JobResult.failure(
                    job, "portfolio produced no outcome"
                )
            # key the outcome by the *request* fingerprint so waiters find it
            import dataclasses

            result = dataclasses.replace(result, fingerprint=job.fingerprint)
            if result.status != "error":
                self.cache.put(result)
            results[job.fingerprint] = result
        return results

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting batches and (optionally) wait for running ones."""
        self._threads.shutdown(wait=wait)
