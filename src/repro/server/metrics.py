"""Gateway observability: counters, gauges and latency histograms.

Latencies are recorded into fixed log-spaced buckets (deterministic, O(1)
memory, thread-safe under the GIL), with quantiles read back by linear
interpolation within the covering bucket, clamped to the observed
``[min, max]`` — the standard Prometheus-histogram trade-off at ~±25%
worst-case bucket resolution.

The snapshot feeds three consumers: the ``/metrics`` endpoint (flat JSON),
the :mod:`repro.analysis` tables (``SERVER_COUNTER_HEADERS`` two-column table
plus the shared ``SIM_LATENCY_HEADERS`` percentile table), and the
``server.*`` benchmark extras recorded in ``BENCH_server.json``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["LatencyHistogram", "GatewayMetrics", "merge_raw_histograms"]


def _default_bounds() -> List[float]:
    # 100 us .. ~1100 s in x1.5 steps: covers inline cache hits through
    # multi-minute MILP solves with ≤ 50% (upper-bound) quantile error
    bounds = []
    edge = 1e-4
    for _ in range(40):
        bounds.append(edge)
        edge *= 1.5
    return bounds


class LatencyHistogram:
    """Fixed-bucket latency histogram with bucket-resolution quantiles."""

    def __init__(self, bounds: Optional[List[float]] = None) -> None:
        self.bounds = list(bounds) if bounds is not None else _default_bounds()
        if sorted(self.bounds) != self.bounds or len(set(self.bounds)) != len(self.bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one sample."""
        seconds = max(0.0, float(seconds))
        index = self._bucket_index(seconds)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def _bucket_index(self, seconds: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= sample
            mid = (lo + hi) // 2
            if self.bounds[mid] >= seconds:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """The ``fraction`` quantile, linearly interpolated within its bucket.

        The nearest-rank sample's bucket is located, then the rank's position
        inside that bucket interpolates between the bucket's lower and upper
        edges — so a rank at the bottom of a bucket no longer reports the
        bucket's *upper* bound (the old boundary behaviour, a full bucket of
        over-report).  The result is clamped to the observed ``[min, max]``:
        interpolation can never report below the smallest or above the
        largest sample actually seen.  The overflow bucket reports the exact
        observed maximum.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.5))  # nearest-rank
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            previous = seen
            seen += bucket_count
            if seen >= rank:
                if index >= len(self.bounds):
                    return self.max
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                position = (rank - previous) / bucket_count
                value = lower + (upper - lower) * position
                return min(max(value, self.min), self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        """The ``{count, mean, p50, p90, p99, max}`` dict the analysis
        latency table (:func:`repro.analysis.report.sim_latency_rows`) renders."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max,
        }

    # ------------------------------------------------------------------
    # machine-readable form: ``/metrics?format=json`` and fleet roll-ups
    # ------------------------------------------------------------------
    def raw(self) -> Dict[str, object]:
        """Exact bucket state, JSON-safe (``min`` is ``None`` while empty).

        This is what ``/metrics?format=json`` serves and what
        :func:`merge_raw_histograms` consumes: identical-bounds histograms
        from N replicas merge losslessly by summing bucket counts, which the
        rendered percentile tables cannot do.
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max,
        }

    @classmethod
    def from_raw(cls, data: Mapping[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`raw` output (validated)."""
        histogram = cls(bounds=[float(b) for b in data["bounds"]])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"counts length {len(counts)} does not match "
                f"{len(histogram.bounds)} bounds (+1 overflow)"
            )
        if any(c < 0 for c in counts):
            raise ValueError("bucket counts must be non-negative")
        histogram.counts = counts
        histogram.count = int(data["count"])
        if histogram.count != sum(counts):
            raise ValueError("count does not equal the bucket-count sum")
        histogram.total = float(data["total"])
        histogram.max = float(data["max"])
        minimum = data.get("min")
        histogram.min = float("inf") if minimum is None else float(minimum)
        return histogram

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another identical-bounds histogram into this one, in place."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


def merge_raw_histograms(raws: Iterable[Mapping[str, object]]) -> LatencyHistogram:
    """Merge :meth:`LatencyHistogram.raw` snapshots from N replicas into one.

    The fleet router's ``/metrics`` roll-up uses this to serve fleet-wide
    latency percentiles: summing bucket counts is exact, whereas averaging
    the replicas' rendered p99s would be meaningless.

    Snapshots whose bucket bounds differ from the first snapshot's are
    refused with a :class:`ValueError` naming the offending snapshot —
    summing counts across mismatched bucket layouts would silently produce
    garbage percentiles (e.g. when replicas run mixed code versions).
    """
    merged: Optional[LatencyHistogram] = None
    for index, raw in enumerate(raws):
        histogram = LatencyHistogram.from_raw(raw)
        if merged is None:
            merged = histogram
        elif histogram.bounds != merged.bounds:
            raise ValueError(
                f"histogram snapshot #{index} has different bounds "
                f"({len(histogram.bounds)} buckets, first edge "
                f"{histogram.bounds[0] if histogram.bounds else 'none'}) than "
                f"snapshot #0 ({len(merged.bounds)} buckets) — refusing to "
                "merge mismatched bucket layouts"
            )
        else:
            merged.merge(histogram)
    return merged if merged is not None else LatencyHistogram()


@dataclasses.dataclass
class GatewayMetrics:
    """All counters and histograms of one gateway instance."""

    received: int = 0  # POST /solve requests accepted off the wire
    ok: int = 0  # 200 responses
    bad_requests: int = 0  # 400 undecodable bodies
    shed_rate_limited: int = 0  # 429 per-client token bucket
    shed_queue_full: int = 0  # 429 bounded-queue load shedding
    rejected_draining: int = 0  # 503 during graceful drain
    solve_errors: int = 0  # 500 job executed but failed
    cache_hits: int = 0  # answered inline from the solve cache
    cache_misses: int = 0  # routed into the micro-batcher
    batches: int = 0  # batches flushed to the worker shards
    batched_jobs: int = 0  # jobs carried by those batches
    deduped_jobs: int = 0  # batch slots answered by an in-batch duplicate
    flight_waits: int = 0  # misses served by awaiting another replica's solve
    flight_takeovers: int = 0  # awaited flights that died and were re-solved here
    deadline_expired: int = 0  # 504s: the client budget ran out before a result
    degraded: int = 0  # 200s served best-effort (brown-out or clamped deadline)

    def __post_init__(self) -> None:
        self.started_monotonic = time.monotonic()
        self.latency_total = LatencyHistogram()
        self.latency_hit = LatencyHistogram()
        self.latency_miss = LatencyHistogram()
        self.batch_sizes = LatencyHistogram(bounds=[float(2**i) for i in range(11)])

    # ------------------------------------------------------------------
    def observe_hit(self, seconds: float) -> None:
        self.cache_hits += 1
        self.ok += 1
        self.latency_total.observe(seconds)
        self.latency_hit.observe(seconds)

    def observe_solved(self, seconds: float, error: bool = False) -> None:
        if error:
            self.solve_errors += 1
        else:
            self.ok += 1
        self.latency_total.observe(seconds)
        self.latency_miss.observe(seconds)

    def observe_batch(self, size: int, unique: int) -> None:
        self.batches += 1
        self.batched_jobs += size
        self.deduped_jobs += size - unique
        self.batch_sizes.observe(float(size))

    # ------------------------------------------------------------------
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    @property
    def shed(self) -> int:
        """Requests refused by admission control (both 429 flavours)."""
        return self.shed_rate_limited + self.shed_queue_full

    @property
    def shed_rate(self) -> float:
        """Fraction of received solve requests refused with a 429."""
        return self.shed / self.received if self.received else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of admitted solve requests answered inline from cache."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_jobs / self.batches if self.batches else 0.0

    # ------------------------------------------------------------------
    def counters(self, queue_depth: int = 0) -> Dict[str, object]:
        """Flat counter/gauge dict (the ``/metrics`` counters block)."""
        return {
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": queue_depth,
            "received": self.received,
            "ok": self.ok,
            "bad_requests": self.bad_requests,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "shed_rate": round(self.shed_rate, 6),
            "rejected_draining": self.rejected_draining,
            "solve_errors": self.solve_errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate, 6),
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "deduped_jobs": self.deduped_jobs,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "flight_waits": self.flight_waits,
            "flight_takeovers": self.flight_takeovers,
            "deadline_expired": self.deadline_expired,
            "degraded": self.degraded,
        }

    def latency_summaries(self) -> Dict[str, Dict[str, float]]:
        """Named latency summaries for the shared percentile table."""
        return {
            "request": self.latency_total.summary(),
            "cache_hit": self.latency_hit.summary(),
            "solve_miss": self.latency_miss.summary(),
        }

    def histograms(self) -> Dict[str, Dict[str, object]]:
        """Raw bucket state of every histogram (the mergeable form)."""
        return {
            "request": self.latency_total.raw(),
            "cache_hit": self.latency_hit.raw(),
            "solve_miss": self.latency_miss.raw(),
            "batch_size": self.batch_sizes.raw(),
        }

    def snapshot(
        self,
        queue_depth: int = 0,
        cache_stats: Optional[Mapping] = None,
        raw: bool = False,
    ) -> Dict:
        """Everything ``/metrics`` serves, as one JSON-ready dict.

        ``raw=True`` (the ``?format=json`` form) additionally carries the
        exact histogram bucket counts so fleet roll-ups and load generators
        can merge and re-quantile them instead of scraping rendered tables.
        """
        snapshot = {
            "counters": self.counters(queue_depth),
            "latency": self.latency_summaries(),
            "cache": dict(cache_stats) if cache_stats is not None else {},
        }
        if raw:
            snapshot["histograms"] = self.histograms()
        return snapshot
