"""Admission control: bounded-queue load shedding and per-client rate limits.

Two independent gates protect the solver fleet:

* a **token bucket per client** caps sustained request rate (``rate`` tokens
  per second, ``burst`` capacity) — the front-door gate, applied before the
  gateway spends any work on the request body;
* a **bounded queue** sheds cache misses when the micro-batcher already holds
  ``max_queue_depth`` unserved jobs — the backpressure gate that keeps a
  traffic spike from building an unbounded latency backlog.

Both refusals surface as HTTP 429 with a machine-readable reason, so load
generators can separate "server is refusing" from "server is failing".
The controller takes an injectable clock for deterministic tests.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Optional

__all__ = ["TokenBucket", "AdmissionDecision", "AdmissionController"]


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/s, capped at ``burst``."""

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = float(now)

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available (refilled up to ``now``)."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``retry_after`` is the honest backoff hint a refusal carries into the
    response's ``Retry-After`` header: for a rate refusal it is the time until
    the client's bucket refills a token, rounded up to a whole second.
    """

    admitted: bool
    reason: str = ""
    retry_after: float = 1.0

    ADMITTED = None  # populated below


AdmissionDecision.ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Front-door rate limiting plus solver-queue load shedding.

    Parameters
    ----------
    max_queue_depth:
        Cache misses the batcher may hold (pending + in flight) before new
        misses are shed; ``None`` disables the bound.
    rate_limit:
        Per-client sustained requests/second; ``None`` disables rate limiting.
    rate_burst:
        Bucket capacity; defaults to ``2 * rate_limit``.
    clock:
        Monotonic-seconds source (injectable for tests).
    max_clients:
        Bound on tracked client buckets; the stalest bucket is dropped past
        the bound so a client-id-spinning attacker cannot grow memory.
    """

    def __init__(
        self,
        max_queue_depth: Optional[int] = 64,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive (or None)")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError("rate_limit must be positive (or None)")
        if max_clients <= 0:
            raise ValueError("max_clients must be positive")
        self.max_queue_depth = max_queue_depth
        self.rate_limit = rate_limit
        self.rate_burst = rate_burst if rate_burst is not None else (
            2.0 * rate_limit if rate_limit is not None else None
        )
        self.clock = clock
        self.max_clients = max_clients
        self._buckets: Dict[str, TokenBucket] = {}

    # ------------------------------------------------------------------
    def check_rate(self, client: str) -> AdmissionDecision:
        """The front-door gate: per-client token bucket."""
        if self.rate_limit is None:
            return AdmissionDecision.ADMITTED
        now = self.clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                stalest = min(self._buckets, key=lambda key: self._buckets[key].updated)
                del self._buckets[stalest]
            bucket = TokenBucket(self.rate_limit, self.rate_burst, now=now)
            self._buckets[client] = bucket
        if bucket.try_acquire(now):
            return AdmissionDecision.ADMITTED
        wait = max(0.0, (1.0 - bucket.tokens) / bucket.rate)
        return AdmissionDecision(
            admitted=False, reason="rate_limited", retry_after=max(1.0, wait)
        )

    def check_queue(self, queue_depth: int) -> AdmissionDecision:
        """The backpressure gate: bounded micro-batcher queue."""
        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            return AdmissionDecision(admitted=False, reason="queue_full")
        return AdmissionDecision.ADMITTED

    @property
    def tracked_clients(self) -> int:
        return len(self._buckets)
