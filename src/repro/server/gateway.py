"""The asyncio solve gateway: HTTP front door for the solver fleet.

Request lifecycle for ``POST /solve``:

1. **rate limit** — per-client token bucket (429 ``rate_limited``);
2. **decode** — body JSON -> :class:`~repro.service.jobs.SolveJob` via
   :mod:`repro.server.protocol` (400 on anything malformed);
3. **cache** — the job fingerprint is looked up in the shared
   :class:`~repro.service.cache.SolveCache`; hits are answered inline without
   touching the solver queue;
4. **admission** — misses are shed with 429 ``queue_full`` when the
   micro-batcher already holds ``max_queue_depth`` unserved jobs;
5. **batch + solve** — admitted misses coalesce in the
   :class:`~repro.server.batcher.MicroBatcher` window and execute on the
   :class:`~repro.server.workers.WorkerPool` shards; the response carries the
   full :class:`~repro.service.results.JobResult`.

``GET /healthz`` reports liveness and queue depth; ``GET /metrics`` serves
counters, latency histograms and cache stats, plus the rendered
:mod:`repro.analysis` tables.  :meth:`SolveGateway.drain` implements graceful
shutdown: stop admitting (503), flush the batch window, wait for in-flight
batches, then close the listener.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from typing import Dict, Optional, Tuple

from repro.analysis.report import (
    SERVER_COUNTER_HEADERS,
    SIM_LATENCY_HEADERS,
    format_table,
    server_counter_rows,
    sim_latency_rows,
)
from repro.obs.recorder import TraceRecorder
from repro.obs.trace import (
    TRACE_HEADER,
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    new_id,
    summarize_trace_doc,
)
from repro.server.admission import AdmissionController
from repro.server.batcher import BatcherDraining, DeadlineExpired, MicroBatcher
from repro.server.http import (
    HttpError,
    HttpRequest,
    parse_query,
    read_request,
    write_response,
)
from repro.server.metrics import GatewayMetrics
from repro.server.protocol import (
    DEADLINE_HEADER,
    QUEUE_DEPTH_HEADER,
    ProtocolError,
    deadline_from_payload,
    job_from_dict,
    parse_deadline,
)
from repro.server.workers import WorkerPool
from repro.service.cache import CACHE_SCHEMA_VERSION, SolveCache
from repro.service.results import JobResult
from repro.utils.buildinfo import git_rev

__all__ = ["GatewayConfig", "SolveGateway", "BackgroundGateway"]


@dataclasses.dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance.

    Attributes
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (tests and
        benchmarks read the bound port back from :attr:`SolveGateway.port`).
    max_batch, batch_window:
        Micro-batch flush triggers: size cap and time window in seconds.
        ``max_batch=1`` disables coalescing (the unbatched baseline).
    max_queue_depth:
        Cache misses the batcher may hold before load shedding; ``None``
        disables the bound.
    rate_limit, rate_burst:
        Per-client token bucket (requests/second, bucket size); ``None``
        disables rate limiting.
    shards, batch_workers, executor, solver, portfolio_deadline:
        Worker-pool shape (see :class:`~repro.server.workers.WorkerPool`).
    cache_dir:
        Optional persistence directory for the solve cache.  Pointing several
        gateway processes at one directory makes it the shared fleet cache
        tier: entries are shared, and per-fingerprint lock files give
        cross-replica single-flight on concurrent identical misses.
    cache_capacity:
        In-memory LRU bound of the solve cache.
    flight_timeout, flight_poll:
        Single-flight wait tuning: a request that finds another replica
        already solving its fingerprint polls the shared cache every
        ``flight_poll`` seconds for up to ``max(flight_timeout, 2 x the job's
        time_limit)`` seconds before taking the solve over.
    brownout_watermark:
        Queue depth at which the gateway enters brown-out: fresh solves are
        served heuristic-only (annealing, no MILP) and flagged
        ``degraded: true`` until the queue falls back under the watermark.
        ``None`` (default) disables degraded serving.
    trust_client_id:
        Key rate-limit buckets on the ``X-Client-Id`` header instead of the
        peer address.  Off by default: the header is client-controlled, so
        trusting it lets an id-spinning client mint a fresh full-burst bucket
        per request and void the rate limit.  Turn it on only behind an
        authenticating proxy that sets the header itself.
    tracing, trace_capacity, trace_sink:
        Request tracing (:mod:`repro.obs`).  When on, every ``/solve``
        records a multi-span trace (decode, admission, cache lookup,
        single-flight wait, batch assembly, solve + solver stages) into an
        in-memory ring of ``trace_capacity`` traces served at
        ``GET /debug/traces``; ``trace_sink`` additionally appends every
        completed trace to a rotating JSONL file for capture→replay
        (``python -m repro.obs export``).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    max_batch: int = 8
    batch_window: float = 0.01
    max_queue_depth: Optional[int] = 64
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    shards: int = 2
    batch_workers: Optional[int] = 4
    executor: str = "thread"
    solver: str = "batch"
    portfolio_deadline: Optional[float] = None
    cache_dir: Optional[str] = None
    cache_capacity: Optional[int] = 1024
    flight_timeout: float = 60.0
    flight_poll: float = 0.02
    brownout_watermark: Optional[int] = None
    trust_client_id: bool = False
    tracing: bool = True
    trace_capacity: int = 256
    trace_sink: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")


class SolveGateway:
    """One gateway instance: listener, batcher, shards, metrics.

    ``cache`` and ``worker_pool`` are injectable so tests can run the full
    HTTP path against a stub solver.
    """

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        cache: Optional[SolveCache] = None,
        worker_pool: Optional[WorkerPool] = None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.cache = cache if cache is not None else SolveCache(
            self.config.cache_dir, capacity=self.config.cache_capacity
        )
        self.metrics = GatewayMetrics()
        self.workers = worker_pool if worker_pool is not None else WorkerPool(
            cache=self.cache,
            shards=self.config.shards,
            batch_workers=self.config.batch_workers,
            executor=self.config.executor,
            solver=self.config.solver,
            portfolio_deadline=self.config.portfolio_deadline,
            brownout=self.brownout_active,
        )
        self.batcher = MicroBatcher(
            self.workers.solve_batch,
            max_batch=self.config.max_batch,
            max_wait=self.config.batch_window,
            on_batch=self.metrics.observe_batch,
        )
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            rate_limit=self.config.rate_limit,
            rate_burst=self.config.rate_burst,
        )
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(
                capacity=self.config.trace_capacity,
                sink_path=self.config.trace_sink,
            )
            if self.config.tracing
            else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener (idempotent-unsafe: call once)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight work, close."""
        self._draining = True
        await self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.workers.shutdown(wait=True)

    @property
    def queue_depth(self) -> int:
        return self.batcher.queue_depth

    def brownout_active(self) -> bool:
        """Is the overload watermark crossed (degraded serving engaged)?"""
        watermark = self.config.brownout_watermark
        return watermark is not None and self.batcher.queue_depth >= watermark

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else "unknown"
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, {"error": str(exc)}, keep_alive=False
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                client = peer_host
                if self.config.trust_client_id:
                    client = request.header("x-client-id") or peer_host
                try:
                    status, payload, headers = await self._dispatch(request, client)
                except Exception as exc:  # noqa: BLE001 — a request must never
                    # kill the connection without an answer
                    status, headers = 500, None
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                keep_alive = request.keep_alive
                await write_response(
                    writer, status, payload, keep_alive=keep_alive, extra_headers=headers
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: HttpRequest, client: str
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        path, _sep, query = request.path.partition("?")
        route = (request.method, path)
        if route == ("POST", "/solve"):
            return await self._solve(request, client)
        if route == ("GET", "/healthz"):
            return 200, self._healthz(), None
        if route == ("GET", "/metrics"):
            # ``?format=json`` is the machine-readable form: raw histogram
            # bucket counts, no rendered tables — what the fleet router's
            # roll-up and the load generator consume
            raw = "format=json" in query.split("&")
            return 200, self.metrics_snapshot(raw=raw), None
        if route == ("GET", "/debug/traces"):
            return self._debug_traces(query)
        if request.method == "GET" and path.startswith("/debug/traces/"):
            return self._debug_trace_by_id(path[len("/debug/traces/"):])
        if route == ("GET", "/dashboard"):
            return 200, self._dashboard(), None
        if route[1] in ("/solve", "/healthz", "/metrics", "/dashboard", "/debug/traces"):
            return 405, {"error": f"{request.method} not allowed on {route[1]}"}, None
        return 404, {"error": f"no route for {request.method} {route[1]}"}, None

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    async def _solve(
        self, request: HttpRequest, client: str
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        trace: Optional[Trace] = None
        root: Optional[Span] = None
        if self.recorder is not None:
            # continue the router-minted trace when the header names one,
            # otherwise this gateway is the origin and mints the id itself
            trace = Trace.begin(
                request.header(TRACE_HEADER) or None,
                origin="gateway",
                metadata={"client": client},
            )
            root = Span(
                name="gateway.request",
                span_id=new_id(),
                parent_id=trace.remote_parent,
                start=trace.start,
                end=0.0,
            )
        status = 500
        try:
            status, payload, headers = await self._solve_inner(
                request, client, trace, root
            )
            # every /solve response reports this replica's queue depth so the
            # fleet router can maintain its per-replica load EWMA
            headers = dict(headers or {})
            headers.setdefault(QUEUE_DEPTH_HEADER, str(self.batcher.queue_depth))
            if trace is not None:
                headers.setdefault(TRACE_HEADER, trace.trace_id)
            return status, payload, headers
        finally:
            # every exit — answered, shed, or crashed — lands the trace in
            # the recorder with the root span first and the final status
            if trace is not None:
                root.annotations["http_status"] = status
                root.end = trace.wall(time.perf_counter())
                trace.spans.insert(0, root)
                trace.finish("ok" if status == 200 else f"http_{status}")
                self.recorder.record(trace)

    async def _solve_inner(
        self,
        request: HttpRequest,
        client: str,
        trace: Optional[Trace],
        root: Optional[Span],
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        self.metrics.received += 1
        arrival = time.monotonic()
        if self._draining:
            self.metrics.rejected_draining += 1
            return 503, {"error": "gateway is draining"}, {"Retry-After": "1"}

        # the header form of the budget is checked *before* any decode work:
        # an already-expired request must cost nothing downstream of here
        try:
            budget = parse_deadline(request.header(DEADLINE_HEADER) or None)
        except ProtocolError as exc:
            self.metrics.bad_requests += 1
            return 400, {"error": str(exc)}, None
        deadline_at = arrival + budget if budget is not None else None
        if deadline_at is not None and budget is not None and budget <= 0:
            return self._expired(trace, root, arrival, budget, where="admission")

        rate_started = time.perf_counter()
        decision = self.admission.check_rate(client)
        if trace is not None:
            trace.add_span(
                "admission.rate",
                rate_started,
                time.perf_counter(),
                parent=root,
                admitted=decision.admitted,
            )
        if not decision.admitted:
            self.metrics.shed_rate_limited += 1
            retry_after = str(max(1, round(decision.retry_after)))
            return (
                429,
                {"error": "shed", "reason": decision.reason},
                {"Retry-After": retry_after},
            )

        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            # decode off the loop: JSON parse + device-grid rebuild are CPU
            # work proportional to the (up to 32 MB) body, and one slow
            # request must not stall every other connection's responses
            def _decode():
                payload = request.json()
                return job_from_dict(payload), deadline_from_payload(payload)

            job, body_budget = await loop.run_in_executor(None, _decode)
        except (HttpError, ProtocolError) as exc:
            self.metrics.bad_requests += 1
            if trace is not None:
                trace.add_span(
                    "gateway.decode", started, time.perf_counter(),
                    parent=root, error=str(exc),
                )
            return 400, {"error": str(exc)}, None
        if deadline_at is None and body_budget is not None:
            # the in-band form (deadline_s); the header, re-stamped hop by
            # hop with the remaining budget, wins when both are present
            budget = body_budget
            deadline_at = arrival + body_budget
        if trace is not None:
            trace.add_span("gateway.decode", started, time.perf_counter(), parent=root)
            trace.metadata["fingerprint"] = job.fingerprint
            trace.metadata["job"] = job.name
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return self._expired(trace, root, arrival, budget, where="decode")

        lookup_started = time.perf_counter()
        if self.cache.directory is None:
            hit = self.cache.get(job.fingerprint)  # pure in-memory probe
        else:
            # the disk layer does file IO on a miss-in-memory: off the loop
            hit = await loop.run_in_executor(None, self.cache.get, job.fingerprint)
        if trace is not None:
            trace.add_span(
                "cache.lookup", lookup_started, time.perf_counter(),
                parent=root, hit=hit is not None,
            )
        if hit is not None:
            self.metrics.observe_hit(time.perf_counter() - started)
            return 200, self._result_payload(job, hit, cached=True), None
        self.metrics.cache_misses += 1

        # cross-replica single-flight: with a shared cache directory, only the
        # per-fingerprint lock holder may occupy solver capacity for this job;
        # every other replica's request awaits the shared entry instead of
        # duplicating the solve.  Directory-less caches grant every claim
        # (in-process dedup is the micro-batcher's job).
        acquired = True
        if self.cache.directory is not None:
            acquired = await loop.run_in_executor(
                None, self.cache.try_acquire_flight, job.fingerprint
            )
            if not acquired:
                flight_started = time.perf_counter()
                result = await self._await_flight(job, deadline_at)
                if trace is not None:
                    trace.add_span(
                        "flight.wait", flight_started, time.perf_counter(),
                        parent=root, landed=result is not None,
                    )
                if result is not None:
                    self.metrics.flight_waits += 1
                    self.metrics.observe_hit(time.perf_counter() - started)
                    return 200, self._result_payload(job, result, cached=True), None
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    return self._expired(trace, root, arrival, budget, where="flight")
                # the holder died, wedged, or the wait timed out: break its
                # lock (a *live* SIGSTOPped holder passes the pid probe
                # forever, so stale reclaim alone can't free it) and take the
                # solve over.  Losing the takeover race to another waiter
                # means one duplicate solve, which the cache absorbs —
                # liveness beats perfect deduplication.
                self.metrics.flight_takeovers += 1
                await loop.run_in_executor(
                    None, self.cache.break_flight, job.fingerprint
                )
                acquired = await loop.run_in_executor(
                    None, self.cache.try_acquire_flight, job.fingerprint
                )

        queue_started = time.perf_counter()
        decision = self.admission.check_queue(self.batcher.queue_depth)
        if trace is not None:
            trace.add_span(
                "admission.queue", queue_started, time.perf_counter(),
                parent=root, admitted=decision.admitted,
                queue_depth=self.batcher.queue_depth,
            )
        if not decision.admitted:
            if acquired:
                await loop.run_in_executor(
                    None, self.cache.release_flight, job.fingerprint
                )
            self.metrics.shed_queue_full += 1
            retry_after = str(max(1, round(decision.retry_after)))
            return (
                429,
                {"error": "shed", "reason": decision.reason},
                {"Retry-After": retry_after},
            )

        submit_started = time.perf_counter()
        solve_span: Optional[Span] = None
        if trace is not None:
            # pre-minted so the batcher's batch.assembly span (and the solver
            # stage spans) can nest under it while it is still open
            solve_span = Span(
                name="gateway.solve",
                span_id=new_id(),
                parent_id=root.span_id,
                start=trace.wall(submit_started),
                end=0.0,
            )
        try:
            result = await self.batcher.submit(
                job,
                trace_ctx=(trace, solve_span) if trace is not None else None,
                deadline=deadline_at,
            )
        except BatcherDraining:
            # the drain flag flipped while this request was decoding: the
            # rejection is retryable, not an internal error
            self.metrics.rejected_draining += 1
            return 503, {"error": "gateway is draining"}, {"Retry-After": "1"}
        except DeadlineExpired:
            return self._expired(trace, root, arrival, budget, where="batch")
        except Exception as exc:  # noqa: BLE001 — solver crash must answer 500
            if solve_span is not None:
                solve_span.annotations["error"] = f"{type(exc).__name__}: {exc}"
            self.metrics.observe_solved(time.perf_counter() - started, error=True)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None
        finally:
            if acquired and self.cache.directory is not None:
                await loop.run_in_executor(
                    None, self.cache.release_flight, job.fingerprint
                )
            if solve_span is not None:
                solve_span.end = trace.wall(time.perf_counter())
                trace.spans.append(solve_span)
        if solve_span is not None:
            solve_span.annotations.update(
                cached=result.cached, backend=result.backend, worker=result.worker
            )
            if not result.cached:
                # lay the solver's stage timings (collected in the worker
                # thread/process) as children of the solve span
                trace.add_stage_spans(result.stages, solve_span)
        elapsed = time.perf_counter() - started
        if result.status == "error":
            self.metrics.observe_solved(elapsed, error=True)
            return 500, self._result_payload(job, result, cached=False), None
        if result.degraded:
            self.metrics.degraded += 1
        self.metrics.observe_solved(elapsed)
        return 200, self._result_payload(job, result, cached=result.cached), None

    def _expired(
        self,
        trace: Optional[Trace],
        root: Optional[Span],
        arrival: float,
        budget: Optional[float],
        where: str,
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """Answer 504: the client's budget ran out before a result existed.

        Counted separately from sheds and traced as its own ``deadline.expired``
        span event so chaos runs can tell "client gave up" from "server
        refused".
        """
        self.metrics.deadline_expired += 1
        if trace is not None:
            now = time.perf_counter()
            trace.add_span(
                "deadline.expired",
                now,
                now,
                parent=root,
                where=where,
                budget_s=budget,
                waited_s=round(time.monotonic() - arrival, 6),
            )
        return (
            504,
            {"error": "deadline expired", "reason": "deadline_expired", "where": where},
            {"Retry-After": "1"},
        )

    async def _await_flight(self, job, deadline_at: Optional[float] = None):
        """Poll for another replica's in-flight solve of ``job`` to land.

        Returns the shared cache entry once the holder stores it, or ``None``
        when the lock disappears/goes stale without a result or the wait bound
        expires — the caller then breaks the lock and takes the solve over.
        The bound is the flight timeout capped by the request's remaining
        deadline budget (``deadline_at``, absolute ``time.monotonic()``), so a
        budgeted waiter never outwaits its own client.  All disk probes run
        off the event loop; waiting costs no solver capacity here (unlike a
        thread-pool wait, any number of requests can park on this loop).
        """
        loop = asyncio.get_running_loop()
        time_limit = getattr(job.options, "time_limit", None) or 0.0
        timeout = max(self.config.flight_timeout, 2.0 * float(time_limit))
        if deadline_at is not None:
            timeout = min(timeout, max(0.0, deadline_at - time.monotonic()))
        deadline = loop.time() + timeout
        while True:
            result = await loop.run_in_executor(None, self.cache.probe, job.fingerprint)
            if result is not None:
                return result
            in_progress = await loop.run_in_executor(
                None, self.cache.flight_in_progress, job.fingerprint
            )
            if not in_progress:
                # released (or reclaimed as stale): one last probe catches the
                # holder's store-then-release window before we take over
                return await loop.run_in_executor(
                    None, self.cache.probe, job.fingerprint
                )
            if loop.time() >= deadline:
                return None
            await asyncio.sleep(self.config.flight_poll)

    def _healthz(self) -> Dict[str, object]:
        uptime = round(self.metrics.uptime_s, 3)
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": uptime,  # legacy key, kept for old probes
            "uptime_seconds": uptime,
            "git_rev": git_rev(),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "trace_schema": TRACE_SCHEMA_VERSION,
            "tracing": self.recorder is not None,
            "queue_depth": self.queue_depth,
            "brownout": self.brownout_active(),
        }

    # ------------------------------------------------------------------
    # observability routes (repro.obs)
    # ------------------------------------------------------------------
    def _debug_traces(
        self, query: str
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        if self.recorder is None:
            return 404, {"error": "tracing is disabled on this gateway"}, None
        params = parse_query(query)
        try:
            limit = int(params.get("limit", "50"))
        except ValueError:
            return 400, {"error": "limit must be an integer"}, None
        full = params.get("full", "") in ("1", "true", "yes")
        docs = self.recorder.list(limit=max(1, limit))
        traces = docs if full else [summarize_trace_doc(doc) for doc in docs]
        return 200, {"traces": traces, "stats": self.recorder.stats()}, None

    def _debug_trace_by_id(
        self, trace_id: str
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        if self.recorder is None:
            return 404, {"error": "tracing is disabled on this gateway"}, None
        doc = self.recorder.get(trace_id.strip("/"))
        if doc is None:
            return 404, {"error": f"no trace {trace_id!r} (evicted or never seen)"}, None
        return 200, doc, None

    def _dashboard(self):
        from repro.obs.dashboard import render_dashboard

        return render_dashboard(
            self.metrics_snapshot(raw=True),
            traces=self.recorder.list(limit=20) if self.recorder is not None else [],
            title=f"repro gateway :{self.port}",
            health=self._healthz(),
        )

    def metrics_snapshot(self, raw: bool = False) -> Dict[str, object]:
        """The ``/metrics`` document: raw numbers plus rendered tables.

        The gateway's own ``counters.hit_rate`` is the served hit rate.  The
        ``cache`` block is the :class:`SolveCache`'s account of *its* lookups,
        which sees each end-to-end miss twice (once from the gateway probe,
        once from the worker shard's dedup-across-batches probe) — so its
        hit_rate reads lower than the gateway's by design.

        ``raw=True`` swaps the rendered tables for exact histogram bucket
        counts (``histograms``) so downstream consumers — the fleet router's
        fleet-wide roll-up, the loadgen fleet driver — can merge replicas
        losslessly instead of scraping fixed-width text.
        """
        snapshot = self.metrics.snapshot(
            queue_depth=self.queue_depth,
            cache_stats=self.cache.stats.as_dict(),
            raw=raw,
        )
        if raw:
            return snapshot
        snapshot["tables"] = {
            "counters": format_table(
                SERVER_COUNTER_HEADERS,
                server_counter_rows(snapshot["counters"]),
                title="gateway counters",
            ),
            "latency": format_table(
                SIM_LATENCY_HEADERS,
                sim_latency_rows(snapshot["latency"]),
                title="request latency (s)",
            ),
        }
        return snapshot

    @staticmethod
    def _result_payload(job, result, cached: bool) -> Dict[str, object]:
        data = result.as_dict()
        data["cached"] = bool(cached)  # describes *this* response, not the store
        return {
            "fingerprint": job.fingerprint,
            "cached": bool(cached),
            "degraded": bool(result.degraded),
            "result": data,
        }


class BackgroundGateway:
    """Run a :class:`SolveGateway` on a dedicated event-loop thread.

    The synchronous harness the example, the tests and the ``server.*``
    benchmarks share: start, read the bound ``port``, throw load from any
    thread, ``stop()`` to drain gracefully.  Usable as a context manager.
    """

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        cache: Optional[SolveCache] = None,
        worker_pool: Optional[WorkerPool] = None,
        start_timeout: float = 10.0,
    ) -> None:
        self.gateway = SolveGateway(config=config, cache=cache, worker_pool=worker_pool)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-gateway", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self.gateway.start(), self._loop)
        try:
            future.result(timeout=start_timeout)
        except BaseException:
            # a failed bind (port in use, bad host) must not leak the loop
            # thread this constructor just started
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=start_timeout)
            if not self._loop.is_running():
                self._loop.close()
            self.gateway.workers.shutdown(wait=False)
            raise
        self._stopped = False

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def host(self) -> str:
        return self.gateway.config.host

    @property
    def port(self) -> int:
        assert self.gateway.port is not None
        return self.gateway.port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the gateway and stop the loop thread (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.gateway.drain(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
            if not self._loop.is_running():
                self._loop.close()

    def __enter__(self) -> "BackgroundGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
