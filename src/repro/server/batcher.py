"""Time/size-windowed micro-batching of cache-miss solve jobs.

Cache misses do not go to a solver one by one.  The batcher coalesces them
into batches — flushed when ``max_batch`` jobs have accumulated or when the
oldest pending job has waited ``max_wait`` seconds — and hands each batch to
the worker shards in one call.  Coalescing buys two things:

* **per-batch dedup** — concurrent requests for the same fingerprint (the
  thundering-herd shape of a cache miss under fan-in traffic) are solved once
  and fanned back out to every waiter;
* **batch-level parallelism** — the worker shard runs the whole batch through
  :class:`~repro.service.executor.BatchSolver`'s pool instead of paying
  per-request dispatch.

``max_batch=1`` (or ``max_wait=0`` with single submits) degenerates to the
one-request-per-solve baseline the ``server.miss_unbatched`` benchmark
measures against.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro.obs.trace import Span, Trace
from repro.service.jobs import SolveJob
from repro.service.results import JobResult

__all__ = ["BatcherDraining", "DeadlineExpired", "MicroBatcher"]

#: Trace context a submission may carry through the batch window: the request
#: trace plus the parent span new batcher spans hang under.
TraceCtx = Tuple[Trace, Optional[Span]]


class BatcherDraining(RuntimeError):
    """Submission refused because the batcher is shutting down (retryable)."""


class DeadlineExpired(RuntimeError):
    """The waiter's budget ran out while its job sat in the batch window.

    Raised out of :meth:`MicroBatcher.submit` instead of solving: a client
    that already gave up must not have compute spent on its behalf.  The
    gateway maps this to a 504 with ``Retry-After``.
    """

#: Signature of the downstream solver: unique jobs in, results by fingerprint,
#: plus the per-fingerprint remaining-budget map (seconds; absent fingerprints
#: are unbudgeted).
SolveBatch = Callable[
    [List[SolveJob], Dict[str, float]], Awaitable[Dict[str, JobResult]]
]


class MicroBatcher:
    """Coalesce awaitable solve submissions into deduplicated batches.

    Single-event-loop object: ``submit`` must be called from the loop the
    batcher flushes on.  ``queue_depth`` (pending + in-flight jobs) is what
    the admission controller bounds.
    """

    def __init__(
        self,
        solve_batch: SolveBatch,
        max_batch: int = 8,
        max_wait: float = 0.01,
        on_batch: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self._solve_batch = solve_batch
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._on_batch = on_batch
        # (job, waiter, trace ctx, submitted perf_counter, monotonic deadline)
        self._pending: List[
            Tuple[SolveJob, asyncio.Future, Optional[TraceCtx], float, Optional[float]]
        ] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._tasks: Set[asyncio.Task] = set()
        self._inflight_jobs = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs accepted but not yet answered (pending window + in flight)."""
        return len(self._pending) + self._inflight_jobs

    async def submit(
        self,
        job: SolveJob,
        trace_ctx: Optional[TraceCtx] = None,
        deadline: Optional[float] = None,
    ) -> JobResult:
        """Enqueue one job and wait for its (possibly shared) result.

        ``trace_ctx`` (the request trace and the span batcher work should
        nest under) rides alongside the job; when present, the time the job
        spent coalescing in the window is recorded as a ``batch.assembly``
        span annotated with the batch shape it ended up in.

        ``deadline`` is an absolute ``time.monotonic()`` instant: a waiter
        whose deadline has passed by flush time is dropped from the batch with
        :class:`DeadlineExpired` instead of being solved, and the minimum
        remaining budget across a fingerprint's surviving waiters is handed to
        the solver so nobody blocks past their budget.
        """
        if self._closed:
            raise BatcherDraining("batcher is draining; no new submissions")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((job, future, trace_ctx, time.perf_counter(), deadline))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            if self.max_wait == 0:
                # zero window: flush on the next loop tick, so submissions
                # made back-to-back in one tick still share a batch
                self._timer = loop.call_soon(self._flush)
            else:
                self._timer = loop.call_later(self.max_wait, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self._inflight_jobs += len(batch)
        task = asyncio.get_event_loop().create_task(self._run_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(
        self,
        batch: List[
            Tuple[SolveJob, asyncio.Future, Optional[TraceCtx], float, Optional[float]]
        ],
    ) -> None:
        # drop waiters whose budget ran out in the window *before* assembling
        # the batch: an expired entry must never reach a solver
        now = time.monotonic()
        live: List[
            Tuple[SolveJob, asyncio.Future, Optional[TraceCtx], float, Optional[float]]
        ] = []
        for entry in batch:
            job, future, _ctx, _submitted, deadline = entry
            if deadline is not None and now >= deadline:
                if not future.done():
                    future.set_exception(
                        DeadlineExpired(
                            f"deadline passed while {job.short_id} waited in the batch window"
                        )
                    )
                continue
            live.append(entry)
        if not live:
            self._inflight_jobs -= len(batch)
            return
        unique: Dict[str, SolveJob] = {}
        budgets: Dict[str, float] = {}
        for job, _future, _ctx, _submitted, deadline in live:
            unique.setdefault(job.fingerprint, job)
            if deadline is not None:
                remaining = deadline - now
                budgets[job.fingerprint] = min(
                    budgets.get(job.fingerprint, remaining), remaining
                )
        if self._on_batch is not None:
            self._on_batch(len(live), len(unique))
        flushed = time.perf_counter()
        for _job, _future, ctx, submitted, _deadline in live:
            if ctx is None:
                continue
            trace, parent = ctx
            trace.add_span(
                "batch.assembly",
                submitted,
                flushed,
                parent=parent,
                batch_size=len(live),
                unique=len(unique),
            )
        try:
            results = await self._solve_batch(list(unique.values()), budgets)
        except Exception as exc:  # noqa: BLE001 — fail the waiters, not the loop
            for _job, future, _ctx, _submitted, _deadline in live:
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            self._inflight_jobs -= len(batch)
        seen_first: Set[str] = set()
        for job, future, _ctx, _submitted, _deadline in live:
            if future.done():
                continue
            result = results.get(job.fingerprint)
            if result is None:
                future.set_exception(
                    RuntimeError(f"worker returned no result for {job.short_id}")
                )
                continue
            # slots beyond the first sharing a fingerprint were deduplicated
            if job.fingerprint in seen_first:
                result = result if result.cached else _as_cached(result)
            else:
                seen_first.add(job.fingerprint)
            future.set_result(result)

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Flush the window and wait for every in-flight batch (idempotent)."""
        self._closed = True
        self._flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)


def _as_cached(result: JobResult) -> JobResult:
    import dataclasses

    return dataclasses.replace(result, cached=True)
