"""Wire encoding of solve requests and responses.

The gateway speaks JSON: a ``POST /solve`` body is the canonical content
dictionary of a :class:`~repro.service.jobs.SolveJob` (exactly what
:meth:`SolveJob.spec_dict` produces, plus the fingerprint-neutral ``tag``).
This module is the inverse of :mod:`repro.service.jobs`: it rebuilds the
device grid, problem, relocation spec and solver options from their canonical
dictionaries, and guarantees the round trip is fingerprint-exact — a job
encoded by one process and decoded by the gateway hits the same cache entry
the original would.

All validation failures raise :class:`ProtocolError`, which the gateway maps
to a 400 response; nothing in a request body can take the server down.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.device.grid import FPGADevice, ForbiddenRect
from repro.device.resources import ResourceVector
from repro.device.tile import TileType
from repro.floorplan.metrics import ObjectiveWeights
from repro.floorplan.problem import Connection, FloorplanProblem, IOPin, Region
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationRequest, RelocationSpec
from repro.service.jobs import SolveJob

__all__ = [
    "ProtocolError",
    "DEADLINE_HEADER",
    "QUEUE_DEPTH_HEADER",
    "parse_deadline",
    "deadline_from_payload",
    "device_from_dict",
    "problem_from_dict",
    "relocation_from_list",
    "job_from_dict",
    "job_to_dict",
]

#: Per-request budget header: remaining wall-clock seconds the client is
#: willing to wait.  The router re-stamps it with the *remaining* budget on
#: every downstream forward, so each hop sees an honest number.  The body
#: field ``deadline_s`` is the equivalent in-band form; both are
#: fingerprint-neutral (a deadline changes how long we may solve, never what
#: the canonical answer is).
DEADLINE_HEADER = "X-Repro-Deadline"

#: Stamped by every gateway on every ``/solve`` response: the replica's
#: current micro-batcher queue depth.  The router folds it into a per-replica
#: EWMA and sheds at the front door when the fleet-wide depth crosses its
#: watermark.
QUEUE_DEPTH_HEADER = "X-Repro-Queue-Depth"


class ProtocolError(ValueError):
    """A request body that cannot be decoded into a valid solve job."""


def parse_deadline(value: object) -> Optional[float]:
    """Decode a deadline budget (header value or ``deadline_s`` body field).

    Returns the budget in seconds, or ``None`` when absent/empty.  A value
    that is not a finite number raises :class:`ProtocolError` (the request is
    malformed, not merely impatient); zero and negative budgets are valid —
    they mean "already expired" and are shed with a 504 before any solving.
    """
    if value is None or value == "":
        return None
    try:
        budget = float(value)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed deadline {value!r}: not a number") from exc
    if budget != budget or budget in (float("inf"), float("-inf")):
        raise ProtocolError(f"malformed deadline {value!r}: must be finite")
    return budget


def deadline_from_payload(payload: object) -> Optional[float]:
    """The ``deadline_s`` field of a decoded request body, if present."""
    if isinstance(payload, Mapping):
        return parse_deadline(payload.get("deadline_s"))
    return None


def _require(data: Mapping, key: str, context: str):
    try:
        return data[key]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"{context}: missing field {key!r}") from exc


def device_from_dict(data: Mapping[str, object]) -> FPGADevice:
    """Rebuild an :class:`FPGADevice` from its canonical content encoding.

    The inverse of :func:`repro.service.jobs.device_spec_dict`: tile types are
    re-interned in their original dense-index order and forbidden cells become
    1x1 forbidden rectangles (the fingerprint hashes cells, not rectangles, so
    the round trip is content-exact).
    """
    try:
        types = [
            TileType(
                name=str(_require(entry, "name", "tile type")),
                resources=ResourceVector(_require(entry, "resources", "tile type")),
                frames=int(_require(entry, "frames", "tile type")),
            )
            for entry in _require(data, "types", "device")
        ]
        width = int(_require(data, "width", "device"))
        height = int(_require(data, "height", "device"))
        grid = list(_require(data, "grid", "device"))
        forbidden_cells = [int(cell) for cell in data.get("forbidden", ())]
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — request bodies are untrusted
        raise ProtocolError(f"malformed device spec: {exc}") from exc
    if width <= 0 or height <= 0:
        raise ProtocolError(f"device extent must be positive, got {width}x{height}")
    if len(grid) != width * height:
        raise ProtocolError(
            f"device grid has {len(grid)} cells, expected {width}x{height}={width * height}"
        )
    try:
        indices = [int(cell) for cell in grid]
    except (TypeError, ValueError) as exc:
        raise ProtocolError("device grid cells must be tile-type indices") from exc
    if any(index < 0 or index >= len(types) for index in indices):
        raise ProtocolError("device grid references an unknown tile-type index")
    tile_types = [
        [types[indices[col * height + row]] for row in range(height)]
        for col in range(width)
    ]
    rects = []
    for index, cell in enumerate(forbidden_cells):
        col, row = divmod(cell, height)
        if not (0 <= col < width and 0 <= row < height):
            raise ProtocolError(f"forbidden cell {cell} outside the {width}x{height} grid")
        rects.append(ForbiddenRect(f"cell{index}", col, row, 1, 1))
    try:
        return FPGADevice(str(data.get("name") or "device"), tile_types, forbidden=rects)
    except ValueError as exc:
        raise ProtocolError(f"invalid device: {exc}") from exc


def problem_from_dict(data: Mapping[str, object]) -> FloorplanProblem:
    """Rebuild a :class:`FloorplanProblem` from its canonical encoding."""
    device = device_from_dict(_require(data, "device", "problem"))
    try:
        regions = [
            Region(
                name=str(_require(entry, "name", "region")),
                requirements=ResourceVector(_require(entry, "requirements", "region")),
                max_width=entry.get("max_width"),
                max_height=entry.get("max_height"),
            )
            for entry in _require(data, "regions", "problem")
        ]
        connections = [
            Connection(
                source=str(_require(entry, "source", "connection")),
                target=str(_require(entry, "target", "connection")),
                weight=float(entry.get("weight", 1.0)),
            )
            for entry in data.get("connections", ())
        ]
        pins = [
            IOPin(
                name=str(_require(entry, "name", "pin")),
                col=int(_require(entry, "col", "pin")),
                row=int(_require(entry, "row", "pin")),
            )
            for entry in data.get("pins", ())
        ]
        return FloorplanProblem(
            device,
            regions,
            connections,
            pins,
            name=str(data.get("name") or "request"),
        )
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — request bodies are untrusted
        raise ProtocolError(f"malformed problem spec: {exc}") from exc


def relocation_from_list(
    entries: Optional[Sequence[Mapping[str, object]]],
) -> Optional[RelocationSpec]:
    """Rebuild a relocation spec; an empty/missing list means none."""
    if not entries:
        return None
    try:
        return RelocationSpec(
            RelocationRequest(
                region=str(_require(entry, "region", "relocation request")),
                copies=int(_require(entry, "copies", "relocation request")),
                hard=bool(entry.get("hard", True)),
                weight=float(entry.get("weight", 1.0)),
            )
            for entry in entries
        )
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — request bodies are untrusted
        raise ProtocolError(f"malformed relocation spec: {exc}") from exc


def job_from_dict(payload: Mapping[str, object]) -> SolveJob:
    """Decode a request body into a validated, fingerprintable solve job."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"request body must be a JSON object, got {type(payload).__name__}")
    problem = problem_from_dict(_require(payload, "problem", "request"))
    weights_data = payload.get("weights")
    try:
        options = SolverOptions.from_dict(payload.get("options") or {})
        weights = ObjectiveWeights(**weights_data) if weights_data else None
        return SolveJob(
            problem=problem,
            relocation=relocation_from_list(payload.get("relocation")),
            mode=str(payload.get("mode", "HO")),
            options=options,
            heuristic=str(payload.get("heuristic", "tessellation")),
            weights=weights,
            lexicographic=bool(payload.get("lexicographic", False)),
            tag=str(payload.get("tag", "")),
        )
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — request bodies are untrusted
        raise ProtocolError(f"invalid solve job: {exc}") from exc


def job_to_dict(job: SolveJob) -> Dict[str, object]:
    """Encode a job as a request body (the client half of the protocol)."""
    data = job.spec_dict()
    if job.tag:
        data["tag"] = job.tag
    return data


def job_payloads(jobs: Sequence[SolveJob]) -> List[Dict[str, object]]:
    """Encode a batch of jobs (convenience for load generators)."""
    return [job_to_dict(job) for job in jobs]
