"""Table-driven CRC-32 (IEEE 802.3 polynomial, bit-reflected).

The configuration logic of Xilinx devices protects the bitstream with a CRC
that must be recomputed after a relocation filter rewrites frame addresses
(see Section I of the paper).  The exact polynomial of the hardware is not
relevant to the simulation — what matters is that any change to the payload or
the addresses invalidates the old checksum — so the ubiquitous CRC-32 is used.
"""

from __future__ import annotations

from typing import Iterable, List

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes | bytearray | Iterable[int], initial: int = 0) -> int:
    """CRC-32 of ``data`` (optionally continuing from a previous value)."""
    crc = initial ^ 0xFFFFFFFF
    for byte in bytes(data):
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32_of_words(words: Iterable[int], word_bytes: int = 4) -> int:
    """CRC-32 of a sequence of little-endian fixed-width integers."""
    payload = bytearray()
    for word in words:
        payload.extend(int(word).to_bytes(word_bytes, "little", signed=False))
    return crc32(payload)
