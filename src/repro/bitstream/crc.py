"""CRC-32 (IEEE 802.3 polynomial, bit-reflected).

The configuration logic of Xilinx devices protects the bitstream with a CRC
that must be recomputed after a relocation filter rewrites frame addresses
(see Section I of the paper).  The exact polynomial of the hardware is not
relevant to the simulation — what matters is that any change to the payload or
the addresses invalidates the old checksum — so the ubiquitous CRC-32 is used.

The hot path (every :meth:`ConfigurationMemory.load` re-checks the stream)
runs through :func:`zlib.crc32`, which implements the same reflected
polynomial with the same pre/post conditioning at C speed.  The table-driven
reference implementation is kept as :func:`crc32_reference` and the tests
assert the two agree on arbitrary payloads and chained initial values.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32_reference(data: bytes | bytearray | Iterable[int], initial: int = 0) -> int:
    """Table-driven CRC-32 — the readable reference the fast path must match."""
    crc = initial ^ 0xFFFFFFFF
    for byte in bytes(data):
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes | bytearray | Iterable[int], initial: int = 0) -> int:
    """CRC-32 of ``data`` (optionally continuing from a previous value)."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        data = bytes(data)
    return zlib.crc32(data, initial) & 0xFFFFFFFF


def crc32_of_words(words: Iterable[int], word_bytes: int = 4) -> int:
    """CRC-32 of a sequence of little-endian fixed-width integers."""
    payload = bytearray()
    for word in words:
        payload.extend(int(word).to_bytes(word_bytes, "little", signed=False))
    return crc32(payload)
