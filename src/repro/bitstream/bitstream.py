"""Partial-bitstream generation.

A :class:`PartialBitstream` is the simulated configuration data of one module
implementation placed on a rectangle of the device: one payload word vector
per frame, addressed by :class:`~repro.bitstream.frames.FrameAddress`, plus a
CRC over (address, payload) pairs exactly as a configuration controller would
check it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.bitstream.crc import crc32
from repro.bitstream.frames import FrameAddress, area_frame_addresses
from repro.device.grid import FPGADevice
from repro.floorplan.geometry import Rect

#: Number of 32-bit words in one configuration frame (Virtex-5 value: 41).
WORDS_PER_FRAME = 41


@dataclasses.dataclass
class PartialBitstream:
    """The configuration data of one module on one placement.

    Attributes
    ----------
    module:
        Name of the module/mode the bitstream implements.
    anchor:
        Rectangle the bitstream currently targets.
    frames:
        Mapping ``FrameAddress -> payload`` (tuple of 32-bit words).
    crc:
        CRC-32 over the (packed address, payload) stream; must match
        :meth:`compute_crc` for the bitstream to be accepted by the
        configuration memory.
    device_width, device_height:
        Grid extent used for address packing (needed by the CRC).
    """

    module: str
    anchor: Rect
    frames: Dict[FrameAddress, Tuple[int, ...]]
    crc: int
    device_width: int
    device_height: int

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of frames in the bitstream."""
        return len(self.frames)

    @property
    def size_words(self) -> int:
        """Total payload size in 32-bit words (excluding addresses)."""
        return sum(len(payload) for payload in self.frames.values())

    def compute_crc(self) -> int:
        """Recompute the CRC over the (address, payload) stream."""
        payload = bytearray()
        for address in sorted(self.frames):
            packed = address.packed(self.device_width, self.device_height)
            payload.extend(packed.to_bytes(8, "little"))
            for word in self.frames[address]:
                payload.extend(int(word).to_bytes(4, "little"))
        return crc32(payload)

    def is_crc_valid(self) -> bool:
        """Whether the stored CRC matches the content."""
        return self.crc == self.compute_crc()

    def frame_addresses(self) -> List[FrameAddress]:
        """Addresses in canonical (sorted) order."""
        return sorted(self.frames)

    def block_type_signature(self) -> Tuple[Tuple[int, int, str], ...]:
        """Relative layout of the frames: (dcol, drow, block type) per tile.

        Two bitstreams generated on compatible areas have identical
        signatures; the relocation filter uses this to validate a retarget
        without needing the device model.
        """
        seen = {}
        for address in self.frames:
            key = (address.col - self.anchor.col, address.row - self.anchor.row)
            seen.setdefault(key, address.block_type)
        return tuple(sorted((c, r, t) for (c, r), t in seen.items()))


def generate_bitstream(
    device: FPGADevice,
    rect: Rect,
    module: str,
    seed: int | None = None,
) -> PartialBitstream:
    """Generate a simulated partial bitstream for a module placed on ``rect``.

    The payload content is pseudo-random (seeded by the module name unless an
    explicit seed is given) — its actual value is irrelevant, what matters is
    that relocation preserves it word for word, which the tests check.
    """
    if not rect.within(device.width, device.height):
        raise ValueError(f"placement {rect} is outside the device")
    for col, row in rect.cells():
        if device.is_forbidden(col, row):
            raise ValueError(
                f"placement {rect} covers forbidden cell ({col}, {row}); "
                "no bitstream can configure a hard block"
            )

    if seed is None:
        seed = crc32(module.encode("utf-8"))
    rng = np.random.default_rng(seed)

    frames: Dict[FrameAddress, Tuple[int, ...]] = {}
    for address in area_frame_addresses(device, rect):
        words = rng.integers(0, 2**32, size=WORDS_PER_FRAME, dtype=np.uint64)
        frames[address] = tuple(int(w) for w in words)

    bitstream = PartialBitstream(
        module=module,
        anchor=Rect(rect.col, rect.row, rect.width, rect.height),
        frames=frames,
        crc=0,
        device_width=device.width,
        device_height=device.height,
    )
    bitstream.crc = bitstream.compute_crc()
    return bitstream
