"""Partial-bitstream generation.

A :class:`PartialBitstream` is the simulated configuration data of one module
implementation placed on a rectangle of the device: one payload word vector
per frame, addressed by :class:`~repro.bitstream.frames.FrameAddress`, plus a
CRC over (address, payload) pairs exactly as a configuration controller would
check it.

Bitstreams are immutable after construction: ``frames`` is exposed through a
read-only mapping view, so the serialized (address, payload) stream and its
CRC can be computed once and cached — the simulator's hot path re-loads the
same cached bitstream hundreds of times per run and must not re-serialize
megabytes of payload on every load.  Producing a modified bitstream (the
relocation filter, a corruption test) means building a new object, e.g. via
``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
from types import MappingProxyType
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from repro.bitstream.crc import crc32
from repro.bitstream.frames import FrameAddress, area_frame_addresses
from repro.device.grid import FPGADevice
from repro.floorplan.geometry import Rect

#: Number of 32-bit words in one configuration frame (Virtex-5 value: 41).
WORDS_PER_FRAME = 41


@dataclasses.dataclass
class PartialBitstream:
    """The configuration data of one module on one placement.

    Attributes
    ----------
    module:
        Name of the module/mode the bitstream implements.
    anchor:
        Rectangle the bitstream currently targets.
    frames:
        Read-only mapping ``FrameAddress -> payload`` (tuple of 32-bit words).
    crc:
        CRC-32 over the (packed address, payload) stream; must match
        :meth:`compute_crc` for the bitstream to be accepted by the
        configuration memory.
    device_width, device_height:
        Grid extent used for address packing (needed by the CRC).
    """

    module: str
    anchor: Rect
    frames: Mapping[FrameAddress, Tuple[int, ...]]
    crc: int
    device_width: int
    device_height: int

    def __post_init__(self) -> None:
        # freeze the frame store: the cached stream/CRC below stay valid for
        # the lifetime of the object, and accidental in-place tampering (the
        # thing the CRC exists to catch) raises instead of silently aliasing
        if not isinstance(self.frames, MappingProxyType):
            self.frames = MappingProxyType(dict(self.frames))
        self._stream: Optional[bytes] = None
        self._stream_crc: Optional[int] = None
        self._address_set: Optional[FrozenSet[FrameAddress]] = None

    # ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of frames in the bitstream."""
        return len(self.frames)

    @property
    def size_words(self) -> int:
        """Total payload size in 32-bit words (excluding addresses)."""
        return sum(len(payload) for payload in self.frames.values())

    def stream_bytes(self) -> bytes:
        """The serialized (packed address, payload) stream, canonical order.

        Computed once and cached: each frame contributes its packed address
        as 8 little-endian bytes followed by its payload words as 4-byte
        little-endian integers, in sorted address order — the byte stream a
        configuration controller would see on the wire.
        """
        if self._stream is None:
            addresses = sorted(self.frames)
            if not addresses:
                self._stream = b""
            else:
                width = max(len(self.frames[a]) for a in addresses)
                packed = np.fromiter(
                    (a.packed(self.device_width, self.device_height) for a in addresses),
                    dtype=np.uint64,
                    count=len(addresses),
                )
                if all(len(self.frames[a]) == width for a in addresses):
                    # uniform frames: one (n, 2 + width) little-endian u32 grid
                    grid = np.empty((len(addresses), 2 + width), dtype="<u4")
                    grid[:, 0] = packed & 0xFFFFFFFF
                    grid[:, 1] = packed >> 32
                    grid[:, 2:] = np.array(
                        [self.frames[a] for a in addresses], dtype=np.uint64
                    ).astype("<u4")
                    self._stream = grid.tobytes()
                else:  # ragged payloads: rare, serialize frame by frame
                    chunks = []
                    for address, point in zip(addresses, packed):
                        chunks.append(int(point).to_bytes(8, "little"))
                        chunks.append(
                            np.array(self.frames[address], dtype=np.uint64)
                            .astype("<u4")
                            .tobytes()
                        )
                    self._stream = b"".join(chunks)
        return self._stream

    def compute_crc(self) -> int:
        """Recompute the CRC over the (address, payload) stream."""
        if self._stream_crc is None:
            self._stream_crc = crc32(self.stream_bytes())
        return self._stream_crc

    def is_crc_valid(self) -> bool:
        """Whether the stored CRC matches the content."""
        return self.crc == self.compute_crc()

    def frame_addresses(self) -> List[FrameAddress]:
        """Addresses in canonical (sorted) order."""
        return sorted(self.frames)

    def frame_address_set(self) -> FrozenSet[FrameAddress]:
        """The addresses as a cached frozenset (the memory's conflict unit)."""
        if self._address_set is None:
            self._address_set = frozenset(self.frames)
        return self._address_set

    def block_type_signature(self) -> Tuple[Tuple[int, int, str], ...]:
        """Relative layout of the frames: (dcol, drow, block type) per tile.

        Two bitstreams generated on compatible areas have identical
        signatures; the relocation filter uses this to validate a retarget
        without needing the device model.
        """
        seen = {}
        for address in self.frames:
            key = (address.col - self.anchor.col, address.row - self.anchor.row)
            seen.setdefault(key, address.block_type)
        return tuple(sorted((c, r, t) for (c, r), t in seen.items()))


def generate_bitstream(
    device: FPGADevice,
    rect: Rect,
    module: str,
    seed: int | None = None,
) -> PartialBitstream:
    """Generate a simulated partial bitstream for a module placed on ``rect``.

    The payload content is pseudo-random (seeded by the module name unless an
    explicit seed is given) — its actual value is irrelevant, what matters is
    that relocation preserves it word for word, which the tests check.
    """
    if not rect.within(device.width, device.height):
        raise ValueError(f"placement {rect} is outside the device")
    for col, row in rect.cells():
        if device.is_forbidden(col, row):
            raise ValueError(
                f"placement {rect} covers forbidden cell ({col}, {row}); "
                "no bitstream can configure a hard block"
            )

    if seed is None:
        seed = crc32(module.encode("utf-8"))
    rng = np.random.default_rng(seed)

    addresses = area_frame_addresses(device, rect)
    words = rng.integers(
        0, 2**32, size=(len(addresses), WORDS_PER_FRAME), dtype=np.uint64
    ).tolist()
    frames: Dict[FrameAddress, Tuple[int, ...]] = {
        address: tuple(row) for address, row in zip(addresses, words)
    }

    bitstream = PartialBitstream(
        module=module,
        anchor=Rect(rect.col, rect.row, rect.width, rect.height),
        frames=frames,
        crc=0,
        device_width=device.width,
        device_height=device.height,
    )
    bitstream.crc = bitstream.compute_crc()
    return bitstream
