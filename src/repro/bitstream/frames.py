"""Frame addressing.

A configuration frame is the smallest unit of configuration data.  Real Xilinx
frame addresses pack block type, top/bottom flag, row, major (column) and
minor (frame-within-column) fields; for the purposes of relocation the three
coordinates that matter are *column*, *row* and *minor*, because relocating a
bitstream between two compatible areas is exactly a constant shift of the
(column, row) part with the minor field untouched.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.device.grid import FPGADevice
from repro.floorplan.geometry import Rect


@dataclasses.dataclass(frozen=True, order=True)
class FrameAddress:
    """Address of one configuration frame.

    Attributes
    ----------
    col, row:
        Tile coordinates on the device grid.
    minor:
        Index of the frame within the tile (``0 .. frames_per_tile - 1``).
    block_type:
        Name of the tile type the frame configures (``"CLB"``, ``"BRAM"``, ...).
    """

    col: int
    row: int
    minor: int
    block_type: str

    def packed(self, device_width: int, device_height: int, max_minor: int = 64) -> int:
        """Pack the address into a single integer (what a real filter rewrites)."""
        if self.minor >= max_minor:
            raise ValueError(f"minor {self.minor} exceeds packing limit {max_minor}")
        return (self.col * device_height + self.row) * max_minor + self.minor

    def translated(self, dcol: int, drow: int) -> "FrameAddress":
        """The address shifted by a (column, row) offset — the relocation move."""
        return FrameAddress(
            col=self.col + dcol,
            row=self.row + drow,
            minor=self.minor,
            block_type=self.block_type,
        )


def area_frame_addresses(device: FPGADevice, rect: Rect) -> List[FrameAddress]:
    """Frame addresses of every frame configuring the tiles of ``rect``.

    Frames are listed column-major, bottom-to-top, minor-last — a fixed,
    deterministic order shared by bitstream generation and relocation so that
    corresponding frames line up by position.
    """
    addresses: List[FrameAddress] = []
    for col in rect.columns():
        for row in rect.rows():
            tile_type = device.tile_type_at(col, row)
            for minor in range(tile_type.frames):
                addresses.append(
                    FrameAddress(col=col, row=row, minor=minor, block_type=tile_type.name)
                )
    return addresses


def frame_count(device: FPGADevice, rect: Rect) -> int:
    """Total number of frames needed to configure ``rect``."""
    return sum(device.tile_type_at(col, row).frames for col, row in rect.cells())
