"""Configuration-memory model.

:class:`ConfigurationMemory` simulates the device's configuration plane: a
store of frame payloads keyed by frame address, loaded through a port that
checks the bitstream CRC (like the ICAP/SelectMAP controllers) and refuses to
overwrite frames belonging to another active module.  The run-time manager and
the end-to-end tests use it to show that relocation really moves a module's
configuration without touching anything else.

The store is module-granular rather than frame-granular: loading a bitstream
records the (immutable, CRC-cached) bitstream object and claims its address
set, instead of copying thousands of payload tuples into a per-frame dict.
Ownership checks are set intersections and the CRC check is a cached-value
compare, so the simulator's reconfiguration hot path (unload + load per
request) costs microseconds; per-frame content is materialized only on the
cold paths (``readback``/``verify``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bitstream.bitstream import PartialBitstream
from repro.bitstream.frames import FrameAddress

_ZERO_FRAME: Tuple[int, ...] = tuple([0] * 41)


class ConfigurationError(RuntimeError):
    """Raised on CRC mismatch or conflicting configuration writes."""


class ConfigurationMemory:
    """The simulated configuration plane of one device."""

    def __init__(self, device_name: str = "device") -> None:
        self.device_name = device_name
        # addresses currently owned by each module (disjoint across modules)
        self._owned: Dict[str, Set[FrameAddress]] = {}
        # load history per module, oldest first; content at an owned address
        # is the newest load of its owner that wrote that address
        self._loads: Dict[str, List[PartialBitstream]] = {}
        self.write_count = 0
        self.frame_write_count = 0

    # ------------------------------------------------------------------
    def load(self, bitstream: PartialBitstream, allow_overwrite: bool = False) -> None:
        """Load a partial bitstream (CRC-checked) into the memory.

        ``allow_overwrite`` permits reconfiguring frames currently owned by
        another module (used when a region is intentionally reconfigured with
        a different mode); without it, conflicting writes raise.
        """
        if not bitstream.is_crc_valid():
            raise ConfigurationError(
                f"bitstream for {bitstream.module!r} fails its CRC check"
            )
        addresses = bitstream.frame_address_set()
        module = bitstream.module
        for other, owned in self._owned.items():
            if other == module or owned.isdisjoint(addresses):
                continue
            if not allow_overwrite:
                overlap = len(owned & addresses)
                raise ConfigurationError(
                    f"{overlap} frames already configured by {other!r}; "
                    "unload it first or pass allow_overwrite=True"
                )
            owned -= addresses

        existing = self._owned.get(module)
        if existing is None:
            self._owned[module] = set(addresses)
        else:
            existing |= addresses
        self._loads.setdefault(module, []).append(bitstream)
        self.write_count += 1
        self.frame_write_count += len(addresses)

    def unload(self, module: str) -> int:
        """Remove every frame owned by ``module``; returns the frame count."""
        addresses = self._owned.pop(module, None)
        self._loads.pop(module, None)
        return len(addresses) if addresses else 0

    # ------------------------------------------------------------------
    def _content(self, address: FrameAddress) -> Optional[Tuple[int, ...]]:
        owner = self.owner_of(address)
        if owner is None:
            return None
        for loaded in reversed(self._loads.get(owner, [])):
            payload = loaded.frames.get(address)
            if payload is not None:
                return payload
        return None

    def readback(self, addresses: List[FrameAddress]) -> Dict[FrameAddress, Tuple[int, ...]]:
        """Read the payload of the given frames (missing frames read as zeros)."""
        return {
            address: self._content(address) or _ZERO_FRAME for address in addresses
        }

    def verify(self, bitstream: PartialBitstream) -> bool:
        """Whether the memory currently holds exactly this bitstream's content."""
        for address, payload in bitstream.frames.items():
            if self._content(address) != payload:
                return False
        return True

    def owner_of(self, address: FrameAddress) -> Optional[str]:
        """Module currently configured on a frame (``None`` when unused)."""
        for module, owned in self._owned.items():
            if address in owned:
                return module
        return None

    def loaded_modules(self) -> List[str]:
        """Names of modules with at least one configured frame."""
        return sorted(name for name, owned in self._owned.items() if owned)

    @property
    def configured_frame_count(self) -> int:
        """Number of frames currently holding configuration data."""
        return sum(len(owned) for owned in self._owned.values())

    def __repr__(self) -> str:
        return (
            f"ConfigurationMemory({self.device_name!r}, "
            f"{self.configured_frame_count} frames, modules={self.loaded_modules()})"
        )
