"""Configuration-memory model.

:class:`ConfigurationMemory` simulates the device's configuration plane: a
store of frame payloads keyed by frame address, loaded through a port that
checks the bitstream CRC (like the ICAP/SelectMAP controllers) and refuses to
overwrite frames belonging to another active module.  The run-time manager and
the end-to-end tests use it to show that relocation really moves a module's
configuration without touching anything else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bitstream.bitstream import PartialBitstream
from repro.bitstream.frames import FrameAddress


class ConfigurationError(RuntimeError):
    """Raised on CRC mismatch or conflicting configuration writes."""


class ConfigurationMemory:
    """The simulated configuration plane of one device."""

    def __init__(self, device_name: str = "device") -> None:
        self.device_name = device_name
        self._frames: Dict[FrameAddress, Tuple[int, ...]] = {}
        self._owner: Dict[FrameAddress, str] = {}
        self._loaded_modules: Dict[str, Set[FrameAddress]] = {}
        self.write_count = 0
        self.frame_write_count = 0

    # ------------------------------------------------------------------
    def load(self, bitstream: PartialBitstream, allow_overwrite: bool = False) -> None:
        """Load a partial bitstream (CRC-checked) into the memory.

        ``allow_overwrite`` permits reconfiguring frames currently owned by
        another module (used when a region is intentionally reconfigured with
        a different mode); without it, conflicting writes raise.
        """
        if not bitstream.is_crc_valid():
            raise ConfigurationError(
                f"bitstream for {bitstream.module!r} fails its CRC check"
            )
        conflicts = [
            address
            for address in bitstream.frames
            if address in self._owner and self._owner[address] != bitstream.module
        ]
        if conflicts and not allow_overwrite:
            owner = self._owner[conflicts[0]]
            raise ConfigurationError(
                f"{len(conflicts)} frames already configured by {owner!r}; "
                "unload it first or pass allow_overwrite=True"
            )
        for address in conflicts:
            previous = self._owner[address]
            self._loaded_modules.get(previous, set()).discard(address)

        touched: Set[FrameAddress] = set()
        for address, payload in bitstream.frames.items():
            self._frames[address] = payload
            self._owner[address] = bitstream.module
            touched.add(address)
        existing = self._loaded_modules.setdefault(bitstream.module, set())
        existing |= touched
        self.write_count += 1
        self.frame_write_count += len(bitstream.frames)

    def unload(self, module: str) -> int:
        """Remove every frame owned by ``module``; returns the frame count."""
        addresses = self._loaded_modules.pop(module, set())
        for address in addresses:
            self._frames.pop(address, None)
            self._owner.pop(address, None)
        return len(addresses)

    # ------------------------------------------------------------------
    def readback(self, addresses: List[FrameAddress]) -> Dict[FrameAddress, Tuple[int, ...]]:
        """Read the payload of the given frames (missing frames read as zeros)."""
        return {
            address: self._frames.get(address, tuple([0] * 41)) for address in addresses
        }

    def verify(self, bitstream: PartialBitstream) -> bool:
        """Whether the memory currently holds exactly this bitstream's content."""
        for address, payload in bitstream.frames.items():
            if self._frames.get(address) != payload:
                return False
        return True

    def owner_of(self, address: FrameAddress) -> Optional[str]:
        """Module currently configured on a frame (``None`` when unused)."""
        return self._owner.get(address)

    def loaded_modules(self) -> List[str]:
        """Names of modules with at least one configured frame."""
        return sorted(name for name, frames in self._loaded_modules.items() if frames)

    @property
    def configured_frame_count(self) -> int:
        """Number of frames currently holding configuration data."""
        return len(self._frames)

    def __repr__(self) -> str:
        return (
            f"ConfigurationMemory({self.device_name!r}, "
            f"{self.configured_frame_count} frames, modules={self.loaded_modules()})"
        )
