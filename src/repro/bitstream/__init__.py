"""Simulated partial bitstreams and the relocation filter.

The paper positions its floorplanner as complementary to bitstream relocation
filters (REPLICA, BiRF — references [2]–[6]): the floorplanner reserves
free-compatible areas, a filter then retargets the configuration data at run
time by rewriting frame addresses and recomputing the CRC.  None of those
filters is needed to reproduce the paper's tables, but without one the
end-to-end story ("reserve an area, later relocate the bitstream into it")
cannot be executed.  This package therefore provides a simulated configuration
path:

* :mod:`~repro.bitstream.frames` — frame addresses and the frame layout of a
  placed area;
* :mod:`~repro.bitstream.crc` — a table-driven CRC-32;
* :mod:`~repro.bitstream.bitstream` — partial-bitstream generation for a
  region placement;
* :mod:`~repro.bitstream.relocate` — the relocation filter (address rewrite +
  CRC update), which refuses to retarget between non-compatible areas;
* :mod:`~repro.bitstream.memory` — a configuration-memory model with readback,
  used by the tests and the run-time manager to verify relocations.
"""

from repro.bitstream.frames import FrameAddress, area_frame_addresses
from repro.bitstream.crc import crc32
from repro.bitstream.bitstream import PartialBitstream, generate_bitstream
from repro.bitstream.relocate import RelocationError, relocate_bitstream
from repro.bitstream.memory import ConfigurationMemory

__all__ = [
    "FrameAddress",
    "area_frame_addresses",
    "crc32",
    "PartialBitstream",
    "generate_bitstream",
    "RelocationError",
    "relocate_bitstream",
    "ConfigurationMemory",
]
