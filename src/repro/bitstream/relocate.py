"""The relocation filter.

Relocating a partial bitstream means shifting every frame address from the
source area to the target area and recomputing the CRC (Section I of the
paper).  The filter below refuses to retarget a bitstream onto an area that is
not compatible with its source — the same guarantee a hardware filter such as
BiRF relies on the floorplanner to provide — so the end-to-end tests can show
that floorplans produced with relocation constraints are exactly the ones on
which relocation succeeds.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bitstream.bitstream import PartialBitstream
from repro.device.grid import FPGADevice
from repro.device.partition import ColumnarPartition
from repro.floorplan.geometry import Rect


class RelocationError(RuntimeError):
    """Raised when a bitstream cannot be retargeted to the requested area."""


def relocate_bitstream(
    bitstream: PartialBitstream,
    target: Rect,
    device: FPGADevice,
    partition: Optional[ColumnarPartition] = None,
    occupied: Iterable[Rect] = (),
) -> PartialBitstream:
    """Retarget ``bitstream`` onto ``target`` and recompute its CRC.

    Parameters
    ----------
    bitstream:
        The source partial bitstream.
    target:
        The rectangle to relocate into (typically a free-compatible area
        reserved by the floorplanner).
    device:
        Device model used to validate the target footprint.
    partition:
        Optional columnar partition (computed from ``device`` when omitted);
        used for the compatibility check.
    occupied:
        Rectangles currently occupied by other modules; overlapping any of
        them is a relocation error (Definition .2's "free" requirement).

    Raises
    ------
    RelocationError
        If the target has a different shape, lies outside the device, covers
        forbidden tiles, has a different tile-type layout, or overlaps an
        occupied area.
    """
    source = bitstream.anchor
    if (target.width, target.height) != (source.width, source.height):
        raise RelocationError(
            f"target {target} has a different shape than the source {source}"
        )
    if not target.within(device.width, device.height):
        raise RelocationError(f"target {target} lies outside the device")
    for col, row in target.cells():
        if device.is_forbidden(col, row):
            raise RelocationError(f"target {target} covers forbidden cell ({col}, {row})")
    for rect in occupied:
        if target.overlaps(rect):
            raise RelocationError(f"target {target} overlaps occupied area {rect}")

    if partition is None:
        from repro.device.partition import columnar_partition

        partition = columnar_partition(device)

    from repro.relocation.compatibility import areas_compatible

    if not areas_compatible(partition, source, target):
        raise RelocationError(
            f"target {target} is not compatible with the source area {source}: "
            "the tile-type layout differs"
        )

    dcol = target.col - source.col
    drow = target.row - source.row
    relocated_frames = {}
    for address, payload in bitstream.frames.items():
        new_address = address.translated(dcol, drow)
        expected_type = device.tile_type_at(new_address.col, new_address.row).name
        if expected_type != address.block_type:
            # defensive double-check; unreachable when areas_compatible passed
            raise RelocationError(
                f"frame {address} would land on a {expected_type} tile "
                f"but configures {address.block_type}"
            )
        relocated_frames[new_address] = payload

    relocated = PartialBitstream(
        module=bitstream.module,
        anchor=Rect(target.col, target.row, target.width, target.height),
        frames=relocated_frames,
        crc=0,
        device_width=bitstream.device_width,
        device_height=bitstream.device_height,
    )
    relocated.crc = relocated.compute_crc()
    return relocated
