"""Synchronous fleet harness: manager + router behind one context manager.

:class:`BackgroundFleet` is to the fleet what
:class:`~repro.server.gateway.BackgroundGateway` is to a single gateway — the
shared harness of the tests, the benchmarks, the scaling example and the
load-generator fleet driver.  It spawns the replica processes through a
:class:`~repro.fleet.manager.FleetManager`, waits for them to answer
``/healthz``, then runs a :class:`~repro.fleet.router.FleetRouter` on a
dedicated event-loop thread.  Clients talk to ``(host, port)`` exactly as they
would to one gateway; everything behind the router is the fleet's business.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Sequence

from repro.fleet.manager import FleetConfig, FleetManager
from repro.fleet.router import FleetRouter, RouterConfig

__all__ = ["BackgroundRouter", "BackgroundFleet"]


class BackgroundRouter:
    """Run a :class:`FleetRouter` on a dedicated event-loop thread."""

    def __init__(self, router: FleetRouter, start_timeout: float = 10.0) -> None:
        self.router = router
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-fleet-router", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self.router.start(), self._loop)
        try:
            future.result(timeout=start_timeout)
        except BaseException:
            # a failed bind must not leak the loop thread just started
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=start_timeout)
            if not self._loop.is_running():
                self._loop.close()
            raise
        self._stopped = False

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def port(self) -> int:
        assert self.router.port is not None
        return self.router.port

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the router and stop the loop thread (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.router.drain(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
            if not self._loop.is_running():
                self._loop.close()

    def __enter__(self) -> "BackgroundRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class BackgroundFleet:
    """A whole fleet — replica processes plus routing frontend — as one
    synchronous context manager.

    Parameters
    ----------
    replicas:
        Replica-process count.
    cache_dir:
        The shared cache-tier directory (required; see
        :class:`~repro.fleet.manager.FleetConfig`).
    server_args:
        Extra ``python -m repro.server`` arguments for every replica.
    fleet_config, router_config:
        Full overrides; ``replicas``/``cache_dir``/``server_args`` are
        ignored when ``fleet_config`` is given.
    """

    def __init__(
        self,
        replicas: int = 2,
        cache_dir: str = "",
        server_args: Sequence[str] = (),
        fleet_config: Optional[FleetConfig] = None,
        router_config: Optional[RouterConfig] = None,
    ) -> None:
        config = fleet_config or FleetConfig(
            replicas=replicas, cache_dir=cache_dir, server_args=tuple(server_args)
        )
        self.manager = FleetManager(config)
        self._router_harness: Optional[BackgroundRouter] = None
        try:
            self.manager.start(wait_healthy=True)
            router = FleetRouter(
                self.manager.addresses,
                router_config or RouterConfig(host=config.host, port=0),
            )
            self._router_harness = BackgroundRouter(router)
        except BaseException:
            self.stop()
            raise
        self._stopped = False

    @property
    def router(self) -> FleetRouter:
        assert self._router_harness is not None
        return self._router_harness.router

    @property
    def host(self) -> str:
        return self.manager.config.host

    @property
    def port(self) -> int:
        """The router's bound port — the fleet's single client-facing address."""
        assert self._router_harness is not None
        return self._router_harness.port

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the router first (drains client traffic), then the replicas."""
        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        try:
            if self._router_harness is not None:
                self._router_harness.stop(timeout=timeout)
        finally:
            self.manager.stop(timeout=timeout)

    def __enter__(self) -> "BackgroundFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
