"""The fleet's front door: consistent-hash routing over replica gateways.

A :class:`FleetRouter` is a stdlib-asyncio HTTP frontend that owns no solver
at all.  For every ``POST /solve`` it decodes the body into a fingerprint-
exact :class:`~repro.service.jobs.SolveJob` (off the event loop, exactly like
the gateway does) and forwards the request to the replica that **owns** that
fingerprint on the :class:`~repro.fleet.hashing.HashRing`.  Ownership is what
makes the fleet's caches compose: repeats of a job land where its entry is
already memory-hot, and concurrent identical misses meet in one process where
the micro-batcher dedups them before the cache tier's cross-replica lock
files are even needed.

Per-replica **keep-alive upstream pools** recycle connections between
requests; an upstream that refuses or drops a connection is marked down for a
cooldown and the request is retried on the next replica in the ring's
deterministic preference order.  When the whole fleet is momentarily down
(e.g. the only replica is mid-restart), the router keeps sweeping the
preference list until ``retry_deadline`` — so killing a replica under load
costs latency, never failed client requests, as long as the supervisor
restarts it within the budget.

``GET /metrics`` serves a **fleet-wide roll-up**: counters summed across the
replicas' machine-readable ``/metrics?format=json`` documents, latency
histograms merged bucket-by-bucket (:func:`repro.server.metrics.
merge_raw_histograms` — exact, unlike averaging rendered percentiles), plus
the router's own routing/retry counters.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import (
    SERVER_COUNTER_HEADERS,
    SIM_LATENCY_HEADERS,
    format_table,
    server_counter_rows,
    sim_latency_rows,
)
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.hashing import DEFAULT_VNODES, HashRing
from repro.obs.recorder import TraceRecorder
from repro.obs.trace import (
    TRACE_HEADER,
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    format_trace_header,
    new_id,
    summarize_trace_doc,
)
from repro.server.http import (
    HttpError,
    HttpRequest,
    parse_query,
    read_request,
    write_response,
)
from repro.server.metrics import LatencyHistogram, merge_raw_histograms
from repro.server.protocol import (
    DEADLINE_HEADER,
    QUEUE_DEPTH_HEADER,
    ProtocolError,
    deadline_from_payload,
    job_from_dict,
    parse_deadline,
)
from repro.utils.buildinfo import git_rev

__all__ = ["RouterConfig", "FleetRouter", "UpstreamError", "UpstreamPool"]

#: Replica counter fields summed verbatim in the fleet roll-up.
_SUMMED_COUNTERS = (
    "received",
    "ok",
    "bad_requests",
    "shed_rate_limited",
    "shed_queue_full",
    "rejected_draining",
    "solve_errors",
    "cache_hits",
    "cache_misses",
    "batches",
    "batched_jobs",
    "deduped_jobs",
    "flight_waits",
    "flight_takeovers",
    "deadline_expired",
    "degraded",
    "queue_depth",
)

_SUMMED_CACHE = (
    "hits",
    "misses",
    "stores",
    "evictions",
    "corrupt",
    "migrated",
    "flights",
    "stale_locks",
    "corrupt_locks",
    "broken_locks",
    "lock_errors",
    "store_errors",
)


class UpstreamError(ConnectionError):
    """A replica could not be reached or dropped the connection mid-request."""


@dataclasses.dataclass(frozen=True)
class RouterConfig:
    """Tunables of the router frontend.

    Attributes
    ----------
    host, port:
        Downstream listen address (``port=0`` binds an ephemeral port).
    vnodes:
        Virtual nodes per replica on the hash ring.
    connect_timeout:
        Seconds to establish one upstream connection.
    upstream_idle_max:
        Keep-alive connections pooled per replica.
    down_cooldown:
        Seconds a failed upstream's circuit stays open before a half-open
        probe is admitted (the breaker's ``open_for``).
    breaker_failures:
        Consecutive failures that open an upstream's circuit.  The default of
        1 reproduces the old any-failure-cools-down behaviour; raise it so a
        single flaky connect no longer blackholes a healthy replica.
    retry_deadline:
        Total per-request retry budget across preference sweeps; the router
        answers 503 only after the whole fleet stayed unreachable this long.
        A client deadline tighter than this caps the budget per request.
    retry_wait:
        Base pause between full sweeps of the preference list; successive
        sweeps back off exponentially (doubling, capped at
        ``retry_wait_cap``) with full jitter so concurrent retriers spread
        out instead of sweeping in lockstep.
    retry_wait_cap:
        Upper bound on the between-sweep backoff.
    backoff_seed:
        Seed for the jitter RNG (deterministic retries in tests).
    shed_watermark:
        Fleet-wide mean queue depth (per-replica EWMA averaged over live
        replicas) past which new solves are shed at the front door with 503
        and an honest ``Retry-After``.  ``None`` disables front-door
        shedding.
    depth_ewma_alpha:
        Smoothing factor of the per-replica queue-depth EWMA fed by the
        ``X-Repro-Queue-Depth`` response header.
    tracing, trace_capacity, trace_sink:
        When ``tracing`` is on (the default) the router mints a trace id per
        ``/solve``, records decode + per-attempt forward spans into a bounded
        ring of ``trace_capacity`` traces (``GET /debug/traces``), and
        propagates the id downstream in ``X-Repro-Trace`` so replica-side
        fragments share it.  ``trace_sink`` additionally appends completed
        traces to a rotating JSONL file for capture→replay.
    """

    host: str = "127.0.0.1"
    port: int = 8770
    vnodes: int = DEFAULT_VNODES
    connect_timeout: float = 2.0
    upstream_idle_max: int = 16
    down_cooldown: float = 0.5
    breaker_failures: int = 1
    retry_deadline: float = 15.0
    retry_wait: float = 0.05
    retry_wait_cap: float = 1.0
    backoff_seed: Optional[int] = None
    shed_watermark: Optional[float] = None
    depth_ewma_alpha: float = 0.3
    tracing: bool = True
    trace_capacity: int = 256
    trace_sink: Optional[str] = None

    def __post_init__(self) -> None:
        if self.retry_deadline <= 0 or self.retry_wait < 0:
            raise ValueError("retry_deadline must be positive, retry_wait >= 0")
        if self.breaker_failures <= 0:
            raise ValueError("breaker_failures must be positive")
        if not 0.0 < self.depth_ewma_alpha <= 1.0:
            raise ValueError("depth_ewma_alpha must be in (0, 1]")
        if self.shed_watermark is not None and self.shed_watermark <= 0:
            raise ValueError("shed_watermark must be positive (or None)")


class UpstreamPool:
    """Keep-alive connection pool, circuit breaker and load estimate for one
    replica."""

    def __init__(self, host: str, port: int, config: RouterConfig) -> None:
        self.host = host
        self.port = port
        self.node = f"{host}:{port}"
        self.config = config
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failures,
            open_for=config.down_cooldown,
        )
        self.routed = 0
        self.failures = 0
        #: EWMA of the replica's self-reported micro-batcher queue depth
        #: (``X-Repro-Queue-Depth`` on every response); ``None`` until the
        #: replica has answered once.
        self.depth_ewma: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def down(self) -> bool:
        """Is the circuit open right now?  (Non-mutating: reporting only —
        the routing sweep uses :meth:`CircuitBreaker.allow`, which also
        admits the single half-open probe.)"""
        return self.breaker.state == "open"

    def mark_down(self) -> None:
        self.failures += 1
        self.breaker.record_failure()

    def mark_up(self) -> None:
        self.breaker.record_success()

    def observe_depth(self, headers: Dict[str, str]) -> None:
        """Fold a response's queue-depth report into the load EWMA."""
        raw = headers.get(QUEUE_DEPTH_HEADER.lower())
        if raw is None:
            return
        try:
            depth = float(raw)
        except ValueError:
            return
        alpha = self.config.depth_ewma_alpha
        if self.depth_ewma is None:
            self.depth_ewma = depth
        else:
            self.depth_ewma = alpha * depth + (1.0 - alpha) * self.depth_ewma

    # ------------------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One round trip on a pooled connection; :class:`UpstreamError` on
        any transport failure (the connection is discarded, never reused).
        Returns ``(status, lower-cased response headers, body)``."""
        reader, writer = await self._checkout()
        try:
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: {self.node}",
                f"Content-Length: {len(body)}",
                "Content-Type: application/json",
            ]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
            status, response_headers, response_body = await self._read_response(reader)
        except (ConnectionError, OSError, asyncio.IncompleteReadError, EOFError) as exc:
            self._discard(writer)
            raise UpstreamError(f"{self.node}: {exc}") from exc
        except asyncio.TimeoutError as exc:
            self._discard(writer)
            raise UpstreamError(f"{self.node}: connect timed out") from exc
        keep = response_headers.get("connection", "keep-alive").lower() != "close"
        if keep and len(self._idle) < self.config.upstream_idle_max:
            self._idle.append((reader, writer))
        else:
            self._discard(writer)
        self.mark_up()
        self.observe_depth(response_headers)
        return status, response_headers, response_body

    async def _checkout(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            self._discard(writer)
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.config.connect_timeout,
            )
        except (ConnectionError, OSError) as exc:
            raise UpstreamError(f"{self.node}: {exc}") from exc
        except asyncio.TimeoutError as exc:
            raise UpstreamError(f"{self.node}: connect timed out") from exc

    @staticmethod
    async def _read_response(reader) -> Tuple[int, Dict[str, str], bytes]:
        status_line = await reader.readline()
        if not status_line:
            raise EOFError("upstream closed the connection")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise EOFError(f"malformed upstream status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                raise EOFError("upstream closed mid-headers")
            if line in (b"\r\n", b"\n"):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    def _discard(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except (ConnectionError, OSError):
            pass

    async def close(self) -> None:
        while self._idle:
            _reader, writer = self._idle.pop()
            self._discard(writer)


@dataclasses.dataclass
class RouterMetrics:
    """The router's own counters (replica counters live in the roll-up)."""

    received: int = 0  # solve requests accepted off the wire
    routed: int = 0  # solve requests answered by an upstream
    bad_requests: int = 0  # undecodable bodies answered 400 here
    retries: int = 0  # forward attempts beyond the first
    failovers: int = 0  # requests NOT answered by their ring owner
    unavailable: int = 0  # 503s after the retry budget ran out
    rejected_draining: int = 0
    shed_overload: int = 0  # 503s: fleet-wide queue depth over the watermark
    deadline_expired: int = 0  # 504s answered at the router (budget ran out)

    def __post_init__(self) -> None:
        self.latency = LatencyHistogram()

    def as_dict(self) -> Dict[str, object]:
        return {
            "received": self.received,
            "routed": self.routed,
            "bad_requests": self.bad_requests,
            "retries": self.retries,
            "failovers": self.failovers,
            "unavailable": self.unavailable,
            "rejected_draining": self.rejected_draining,
            "shed_overload": self.shed_overload,
            "deadline_expired": self.deadline_expired,
        }


class FleetRouter:
    """Listen, route, retry, roll up."""

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        config: Optional[RouterConfig] = None,
    ) -> None:
        if not addresses:
            raise ValueError("a router needs at least one replica address")
        self.config = config or RouterConfig()
        self.pools: Dict[str, UpstreamPool] = {}
        for host, port in addresses:
            pool = UpstreamPool(host, port, self.config)
            self.pools[pool.node] = pool
        self.ring = HashRing(list(self.pools), vnodes=self.config.vnodes)
        self.metrics = RouterMetrics()
        self._jitter = random.Random(self.config.backoff_seed)
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(
                capacity=self.config.trace_capacity,
                sink_path=self.config.trace_sink,
            )
            if self.config.tracing
            else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._started = time.time()
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle (mirrors SolveGateway so the CLI/harness code is shared)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for pool in self.pools.values():
            await pool.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, {"error": str(exc)}, keep_alive=False
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                try:
                    status, payload, headers = await self._dispatch(request)
                except Exception as exc:  # noqa: BLE001 — never kill the
                    # connection without an answer
                    status, headers = 500, None
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                keep_alive = request.keep_alive
                await write_response(
                    writer, status, payload, keep_alive=keep_alive, extra_headers=headers
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest):
        path, _sep, query = request.path.partition("?")
        route = (request.method, path)
        if route == ("POST", "/solve"):
            return await self._solve(request)
        if route == ("GET", "/healthz"):
            return 200, self._healthz(), None
        if route == ("GET", "/metrics"):
            raw = "format=json" in query.split("&")
            return 200, await self.metrics_rollup(raw=raw), None
        if route == ("GET", "/debug/traces"):
            return self._debug_traces(query)
        if request.method == "GET" and path.startswith("/debug/traces/"):
            return self._debug_trace_by_id(path[len("/debug/traces/"):])
        if route == ("GET", "/dashboard"):
            return 200, await self._dashboard(), None
        if path in ("/solve", "/healthz", "/metrics", "/dashboard", "/debug/traces"):
            return 405, {"error": f"{request.method} not allowed on {path}"}, None
        return 404, {"error": f"no route for {request.method} {path}"}, None

    # ------------------------------------------------------------------
    # the solve route: decode -> ring -> forward with retries
    # ------------------------------------------------------------------
    async def _solve(self, request: HttpRequest):
        trace: Optional[Trace] = None
        root: Optional[Span] = None
        if self.recorder is not None:
            # the router is normally where the trace id is minted (clients
            # rarely send the header); replicas continue it downstream
            trace = Trace.begin(
                request.header(TRACE_HEADER) or None,
                origin="router",
                metadata={"client": request.header("x-client-id") or None},
            )
            root = Span(
                name="router.request",
                span_id=new_id(),
                parent_id=trace.remote_parent,
                start=trace.start,
                end=0.0,
            )
        status = 500
        try:
            status, payload, headers = await self._solve_inner(request, trace, root)
            if trace is not None:
                headers = dict(headers or {})
                headers.setdefault(TRACE_HEADER, trace.trace_id)
            return status, payload, headers
        finally:
            # every exit — routed, shed, unroutable, or crashed — lands the
            # trace with the root span first and the final status
            if trace is not None:
                root.annotations["http_status"] = status
                root.end = trace.wall(time.perf_counter())
                trace.spans.insert(0, root)
                trace.finish("ok" if status == 200 else f"http_{status}")
                self.recorder.record(trace)

    async def _solve_inner(
        self, request: HttpRequest, trace: Optional[Trace], root: Optional[Span]
    ):
        self.metrics.received += 1
        arrival = time.monotonic()
        if self._draining:
            self.metrics.rejected_draining += 1
            return 503, {"error": "router is draining"}, {"Retry-After": "1"}

        # per-request budget: header first (cheap, pre-decode), body second
        try:
            budget = parse_deadline(request.header(DEADLINE_HEADER) or None)
        except ProtocolError as exc:
            self.metrics.bad_requests += 1
            return 400, {"error": str(exc)}, None
        if budget is not None and budget <= 0:
            return self._expired(trace, root, budget)

        # replica-aware front-door shed: when the fleet-wide queue depth
        # (mean of the per-replica EWMAs) crosses the watermark, refuse here
        # with an honest Retry-After instead of queueing the request into a
        # backlog it would time out inside anyway
        shed_after = self._overload_retry_after()
        if shed_after is not None:
            self.metrics.shed_overload += 1
            if trace is not None:
                now = time.perf_counter()
                trace.add_span(
                    "router.shed", now, now, parent=root,
                    reason="overload", retry_after=shed_after,
                )
            return (
                503,
                {"error": "shed", "reason": "fleet_overloaded"},
                {"Retry-After": str(shed_after)},
            )

        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            # decode off the loop: the fingerprint needs the canonical job
            # content, and device-grid rebuilds are CPU-bound
            def _decode():
                payload = request.json()
                return job_from_dict(payload), deadline_from_payload(payload)

            job, body_budget = await loop.run_in_executor(None, _decode)
        except (HttpError, ProtocolError) as exc:
            self.metrics.bad_requests += 1
            if trace is not None:
                trace.add_span(
                    "router.decode", started, time.perf_counter(),
                    parent=root, error=str(exc),
                )
            return 400, {"error": str(exc)}, None
        if budget is None and body_budget is not None:
            budget = body_budget
        deadline_at = arrival + budget if budget is not None else None
        if trace is not None:
            trace.add_span("router.decode", started, time.perf_counter(), parent=root)
            trace.metadata["fingerprint"] = job.fingerprint
            trace.metadata["job"] = job.name
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return self._expired(trace, root, budget)

        forward_headers: Dict[str, str] = {}
        client_id = request.header("x-client-id")
        if client_id:
            forward_headers["X-Client-Id"] = client_id
        if trace is not None:
            # the replica's gateway fragment hangs off this router's root
            # span, stitching the two processes' spans into one request story
            forward_headers[TRACE_HEADER] = format_trace_header(
                trace.trace_id, root.span_id
            )

        preference = list(self.ring.preference(job.fingerprint))
        # the retry budget is derived from the client's deadline when one is
        # given: a 2 s request must not be swept for the full retry_deadline
        retry_budget = self.config.retry_deadline
        if budget is not None:
            retry_budget = min(retry_budget, budget)
        deadline = arrival + retry_budget
        attempt = 0
        sweep = 0
        while True:
            for rank, node in enumerate(preference):
                pool = self.pools[node]
                if not pool.breaker.allow() and time.monotonic() < deadline:
                    continue  # circuit open: skip while other replicas remain
                attempt += 1
                if attempt > 1:
                    self.metrics.retries += 1
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:
                        return self._expired(trace, root, budget)
                    # re-stamp the header so each hop sees an honest budget
                    forward_headers[DEADLINE_HEADER] = f"{remaining:.6f}"
                forward_started = time.perf_counter()
                try:
                    status, _resp_headers, body = await pool.request(
                        "POST", "/solve", request.body, forward_headers
                    )
                except UpstreamError as exc:
                    pool.mark_down()
                    if trace is not None:
                        trace.add_span(
                            "router.forward", forward_started, time.perf_counter(),
                            parent=root, node=node, rank=rank, attempt=attempt,
                            error=str(exc),
                        )
                    continue
                if trace is not None:
                    trace.add_span(
                        "router.forward", forward_started, time.perf_counter(),
                        parent=root, node=node, rank=rank, attempt=attempt,
                        status=status,
                    )
                if status == 503:
                    # the replica is draining (mid-restart): retryable, the
                    # solve is idempotent and the cache absorbs duplicates
                    pool.mark_down()
                    continue
                if status == 504:
                    # the replica reports the budget expired downstream: final
                    # for this request, never worth a retry
                    self.metrics.deadline_expired += 1
                pool.routed += 1
                self.metrics.routed += 1
                if rank > 0:
                    self.metrics.failovers += 1
                self.metrics.latency.observe(time.perf_counter() - started)
                return status, _RawJson(body), None
            if time.monotonic() >= deadline:
                break
            # full sweep failed (or every circuit was open): back off with
            # full jitter — exponential so a dead fleet is not hammered, and
            # jittered so concurrent retriers do not sweep in lockstep
            ceiling = min(self.config.retry_wait_cap, self.config.retry_wait * (2 ** sweep))
            delay = self._jitter.uniform(0.0, ceiling)
            sweep += 1
            delay = min(delay, max(0.0, deadline - time.monotonic()))
            if delay > 0:
                await asyncio.sleep(delay)
        if deadline_at is not None and time.monotonic() >= deadline_at:
            return self._expired(trace, root, budget)
        self.metrics.unavailable += 1
        return 503, {"error": "no replica reachable"}, {"Retry-After": "1"}

    def _expired(self, trace: Optional[Trace], root: Optional[Span], budget):
        """Answer 504 at the router: the client's budget is already gone."""
        self.metrics.deadline_expired += 1
        if trace is not None:
            now = time.perf_counter()
            trace.add_span(
                "deadline.expired", now, now, parent=root, budget_s=budget,
            )
        return (
            504,
            {"error": "deadline expired", "reason": "deadline_expired"},
            {"Retry-After": "1"},
        )

    def _overload_retry_after(self) -> Optional[int]:
        """Seconds to advertise in ``Retry-After`` when shedding for overload,
        or ``None`` while the fleet is under its watermark (or unmeasured)."""
        watermark = self.config.shed_watermark
        if watermark is None:
            return None
        depths = [
            pool.depth_ewma for pool in self.pools.values()
            if pool.depth_ewma is not None and not pool.down
        ]
        if not depths:
            return None
        mean_depth = sum(depths) / len(depths)
        if mean_depth < watermark:
            return None
        # honest hint: the backlog's expected drain time at the observed mean
        # per-request service latency, bounded to something a client will obey
        mean_latency = self.metrics.latency.mean
        estimate = mean_depth * max(mean_latency, 0.05)
        return max(1, min(30, round(estimate)))

    # ------------------------------------------------------------------
    # health and the fleet-wide metrics roll-up
    # ------------------------------------------------------------------
    def breakers_open(self) -> int:
        """How many upstream circuits are open right now."""
        return sum(1 for pool in self.pools.values() if pool.down)

    def _healthz(self) -> Dict[str, object]:
        replicas = [
            {
                "node": pool.node,
                "up": not pool.down,
                "breaker": pool.breaker.state,
                "queue_depth_ewma": (
                    round(pool.depth_ewma, 3) if pool.depth_ewma is not None else None
                ),
                "routed": pool.routed,
            }
            for pool in self.pools.values()
        ]
        status = "draining" if self._draining else (
            "ok" if any(r["up"] for r in replicas) else "degraded"
        )
        return {
            "status": status,
            "replicas": replicas,
            "uptime_seconds": round(time.time() - self._started, 3),
            "git_rev": git_rev(),
            "trace_schema": TRACE_SCHEMA_VERSION,
            "tracing": self.recorder is not None,
        }

    # ------------------------------------------------------------------
    # trace inspection and the dashboard
    # ------------------------------------------------------------------
    def _debug_traces(self, query: str):
        if self.recorder is None:
            return 404, {"error": "tracing is disabled on this router"}, None
        params = parse_query(query)
        try:
            limit = int(params.get("limit", "50"))
        except ValueError:
            return 400, {"error": f"bad limit {params.get('limit')!r}"}, None
        full = params.get("full", "").lower() in ("1", "true", "yes")
        docs = self.recorder.list(limit=max(1, limit))
        traces = docs if full else [summarize_trace_doc(doc) for doc in docs]
        return 200, {"traces": traces, "stats": self.recorder.stats()}, None

    def _debug_trace_by_id(self, trace_id: str):
        if self.recorder is None:
            return 404, {"error": "tracing is disabled on this router"}, None
        doc = self.recorder.get(trace_id.strip("/"))
        if doc is None:
            return 404, {"error": f"no trace {trace_id!r} (evicted or never seen)"}, None
        return 200, doc, None

    async def _dashboard(self):
        from repro.obs.dashboard import render_dashboard

        return render_dashboard(
            await self.metrics_rollup(raw=True),
            traces=self.recorder.list(limit=20) if self.recorder is not None else [],
            title=f"repro fleet router :{self.port}",
            health=self._healthz(),
        )

    async def _fetch_replica_metrics(self, pool: UpstreamPool) -> Optional[Dict]:
        try:
            status, _headers, body = await pool.request("GET", "/metrics?format=json")
        except UpstreamError:
            pool.mark_down()
            return None
        if status != 200:
            return None
        try:
            return json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None

    async def metrics_rollup(self, raw: bool = False) -> Dict[str, object]:
        """Fleet-wide ``/metrics``: summed counters + merged histograms.

        Replicas are scraped concurrently over their keep-alive pools; one
        that is down is simply absent from the roll-up (and listed in
        ``replicas`` with ``reporting: false``).
        """
        pools = list(self.pools.values())
        snapshots = await asyncio.gather(
            *(self._fetch_replica_metrics(pool) for pool in pools)
        )
        counters: Dict[str, float] = {name: 0 for name in _SUMMED_COUNTERS}
        cache: Dict[str, float] = {name: 0 for name in _SUMMED_CACHE}
        uptime = 0.0
        merged_raws: Dict[str, List[Dict]] = {}
        replicas = []
        for pool, snapshot in zip(pools, snapshots):
            replicas.append(
                {
                    "node": pool.node,
                    "reporting": snapshot is not None,
                    "routed": pool.routed,
                    "failures": pool.failures,
                    "breaker": pool.breaker.state,
                    "queue_depth_ewma": (
                        round(pool.depth_ewma, 3)
                        if pool.depth_ewma is not None
                        else None
                    ),
                }
            )
            if snapshot is None:
                continue
            replica_counters = snapshot.get("counters", {})
            for name in _SUMMED_COUNTERS:
                counters[name] += replica_counters.get(name, 0)
            uptime = max(uptime, replica_counters.get("uptime_s", 0.0))
            replica_cache = snapshot.get("cache", {})
            for name in _SUMMED_CACHE:
                cache[name] += replica_cache.get(name, 0)
            for name, histogram_raw in snapshot.get("histograms", {}).items():
                merged_raws.setdefault(name, []).append(histogram_raw)
        counters["uptime_s"] = round(uptime, 3)
        shed = counters["shed_rate_limited"] + counters["shed_queue_full"]
        counters["shed_rate"] = round(
            shed / counters["received"] if counters["received"] else 0.0, 6
        )
        lookups = counters["cache_hits"] + counters["cache_misses"]
        counters["hit_rate"] = round(
            counters["cache_hits"] / lookups if lookups else 0.0, 6
        )
        counters["mean_batch_size"] = round(
            counters["batched_jobs"] / counters["batches"]
            if counters["batches"]
            else 0.0,
            3,
        )
        cache_lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / cache_lookups if cache_lookups else 0.0

        merged = {
            name: merge_raw_histograms(raws) for name, raws in merged_raws.items()
        }
        latency = {
            name: histogram.summary()
            for name, histogram in merged.items()
            if name != "batch_size"
        }
        document: Dict[str, object] = {
            "router": {
                **self.metrics.as_dict(),
                "breakers_open": self.breakers_open(),
                "latency": self.metrics.latency.summary(),
            },
            "counters": counters,
            "latency": latency,
            "cache": cache,
            "replicas": replicas,
            "replicas_reporting": sum(1 for r in replicas if r["reporting"]),
        }
        if raw:
            document["histograms"] = {
                name: histogram.raw() for name, histogram in merged.items()
            }
            return document
        document["tables"] = {
            "counters": format_table(
                SERVER_COUNTER_HEADERS,
                server_counter_rows(counters),
                title=f"fleet counters ({document['replicas_reporting']} replicas)",
            ),
            "latency": format_table(
                SIM_LATENCY_HEADERS,
                sim_latency_rows(latency),
                title="fleet request latency (s)",
            ),
        }
        return document


class _RawJson(bytes):
    """Pre-encoded JSON relayed verbatim (skips a decode/encode round trip)."""
