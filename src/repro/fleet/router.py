"""The fleet's front door: consistent-hash routing over replica gateways.

A :class:`FleetRouter` is a stdlib-asyncio HTTP frontend that owns no solver
at all.  For every ``POST /solve`` it decodes the body into a fingerprint-
exact :class:`~repro.service.jobs.SolveJob` (off the event loop, exactly like
the gateway does) and forwards the request to the replica that **owns** that
fingerprint on the :class:`~repro.fleet.hashing.HashRing`.  Ownership is what
makes the fleet's caches compose: repeats of a job land where its entry is
already memory-hot, and concurrent identical misses meet in one process where
the micro-batcher dedups them before the cache tier's cross-replica lock
files are even needed.

Per-replica **keep-alive upstream pools** recycle connections between
requests; an upstream that refuses or drops a connection is marked down for a
cooldown and the request is retried on the next replica in the ring's
deterministic preference order.  When the whole fleet is momentarily down
(e.g. the only replica is mid-restart), the router keeps sweeping the
preference list until ``retry_deadline`` — so killing a replica under load
costs latency, never failed client requests, as long as the supervisor
restarts it within the budget.

``GET /metrics`` serves a **fleet-wide roll-up**: counters summed across the
replicas' machine-readable ``/metrics?format=json`` documents, latency
histograms merged bucket-by-bucket (:func:`repro.server.metrics.
merge_raw_histograms` — exact, unlike averaging rendered percentiles), plus
the router's own routing/retry counters.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import (
    SERVER_COUNTER_HEADERS,
    SIM_LATENCY_HEADERS,
    format_table,
    server_counter_rows,
    sim_latency_rows,
)
from repro.fleet.hashing import DEFAULT_VNODES, HashRing
from repro.obs.recorder import TraceRecorder
from repro.obs.trace import (
    TRACE_HEADER,
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    format_trace_header,
    new_id,
    summarize_trace_doc,
)
from repro.server.http import (
    HttpError,
    HttpRequest,
    parse_query,
    read_request,
    write_response,
)
from repro.server.metrics import LatencyHistogram, merge_raw_histograms
from repro.server.protocol import ProtocolError, job_from_dict
from repro.utils.buildinfo import git_rev

__all__ = ["RouterConfig", "FleetRouter", "UpstreamError", "UpstreamPool"]

#: Replica counter fields summed verbatim in the fleet roll-up.
_SUMMED_COUNTERS = (
    "received",
    "ok",
    "bad_requests",
    "shed_rate_limited",
    "shed_queue_full",
    "rejected_draining",
    "solve_errors",
    "cache_hits",
    "cache_misses",
    "batches",
    "batched_jobs",
    "deduped_jobs",
    "flight_waits",
    "flight_takeovers",
    "queue_depth",
)

_SUMMED_CACHE = (
    "hits",
    "misses",
    "stores",
    "evictions",
    "corrupt",
    "migrated",
    "flights",
    "stale_locks",
    "corrupt_locks",
)


class UpstreamError(ConnectionError):
    """A replica could not be reached or dropped the connection mid-request."""


@dataclasses.dataclass(frozen=True)
class RouterConfig:
    """Tunables of the router frontend.

    Attributes
    ----------
    host, port:
        Downstream listen address (``port=0`` binds an ephemeral port).
    vnodes:
        Virtual nodes per replica on the hash ring.
    connect_timeout:
        Seconds to establish one upstream connection.
    upstream_idle_max:
        Keep-alive connections pooled per replica.
    down_cooldown:
        Seconds a failed upstream is skipped before being probed again.
    retry_deadline:
        Total per-request retry budget across preference sweeps; the router
        answers 503 only after the whole fleet stayed unreachable this long.
    retry_wait:
        Pause between full sweeps of the preference list.
    tracing, trace_capacity, trace_sink:
        When ``tracing`` is on (the default) the router mints a trace id per
        ``/solve``, records decode + per-attempt forward spans into a bounded
        ring of ``trace_capacity`` traces (``GET /debug/traces``), and
        propagates the id downstream in ``X-Repro-Trace`` so replica-side
        fragments share it.  ``trace_sink`` additionally appends completed
        traces to a rotating JSONL file for capture→replay.
    """

    host: str = "127.0.0.1"
    port: int = 8770
    vnodes: int = DEFAULT_VNODES
    connect_timeout: float = 2.0
    upstream_idle_max: int = 16
    down_cooldown: float = 0.5
    retry_deadline: float = 15.0
    retry_wait: float = 0.05
    tracing: bool = True
    trace_capacity: int = 256
    trace_sink: Optional[str] = None

    def __post_init__(self) -> None:
        if self.retry_deadline <= 0 or self.retry_wait < 0:
            raise ValueError("retry_deadline must be positive, retry_wait >= 0")


class UpstreamPool:
    """Keep-alive connection pool (and down marker) for one replica."""

    def __init__(self, host: str, port: int, config: RouterConfig) -> None:
        self.host = host
        self.port = port
        self.node = f"{host}:{port}"
        self.config = config
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._down_until = 0.0
        self.routed = 0
        self.failures = 0

    # ------------------------------------------------------------------
    @property
    def down(self) -> bool:
        return time.monotonic() < self._down_until

    def mark_down(self) -> None:
        self.failures += 1
        self._down_until = time.monotonic() + self.config.down_cooldown

    def mark_up(self) -> None:
        self._down_until = 0.0

    # ------------------------------------------------------------------
    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One round trip on a pooled connection; :class:`UpstreamError` on
        any transport failure (the connection is discarded, never reused)."""
        reader, writer = await self._checkout()
        try:
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: {self.node}",
                f"Content-Length: {len(body)}",
                "Content-Type: application/json",
            ]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
            status, response_headers, response_body = await self._read_response(reader)
        except (ConnectionError, OSError, asyncio.IncompleteReadError, EOFError) as exc:
            self._discard(writer)
            raise UpstreamError(f"{self.node}: {exc}") from exc
        except asyncio.TimeoutError as exc:
            self._discard(writer)
            raise UpstreamError(f"{self.node}: connect timed out") from exc
        keep = response_headers.get("connection", "keep-alive").lower() != "close"
        if keep and len(self._idle) < self.config.upstream_idle_max:
            self._idle.append((reader, writer))
        else:
            self._discard(writer)
        self.mark_up()
        return status, response_body

    async def _checkout(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            self._discard(writer)
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.config.connect_timeout,
            )
        except (ConnectionError, OSError) as exc:
            raise UpstreamError(f"{self.node}: {exc}") from exc
        except asyncio.TimeoutError as exc:
            raise UpstreamError(f"{self.node}: connect timed out") from exc

    @staticmethod
    async def _read_response(reader) -> Tuple[int, Dict[str, str], bytes]:
        status_line = await reader.readline()
        if not status_line:
            raise EOFError("upstream closed the connection")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise EOFError(f"malformed upstream status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                raise EOFError("upstream closed mid-headers")
            if line in (b"\r\n", b"\n"):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    def _discard(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except (ConnectionError, OSError):
            pass

    async def close(self) -> None:
        while self._idle:
            _reader, writer = self._idle.pop()
            self._discard(writer)


@dataclasses.dataclass
class RouterMetrics:
    """The router's own counters (replica counters live in the roll-up)."""

    received: int = 0  # solve requests accepted off the wire
    routed: int = 0  # solve requests answered by an upstream
    bad_requests: int = 0  # undecodable bodies answered 400 here
    retries: int = 0  # forward attempts beyond the first
    failovers: int = 0  # requests NOT answered by their ring owner
    unavailable: int = 0  # 503s after the retry budget ran out
    rejected_draining: int = 0

    def __post_init__(self) -> None:
        self.latency = LatencyHistogram()

    def as_dict(self) -> Dict[str, object]:
        return {
            "received": self.received,
            "routed": self.routed,
            "bad_requests": self.bad_requests,
            "retries": self.retries,
            "failovers": self.failovers,
            "unavailable": self.unavailable,
            "rejected_draining": self.rejected_draining,
        }


class FleetRouter:
    """Listen, route, retry, roll up."""

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        config: Optional[RouterConfig] = None,
    ) -> None:
        if not addresses:
            raise ValueError("a router needs at least one replica address")
        self.config = config or RouterConfig()
        self.pools: Dict[str, UpstreamPool] = {}
        for host, port in addresses:
            pool = UpstreamPool(host, port, self.config)
            self.pools[pool.node] = pool
        self.ring = HashRing(list(self.pools), vnodes=self.config.vnodes)
        self.metrics = RouterMetrics()
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(
                capacity=self.config.trace_capacity,
                sink_path=self.config.trace_sink,
            )
            if self.config.tracing
            else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._started = time.time()
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle (mirrors SolveGateway so the CLI/harness code is shared)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for pool in self.pools.values():
            await pool.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, {"error": str(exc)}, keep_alive=False
                    )
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                try:
                    status, payload, headers = await self._dispatch(request)
                except Exception as exc:  # noqa: BLE001 — never kill the
                    # connection without an answer
                    status, headers = 500, None
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                keep_alive = request.keep_alive
                await write_response(
                    writer, status, payload, keep_alive=keep_alive, extra_headers=headers
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest):
        path, _sep, query = request.path.partition("?")
        route = (request.method, path)
        if route == ("POST", "/solve"):
            return await self._solve(request)
        if route == ("GET", "/healthz"):
            return 200, self._healthz(), None
        if route == ("GET", "/metrics"):
            raw = "format=json" in query.split("&")
            return 200, await self.metrics_rollup(raw=raw), None
        if route == ("GET", "/debug/traces"):
            return self._debug_traces(query)
        if request.method == "GET" and path.startswith("/debug/traces/"):
            return self._debug_trace_by_id(path[len("/debug/traces/"):])
        if route == ("GET", "/dashboard"):
            return 200, await self._dashboard(), None
        if path in ("/solve", "/healthz", "/metrics", "/dashboard", "/debug/traces"):
            return 405, {"error": f"{request.method} not allowed on {path}"}, None
        return 404, {"error": f"no route for {request.method} {path}"}, None

    # ------------------------------------------------------------------
    # the solve route: decode -> ring -> forward with retries
    # ------------------------------------------------------------------
    async def _solve(self, request: HttpRequest):
        trace: Optional[Trace] = None
        root: Optional[Span] = None
        if self.recorder is not None:
            # the router is normally where the trace id is minted (clients
            # rarely send the header); replicas continue it downstream
            trace = Trace.begin(
                request.header(TRACE_HEADER) or None,
                origin="router",
                metadata={"client": request.header("x-client-id") or None},
            )
            root = Span(
                name="router.request",
                span_id=new_id(),
                parent_id=trace.remote_parent,
                start=trace.start,
                end=0.0,
            )
        status = 500
        try:
            status, payload, headers = await self._solve_inner(request, trace, root)
            if trace is not None:
                headers = dict(headers or {})
                headers.setdefault(TRACE_HEADER, trace.trace_id)
            return status, payload, headers
        finally:
            # every exit — routed, shed, unroutable, or crashed — lands the
            # trace with the root span first and the final status
            if trace is not None:
                root.annotations["http_status"] = status
                root.end = trace.wall(time.perf_counter())
                trace.spans.insert(0, root)
                trace.finish("ok" if status == 200 else f"http_{status}")
                self.recorder.record(trace)

    async def _solve_inner(
        self, request: HttpRequest, trace: Optional[Trace], root: Optional[Span]
    ):
        self.metrics.received += 1
        if self._draining:
            self.metrics.rejected_draining += 1
            return 503, {"error": "router is draining"}, {"Retry-After": "1"}
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            # decode off the loop: the fingerprint needs the canonical job
            # content, and device-grid rebuilds are CPU-bound
            job = await loop.run_in_executor(
                None, lambda: job_from_dict(request.json())
            )
        except (HttpError, ProtocolError) as exc:
            self.metrics.bad_requests += 1
            if trace is not None:
                trace.add_span(
                    "router.decode", started, time.perf_counter(),
                    parent=root, error=str(exc),
                )
            return 400, {"error": str(exc)}, None
        if trace is not None:
            trace.add_span("router.decode", started, time.perf_counter(), parent=root)
            trace.metadata["fingerprint"] = job.fingerprint
            trace.metadata["job"] = job.name

        forward_headers: Dict[str, str] = {}
        client_id = request.header("x-client-id")
        if client_id:
            forward_headers["X-Client-Id"] = client_id
        if trace is not None:
            # the replica's gateway fragment hangs off this router's root
            # span, stitching the two processes' spans into one request story
            forward_headers[TRACE_HEADER] = format_trace_header(
                trace.trace_id, root.span_id
            )

        preference = list(self.ring.preference(job.fingerprint))
        deadline = time.monotonic() + self.config.retry_deadline
        attempt = 0
        while True:
            for rank, node in enumerate(preference):
                pool = self.pools[node]
                if pool.down and time.monotonic() < deadline:
                    continue  # skip cooled-down upstreams while others remain
                attempt += 1
                if attempt > 1:
                    self.metrics.retries += 1
                forward_started = time.perf_counter()
                try:
                    status, body = await pool.request(
                        "POST", "/solve", request.body, forward_headers
                    )
                except UpstreamError as exc:
                    pool.mark_down()
                    if trace is not None:
                        trace.add_span(
                            "router.forward", forward_started, time.perf_counter(),
                            parent=root, node=node, rank=rank, attempt=attempt,
                            error=str(exc),
                        )
                    continue
                if trace is not None:
                    trace.add_span(
                        "router.forward", forward_started, time.perf_counter(),
                        parent=root, node=node, rank=rank, attempt=attempt,
                        status=status,
                    )
                if status == 503:
                    # the replica is draining (mid-restart): retryable, the
                    # solve is idempotent and the cache absorbs duplicates
                    pool.mark_down()
                    continue
                pool.routed += 1
                self.metrics.routed += 1
                if rank > 0:
                    self.metrics.failovers += 1
                self.metrics.latency.observe(time.perf_counter() - started)
                return status, _RawJson(body), None
            if time.monotonic() >= deadline:
                break
            # full sweep failed (or everything was cooling down): give the
            # supervisor a beat to restart a replica, then sweep again
            await asyncio.sleep(self.config.retry_wait)
        self.metrics.unavailable += 1
        return 503, {"error": "no replica reachable"}, {"Retry-After": "1"}

    # ------------------------------------------------------------------
    # health and the fleet-wide metrics roll-up
    # ------------------------------------------------------------------
    def _healthz(self) -> Dict[str, object]:
        replicas = [
            {"node": pool.node, "up": not pool.down, "routed": pool.routed}
            for pool in self.pools.values()
        ]
        status = "draining" if self._draining else (
            "ok" if any(r["up"] for r in replicas) else "degraded"
        )
        return {
            "status": status,
            "replicas": replicas,
            "uptime_seconds": round(time.time() - self._started, 3),
            "git_rev": git_rev(),
            "trace_schema": TRACE_SCHEMA_VERSION,
            "tracing": self.recorder is not None,
        }

    # ------------------------------------------------------------------
    # trace inspection and the dashboard
    # ------------------------------------------------------------------
    def _debug_traces(self, query: str):
        if self.recorder is None:
            return 404, {"error": "tracing is disabled on this router"}, None
        params = parse_query(query)
        try:
            limit = int(params.get("limit", "50"))
        except ValueError:
            return 400, {"error": f"bad limit {params.get('limit')!r}"}, None
        full = params.get("full", "").lower() in ("1", "true", "yes")
        docs = self.recorder.list(limit=max(1, limit))
        traces = docs if full else [summarize_trace_doc(doc) for doc in docs]
        return 200, {"traces": traces, "stats": self.recorder.stats()}, None

    def _debug_trace_by_id(self, trace_id: str):
        if self.recorder is None:
            return 404, {"error": "tracing is disabled on this router"}, None
        doc = self.recorder.get(trace_id.strip("/"))
        if doc is None:
            return 404, {"error": f"no trace {trace_id!r} (evicted or never seen)"}, None
        return 200, doc, None

    async def _dashboard(self):
        from repro.obs.dashboard import render_dashboard

        return render_dashboard(
            await self.metrics_rollup(raw=True),
            traces=self.recorder.list(limit=20) if self.recorder is not None else [],
            title=f"repro fleet router :{self.port}",
            health=self._healthz(),
        )

    async def _fetch_replica_metrics(self, pool: UpstreamPool) -> Optional[Dict]:
        try:
            status, body = await pool.request("GET", "/metrics?format=json")
        except UpstreamError:
            pool.mark_down()
            return None
        if status != 200:
            return None
        try:
            return json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None

    async def metrics_rollup(self, raw: bool = False) -> Dict[str, object]:
        """Fleet-wide ``/metrics``: summed counters + merged histograms.

        Replicas are scraped concurrently over their keep-alive pools; one
        that is down is simply absent from the roll-up (and listed in
        ``replicas`` with ``reporting: false``).
        """
        pools = list(self.pools.values())
        snapshots = await asyncio.gather(
            *(self._fetch_replica_metrics(pool) for pool in pools)
        )
        counters: Dict[str, float] = {name: 0 for name in _SUMMED_COUNTERS}
        cache: Dict[str, float] = {name: 0 for name in _SUMMED_CACHE}
        uptime = 0.0
        merged_raws: Dict[str, List[Dict]] = {}
        replicas = []
        for pool, snapshot in zip(pools, snapshots):
            replicas.append(
                {
                    "node": pool.node,
                    "reporting": snapshot is not None,
                    "routed": pool.routed,
                    "failures": pool.failures,
                }
            )
            if snapshot is None:
                continue
            replica_counters = snapshot.get("counters", {})
            for name in _SUMMED_COUNTERS:
                counters[name] += replica_counters.get(name, 0)
            uptime = max(uptime, replica_counters.get("uptime_s", 0.0))
            replica_cache = snapshot.get("cache", {})
            for name in _SUMMED_CACHE:
                cache[name] += replica_cache.get(name, 0)
            for name, histogram_raw in snapshot.get("histograms", {}).items():
                merged_raws.setdefault(name, []).append(histogram_raw)
        counters["uptime_s"] = round(uptime, 3)
        shed = counters["shed_rate_limited"] + counters["shed_queue_full"]
        counters["shed_rate"] = round(
            shed / counters["received"] if counters["received"] else 0.0, 6
        )
        lookups = counters["cache_hits"] + counters["cache_misses"]
        counters["hit_rate"] = round(
            counters["cache_hits"] / lookups if lookups else 0.0, 6
        )
        counters["mean_batch_size"] = round(
            counters["batched_jobs"] / counters["batches"]
            if counters["batches"]
            else 0.0,
            3,
        )
        cache_lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = cache["hits"] / cache_lookups if cache_lookups else 0.0

        merged = {
            name: merge_raw_histograms(raws) for name, raws in merged_raws.items()
        }
        latency = {
            name: histogram.summary()
            for name, histogram in merged.items()
            if name != "batch_size"
        }
        document: Dict[str, object] = {
            "router": {**self.metrics.as_dict(), "latency": self.metrics.latency.summary()},
            "counters": counters,
            "latency": latency,
            "cache": cache,
            "replicas": replicas,
            "replicas_reporting": sum(1 for r in replicas if r["reporting"]),
        }
        if raw:
            document["histograms"] = {
                name: histogram.raw() for name, histogram in merged.items()
            }
            return document
        document["tables"] = {
            "counters": format_table(
                SERVER_COUNTER_HEADERS,
                server_counter_rows(counters),
                title=f"fleet counters ({document['replicas_reporting']} replicas)",
            ),
            "latency": format_table(
                SIM_LATENCY_HEADERS,
                sim_latency_rows(latency),
                title="fleet request latency (s)",
            ),
        }
        return document


class _RawJson(bytes):
    """Pre-encoded JSON relayed verbatim (skips a decode/encode round trip)."""
