"""repro.fleet: a sharded multi-process solver fleet.

One machine, N replica processes, one front door.  The pieces:

* :mod:`repro.fleet.manager` — spawn and supervise N ``repro.server`` gateway
  processes (health checks, crash restart with exponential backoff) sharing
  one on-disk cache tier.
* :mod:`repro.fleet.hashing` — the consistent-hash ring that gives every job
  fingerprint an owning replica (and a deterministic failover chain).
* :mod:`repro.fleet.router` — the stdlib-asyncio frontend that routes each
  decoded job to its owner over keep-alive upstream pools, retries on the
  next replica when an upstream is down, and serves the fleet-wide
  ``/metrics`` roll-up.
* :mod:`repro.fleet.harness` — :class:`BackgroundFleet`, the synchronous
  manager-plus-router harness the tests, benchmarks and examples share.

Duplicate work is collapsed at three layers: the ring sends repeats of a job
to one replica, that replica's micro-batcher dedups concurrent identical
misses in-process, and the cache tier's per-fingerprint lock files
(:mod:`repro.service.cache`) give cross-replica single-flight for duplicates
that arrive at different replicas anyway.

Quickstart::

    python -m repro.fleet --replicas 4 --cache-dir /tmp/fleet-cache
"""

from repro.fleet.harness import BackgroundFleet, BackgroundRouter
from repro.fleet.hashing import DEFAULT_VNODES, HashRing
from repro.fleet.manager import FleetConfig, FleetManager, Replica
from repro.fleet.router import FleetRouter, RouterConfig, UpstreamError, UpstreamPool

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "FleetConfig",
    "FleetManager",
    "Replica",
    "FleetRouter",
    "RouterConfig",
    "UpstreamError",
    "UpstreamPool",
    "BackgroundRouter",
    "BackgroundFleet",
]
