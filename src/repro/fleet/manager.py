"""Replica-process supervision: spawn, health-check, restart with backoff.

A :class:`FleetManager` owns N replica subprocesses, each running the PR 5
gateway (``python -m repro.server``) on its own port with a **shared**
``--cache-dir`` — the content-addressed cache tier the replicas coordinate
through (entries land once, per-fingerprint lock files give cross-replica
single-flight).  The manager:

* picks ports (ephemeral by default), builds each replica's command line and
  environment (``PYTHONPATH`` is extended so ``-m repro.server`` resolves from
  the source tree without an install), and spawns the processes;
* waits for every replica's ``/healthz`` to answer 200 before declaring the
  fleet up;
* runs a supervisor thread that restarts any replica that exits, with
  exponential backoff (``backoff_base * 2^consecutive_failures`` capped at
  ``backoff_cap``); a replica that stays up long enough resets its backoff.

Tests inject ``command_factory`` to supervise a lightweight stand-in process
instead of the real gateway.  The crash/restart acceptance story — kill a
replica mid-load, zero failed client requests — is the router's retry logic
(:mod:`repro.fleet.router`) plus this supervisor bringing the replica back.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["FleetConfig", "Replica", "FleetManager"]


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Tunables of one replica fleet.

    Attributes
    ----------
    replicas:
        Number of gateway processes.
    host:
        Listen address shared by every replica (the fleet is one machine;
        cross-machine sharding needs a shared filesystem for the cache tier).
    base_port:
        First replica port; replica ``i`` listens on ``base_port + i``.
        ``0`` lets the manager pick free ephemeral ports.
    cache_dir:
        The shared cache-tier directory (required: without it the replicas
        cannot share entries and single-flight degenerates to per-process).
    server_args:
        Extra command-line arguments appended to every replica's
        ``python -m repro.server`` invocation (batching, shard, admission
        knobs).
    backoff_base, backoff_cap:
        Restart backoff: the ceiling doubles per consecutive failure from
        ``backoff_base`` up to ``backoff_cap``; the actual delay is drawn
        uniformly from ``[0, ceiling]`` (full jitter) so replicas killed
        together do not restart in lockstep and stampede the shared cache.
    backoff_jitter:
        Disable to restore the deterministic ``base * 2^failures`` delay
        (some supervision tests want exact restart instants).
    backoff_seed:
        Seed for the jitter RNG (chaos plans replay deterministically).
    healthy_reset_after:
        Seconds a replica must stay up for its backoff to reset.
    health_timeout:
        How long :meth:`FleetManager.start` waits for the full fleet to
        answer ``/healthz``.
    poll_interval:
        Supervisor loop period.
    """

    replicas: int = 2
    host: str = "127.0.0.1"
    base_port: int = 0
    cache_dir: str = ""
    server_args: Tuple[str, ...] = ()
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    backoff_jitter: bool = True
    backoff_seed: Optional[int] = None
    healthy_reset_after: float = 10.0
    health_timeout: float = 120.0
    poll_interval: float = 0.1

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if not self.cache_dir:
            raise ValueError("cache_dir is required: it is the shared cache tier")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")


@dataclasses.dataclass
class Replica:
    """Book-keeping for one supervised gateway process."""

    index: int
    port: int
    process: Optional[subprocess.Popen] = None
    restarts: int = 0  # lifetime restart count (chaos tests read this)
    consecutive_failures: int = 0
    started_at: float = 0.0  # monotonic spawn instant
    restart_due_at: float = 0.0  # monotonic instant the next respawn may run

    @property
    def address(self) -> str:
        return f"{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


def _free_port(host: str) -> int:
    """Ask the OS for a currently-free TCP port (best-effort: a tiny race
    window exists between closing the probe socket and the replica binding)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def default_command(host: str, port: int, cache_dir: str, extra: Sequence[str]) -> List[str]:
    """The real replica command: one PR 5 gateway on ``port``."""
    return [
        sys.executable,
        "-m",
        "repro.server",
        "--host",
        host,
        "--port",
        str(port),
        "--cache-dir",
        cache_dir,
        "--quiet",
        *extra,
    ]


class FleetManager:
    """Spawn and supervise the replica fleet.

    Parameters
    ----------
    config:
        Fleet shape and supervision tuning.
    command_factory:
        ``(replica) -> argv`` override for tests; defaults to launching the
        real ``python -m repro.server`` gateway.
    """

    def __init__(
        self,
        config: FleetConfig,
        command_factory: Optional[Callable[[Replica], List[str]]] = None,
    ) -> None:
        self.config = config
        self._command_factory = command_factory
        self.replicas: List[Replica] = []
        self._supervisor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._backoff_rng = random.Random(config.backoff_seed)
        self._env = dict(os.environ)
        # make `-m repro.server` importable in the children even when the
        # parent runs from the source tree without an installed package
        src_root = str(Path(__file__).resolve().parents[2])
        existing = self._env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            self._env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_healthy: bool = True) -> "FleetManager":
        """Spawn every replica (and the supervisor); optionally block until
        the whole fleet answers ``/healthz``."""
        if self.replicas:
            raise RuntimeError("fleet already started")
        Path(self.config.cache_dir).mkdir(parents=True, exist_ok=True)
        for index in range(self.config.replicas):
            port = (
                self.config.base_port + index
                if self.config.base_port
                else _free_port(self.config.host)
            )
            replica = Replica(index=index, port=port)
            self.replicas.append(replica)
            self._spawn(replica)
        self._stop.clear()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-fleet-supervisor", daemon=True
        )
        self._supervisor.start()
        if wait_healthy:
            self.wait_all_healthy(self.config.health_timeout)
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop supervising, SIGTERM every replica, escalate to SIGKILL."""
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=timeout)
            self._supervisor = None
        with self._lock:
            processes = [r.process for r in self.replicas if r.alive]
        for process in processes:
            try:
                process.send_signal(signal.SIGTERM)
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        for process in processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        self.replicas = []

    def __enter__(self) -> "FleetManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def ports(self) -> List[int]:
        return [replica.port for replica in self.replicas]

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """``(host, port)`` of every replica — the router's upstream list."""
        return [(self.config.host, replica.port) for replica in self.replicas]

    @property
    def total_restarts(self) -> int:
        return sum(replica.restarts for replica in self.replicas)

    def healthz(self, index: int, timeout: float = 2.0) -> Optional[Dict[str, object]]:
        """One replica's ``/healthz`` document, or ``None`` when unreachable."""
        replica = self.replicas[index]
        connection = http.client.HTTPConnection(
            self.config.host, replica.port, timeout=timeout
        )
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            body = response.read()
            if response.status != 200:
                return None
            return json.loads(body)
        except (OSError, ValueError, http.client.HTTPException):
            return None
        finally:
            connection.close()

    def wait_healthy(self, index: int, timeout: float) -> None:
        """Block until one replica answers ``/healthz`` (RuntimeError on
        timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthz(index) is not None:
                return
            time.sleep(0.05)
        raise RuntimeError(
            f"replica {index} (port {self.replicas[index].port}) "
            f"not healthy after {timeout:.0f}s"
        )

    def wait_all_healthy(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for index in range(len(self.replicas)):
            remaining = max(0.1, deadline - time.monotonic())
            self.wait_healthy(index, remaining)

    # ------------------------------------------------------------------
    # chaos helper (tests and the kill-a-replica acceptance check)
    # ------------------------------------------------------------------
    def kill_replica(self, index: int) -> None:
        """SIGKILL one replica; the supervisor restarts it after backoff."""
        replica = self.replicas[index]
        if replica.process is not None and replica.alive:
            replica.process.kill()
            replica.process.wait(timeout=10.0)

    def pause_replica(self, index: int) -> None:
        """SIGSTOP one replica.  The process still polls as alive, so the
        supervisor will *not* restart it — exactly the wedged-but-alive shape
        (holder of a single-flight lock that never progresses) the chaos
        harness needs."""
        replica = self.replicas[index]
        if replica.process is not None and replica.alive:
            replica.process.send_signal(signal.SIGSTOP)

    def resume_replica(self, index: int) -> None:
        """SIGCONT a previously paused replica."""
        replica = self.replicas[index]
        if replica.process is not None and replica.alive:
            replica.process.send_signal(signal.SIGCONT)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _command(self, replica: Replica) -> List[str]:
        if self._command_factory is not None:
            return self._command_factory(replica)
        return default_command(
            self.config.host,
            replica.port,
            self.config.cache_dir,
            self.config.server_args,
        )

    def _spawn(self, replica: Replica) -> None:
        replica.process = subprocess.Popen(
            self._command(replica),
            env=self._env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        replica.started_at = time.monotonic()

    def _restart_delay(self, consecutive_failures: int) -> float:
        """Full-jitter backoff: uniform over ``[0, min(cap, base * 2^n)]``."""
        ceiling = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2.0 ** consecutive_failures),
        )
        if not self.config.backoff_jitter:
            return ceiling
        return self._backoff_rng.uniform(0.0, ceiling)

    def _supervise(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            now = time.monotonic()
            for replica in self.replicas:
                with self._lock:
                    if replica.alive:
                        if (
                            replica.consecutive_failures
                            and now - replica.started_at
                            >= self.config.healthy_reset_after
                        ):
                            replica.consecutive_failures = 0
                        continue
                    if replica.restart_due_at == 0.0:
                        # just observed the death: schedule the respawn
                        delay = self._restart_delay(replica.consecutive_failures)
                        replica.consecutive_failures += 1
                        replica.restart_due_at = now + delay
                        continue
                    if now < replica.restart_due_at:
                        continue
                    replica.restart_due_at = 0.0
                    replica.restarts += 1
                    self._spawn(replica)
