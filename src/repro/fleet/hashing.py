"""Consistent-hash routing of solve-job fingerprints to fleet replicas.

The router maps every :class:`~repro.service.jobs.SolveJob` fingerprint to an
*owning* replica so each hot cache entry has one home: repeat requests for the
same job land on the replica whose in-memory LRU already holds it, and
concurrent identical misses meet in one process where the micro-batcher dedups
them before the cross-replica lock files ever come into play.

A :class:`HashRing` hashes each node into ``vnodes`` points on a 64-bit ring
(SHA-256, so placement is deterministic across processes and Python runs —
``hash()`` randomization would re-shard the fleet every restart).  A key is
owned by the first node point clockwise from the key's hash.  Virtual nodes
smooth the load split; removing a node only remaps the keys it owned (~1/N of
the space) instead of reshuffling everything, which is what keeps replica
restarts from stampeding the warm caches of the survivors.

:meth:`HashRing.preference` yields *distinct* nodes in ring order starting at
the owner — the router's retry order when an upstream is down, chosen so every
key has the same deterministic failover chain.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual-node count per physical node; 64 keeps the max/min load ratio of a
#: 4-replica fleet under ~1.3 while the ring stays a few hundred entries.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """64-bit ring position of a label (stable across processes)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named nodes.

    Parameters
    ----------
    nodes:
        Node names (for the fleet: ``"host:port"`` upstream addresses).
        Order does not matter — placement depends only on the names.
    vnodes:
        Ring points per node.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate node names: {sorted(nodes)}")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((_point(f"{node}#{index}"), node))
        points.sort()
        self._points = [point for point, _node in points]
        self._owners = [node for _point, node in points]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The node owning ``key`` (first ring point clockwise of its hash)."""
        index = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        return self._owners[index]

    def preference(self, key: str) -> Iterator[str]:
        """All nodes in deterministic failover order for ``key``.

        Starts at the owner and walks the ring, yielding each *distinct* node
        once — the router tries these in order until an upstream answers.
        """
        start = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        seen = set()
        for offset in range(len(self._points)):
            node = self._owners[(start + offset) % len(self._points)]
            if node not in seen:
                seen.add(node)
                yield node
                if len(seen) == len(self.nodes):
                    return

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"HashRing({list(self.nodes)!r}, vnodes={self.vnodes})"
