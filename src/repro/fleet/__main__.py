"""Command-line entry point: ``python -m repro.fleet``.

Spawns the replica fleet, starts the router frontend, and serves until
SIGINT/SIGTERM.  On shutdown the router drains first (so clients get clean
503s instead of resets), then the replicas are stopped, then the fleet-wide
metrics roll-up is printed.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import tempfile
from typing import Optional, Sequence

from repro.fleet.manager import FleetConfig, FleetManager
from repro.fleet.router import FleetRouter, RouterConfig


async def serve(
    fleet_config: FleetConfig, router_config: RouterConfig, quiet: bool = False
) -> None:
    manager = FleetManager(fleet_config)
    manager.start(wait_healthy=True)
    router = FleetRouter(manager.addresses, router_config)
    try:
        await router.start()
        if not quiet:
            ports = ", ".join(str(port) for port in manager.ports)
            print(
                f"repro.fleet: {fleet_config.replicas} replica(s) on ports "
                f"[{ports}], router on http://{router_config.host}:{router.port}, "
                f"cache tier at {fleet_config.cache_dir}",
                flush=True,
            )

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # pragma: no cover
                loop.add_signal_handler(signum, stop.set)

        serve_task = asyncio.ensure_future(router.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            if not quiet:
                print("draining ...", flush=True)
            serve_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve_task
            if not quiet:
                # roll up while the replicas are still alive to answer
                with contextlib.suppress(Exception):
                    rollup = await router.metrics_rollup()
                    print(rollup["tables"]["counters"], flush=True)
            await router.drain()
            stop_task.cancel()
    finally:
        manager.stop()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Serve floorplanning solves from a sharded replica fleet.",
    )
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8770, help="router port")
    parser.add_argument(
        "--base-port", type=int, default=0,
        help="first replica port (0 = ephemeral per replica)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared cache-tier directory (default: a fresh temp directory)",
    )
    parser.add_argument(
        "--vnodes", type=int, default=RouterConfig.vnodes,
        help="virtual nodes per replica on the hash ring",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.25,
        help="first restart delay for a crashed replica (s)",
    )
    parser.add_argument(
        "--shed-watermark", type=float, default=0.0,
        help="mean replica queue depth past which the router sheds at the "
        "front door with Retry-After (0 = disabled)",
    )
    parser.add_argument(
        "--server-arg", action="append", default=[], metavar="ARG",
        help="extra argument passed through to every `python -m repro.server` "
        "replica (repeatable, e.g. --server-arg=--max-batch --server-arg=16)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="disable request tracing on the router (/debug/traces -> 404)",
    )
    parser.add_argument(
        "--trace-sink", default=None, metavar="PATH",
        help="append the router's completed traces to this rotating JSONL "
        "file (feed it to `python -m repro.obs export` for capture->replay)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-fleet-cache-")
    fleet_config = FleetConfig(
        replicas=args.replicas,
        host=args.host,
        base_port=args.base_port,
        cache_dir=cache_dir,
        server_args=tuple(args.server_arg),
        backoff_base=args.backoff_base,
    )
    router_config = RouterConfig(
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        shed_watermark=args.shed_watermark if args.shed_watermark > 0 else None,
        tracing=not args.no_trace,
        trace_sink=args.trace_sink,
    )
    try:
        asyncio.run(serve(fleet_config, router_config, quiet=args.quiet))
    except KeyboardInterrupt:  # pragma: no cover - ^C before the handler installs
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
