"""Per-upstream circuit breaker (closed -> open -> half-open).

Replaces the router's bare ``down_cooldown`` flag.  The cooldown treated every
failure the same — one refused connection and the replica was skipped for a
fixed window, then hammered again at full rate.  The breaker adds the two
missing behaviours:

* **failure accumulation** — the circuit opens only after
  ``failure_threshold`` *consecutive* failures, so one flaky connect does not
  blackhole a healthy replica;
* **probing** — after ``open_for`` seconds the circuit goes *half-open* and
  admits exactly one trial request; its outcome closes the circuit (success)
  or re-opens it for another window (failure), so a still-dead replica sees
  one probe per window instead of a thundering retry herd.

The breaker is intentionally clock-injectable and lock-free: the router
drives it from a single event loop, and the worst cross-thread race (two
callers both admitted half-open) costs one extra probe, not correctness.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Track one upstream's health and gate requests to it.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the circuit.  ``1`` reproduces the old
        cooldown behaviour (any failure opens).
    open_for:
        Seconds the circuit stays open before admitting a half-open probe.
    clock:
        Monotonic-seconds source (injectable for deterministic tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        open_for: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if open_for <= 0:
            raise ValueError("open_for must be positive")
        self.failure_threshold = failure_threshold
        self.open_for = open_for
        self.clock = clock
        self.consecutive_failures = 0
        self.opened_total = 0  # times the circuit transitioned closed->open
        self._opened_at: float | None = None  # None while closed
        self._probing = False  # a half-open trial is in flight

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (as of now)."""
        if self._opened_at is None:
            return CLOSED
        if self.clock() - self._opened_at >= self.open_for:
            return HALF_OPEN
        return OPEN

    def allow(self) -> bool:
        """May a request be sent to this upstream right now?

        Closed: always.  Open: never.  Half-open: exactly one caller is
        admitted as the probe; everyone else keeps seeing ``False`` until the
        probe's outcome is recorded.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        """A request to this upstream completed: close the circuit."""
        self.consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A request failed: accumulate, and (re)open past the threshold."""
        self.consecutive_failures += 1
        was_closed = self._opened_at is None
        if self._opened_at is not None or (
            self.consecutive_failures >= self.failure_threshold
        ):
            # a failed half-open probe re-opens for a fresh window
            self._opened_at = self.clock()
            self._probing = False
            if was_closed:
                self.opened_total += 1
