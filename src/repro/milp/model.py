"""The MILP model container.

A :class:`Model` owns variables and constraints and knows how to lower itself
into the matrix form consumed by the solver backends:

``minimize   c @ x``
``subject to A_lb <= A @ x <= A_ub,  lb <= x <= ub,  x_i integer for i in I``

The lowering uses :mod:`scipy.sparse` so that models with tens of thousands of
constraint coefficients (typical for the SDR2/SDR3 instances) are built in
milliseconds rather than seconds.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Sequence

import numpy as np
from scipy import sparse

from repro.milp.constraint import Constraint, Sense
from repro.milp.expr import ExprLike, LinExpr, Variable, VarType, as_expr


@dataclasses.dataclass(frozen=True)
class ModelStats:
    """Structural statistics of a model (useful in benchmarks and reports)."""

    num_variables: int
    num_binary: int
    num_integer: int
    num_continuous: int
    num_constraints: int
    num_nonzeros: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_variables} vars "
            f"({self.num_binary} bin, {self.num_integer} int, {self.num_continuous} cont), "
            f"{self.num_constraints} constraints, {self.num_nonzeros} nonzeros"
        )


@dataclasses.dataclass
class MatrixForm:
    """Dense-vector / sparse-matrix lowering of a model.

    ``constraint_matrix`` is a ``scipy.sparse.csr_matrix`` on the default
    (sparse) lowering path and a dense ``np.ndarray`` when the model was
    lowered with ``to_matrix_form(dense=True)`` — the dense path exists for
    tests and debugging only; both backends consume the sparse form.
    """

    objective: np.ndarray
    constraint_matrix: "sparse.csr_matrix | np.ndarray"
    constraint_lb: np.ndarray
    constraint_ub: np.ndarray
    var_lb: np.ndarray
    var_ub: np.ndarray
    integrality: np.ndarray
    variables: List[Variable]

    @property
    def is_sparse(self) -> bool:
        """Whether the constraint matrix is stored sparse (CSR)."""
        return sparse.issparse(self.constraint_matrix)

    @property
    def num_constraints(self) -> int:
        """Number of constraint rows."""
        return int(self.constraint_matrix.shape[0])

    @property
    def num_variables(self) -> int:
        """Number of variable columns."""
        return len(self.variables)

    def to_sparse(self) -> "MatrixForm":
        """Return an equivalent form with a CSR constraint matrix."""
        if self.is_sparse:
            return self
        return dataclasses.replace(
            self, constraint_matrix=sparse.csr_matrix(self.constraint_matrix)
        )


class Model:
    """A mixed-integer linear program under construction.

    Typical usage::

        m = Model("floorplan")
        x = m.add_var("x", VarType.INTEGER, lb=1, ub=10)
        y = m.add_var("y", VarType.BINARY)
        m.add(x + 3 * y <= 7, name="cap")
        m.minimize(x - y)
        solution = repro.milp.solve(m)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense_minimize = True
        self._names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        vtype: VarType = VarType.CONTINUOUS,
        lb: float | None = 0.0,
        ub: float | None = None,
    ) -> Variable:
        """Create a variable and register it with the model.

        Names must be unique; a duplicate name raises ``ValueError`` because
        silently deduplicating has historically hidden indexing bugs in
        floorplanning models.
        """
        if name in self._names:
            raise ValueError(f"variable name {name!r} already used")
        var = Variable(name, index=len(self._variables), vtype=vtype, lb=lb, ub=ub)
        self._variables.append(var)
        self._names[name] = var.index
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for ``add_var(name, VarType.BINARY)``."""
        return self.add_var(name, VarType.BINARY)

    def add_integer(self, name: str, lb: float = 0.0, ub: float | None = None) -> Variable:
        """Shorthand for an integer variable with the given bounds."""
        return self.add_var(name, VarType.INTEGER, lb=lb, ub=ub)

    def add_continuous(self, name: str, lb: float | None = 0.0, ub: float | None = None) -> Variable:
        """Shorthand for a continuous variable with the given bounds."""
        return self.add_var(name, VarType.CONTINUOUS, lb=lb, ub=ub)

    @property
    def variables(self) -> Sequence[Variable]:
        """Variables in insertion order (index order)."""
        return tuple(self._variables)

    def variable_by_name(self, name: str) -> Variable:
        """Look a variable up by its unique name."""
        return self._variables[self._names[name]]

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Register a constraint (optionally overriding its name)."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "Model.add expects a Constraint; build one with <=, >= or == on expressions"
            )
        if name is not None:
            constraint.name = name
        elif constraint.name is None:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def add_terms(
        self,
        terms: Dict[Variable, float],
        sense: Sense,
        rhs: float,
        name: str,
    ) -> Constraint:
        """Fast-path constraint registration from a coefficient dict.

        Equivalent to ``self.add(LinExpr(terms) <sense> rhs, name=name)`` but
        skips the operator-overloading churn (three intermediate ``LinExpr``
        allocations per constraint) — the difference is measurable when the
        floorplanning builder emits tens of thousands of constraints.  The
        dict is copied, so callers may reuse a template.
        """
        constraint = Constraint(LinExpr(terms, -float(rhs)), sense, name=name)
        self._constraints.append(constraint)
        return constraint

    def add_le_terms(self, terms: Dict[Variable, float], rhs: float, name: str) -> Constraint:
        """``sum(terms) <= rhs`` without building intermediate expressions."""
        return self.add_terms(terms, Sense.LE, rhs, name)

    def add_ge_terms(self, terms: Dict[Variable, float], rhs: float, name: str) -> Constraint:
        """``sum(terms) >= rhs`` without building intermediate expressions."""
        return self.add_terms(terms, Sense.GE, rhs, name)

    def add_eq_terms(self, terms: Dict[Variable, float], rhs: float, name: str) -> Constraint:
        """``sum(terms) == rhs`` without building intermediate expressions."""
        return self.add_terms(terms, Sense.EQ, rhs, name)

    def add_all(self, constraints: Iterable[Constraint], prefix: str = "c") -> List[Constraint]:
        """Register several constraints, naming them ``prefix{i}``."""
        added = []
        for i, constraint in enumerate(constraints):
            added.append(self.add(constraint, name=f"{prefix}{len(self._constraints)}"))
        return added

    @property
    def constraints(self) -> Sequence[Constraint]:
        """Constraints in insertion order."""
        return tuple(self._constraints)

    # ------------------------------------------------------------------
    # objective
    # ------------------------------------------------------------------
    def minimize(self, expr: ExprLike) -> None:
        """Set a minimization objective."""
        self._objective = as_expr(expr).copy()
        self._sense_minimize = True

    def maximize(self, expr: ExprLike) -> None:
        """Set a maximization objective (stored internally as minimization)."""
        self._objective = as_expr(expr).copy()
        self._sense_minimize = False

    @property
    def objective(self) -> LinExpr:
        """The objective expression as given by the user."""
        return self._objective

    @property
    def is_minimization(self) -> bool:
        """True when the stored objective should be minimized."""
        return self._sense_minimize

    def objective_value(self, values: Dict[Variable, float]) -> float:
        """Evaluate the user-facing objective under an assignment."""
        return self._objective.evaluate(values)

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def stats(self) -> ModelStats:
        """Structural statistics for reporting."""
        num_bin = sum(1 for v in self._variables if v.vtype is VarType.BINARY)
        num_int = sum(1 for v in self._variables if v.vtype is VarType.INTEGER)
        num_cont = len(self._variables) - num_bin - num_int
        nnz = sum(len(c.lhs.terms) for c in self._constraints)
        return ModelStats(
            num_variables=len(self._variables),
            num_binary=num_bin,
            num_integer=num_int,
            num_continuous=num_cont,
            num_constraints=len(self._constraints),
            num_nonzeros=nnz,
        )

    def _constraint_bounds(self) -> tuple:
        """Row activity bounds ``(lb, ub)`` shared by both lowering paths."""
        lbs = np.empty(len(self._constraints))
        ubs = np.empty(len(self._constraints))
        for i, constraint in enumerate(self._constraints):
            rhs = constraint.rhs
            if constraint.sense is Sense.LE:
                lbs[i], ubs[i] = -np.inf, rhs
            elif constraint.sense is Sense.GE:
                lbs[i], ubs[i] = rhs, np.inf
            else:
                lbs[i], ubs[i] = rhs, rhs
        return lbs, ubs

    def _variable_arrays(self) -> tuple:
        """Variable bound/integrality arrays shared by both lowering paths."""
        var_lb = np.array([v.lb for v in self._variables])
        var_ub = np.array([v.ub for v in self._variables])
        integrality = np.array(
            [1 if v.is_integral else 0 for v in self._variables], dtype=int
        )
        return var_lb, var_ub, integrality

    def to_matrix_form(self, dense: bool = False) -> MatrixForm:
        """Lower the model into matrix form for the backends.

        The default path builds a :class:`scipy.sparse.csr_matrix` — the form
        both backends and the presolver consume.  ``dense=True`` materializes
        a plain ``np.ndarray`` instead; it exists so tests can cross-check the
        sparse lowering and costs O(rows x cols) memory, so never use it on
        SDR-scale models.
        """
        nvars = len(self._variables)
        objective = np.zeros(nvars)
        sign = 1.0 if self._sense_minimize else -1.0
        for var, coef in self._objective.terms.items():
            objective[var.index] += sign * coef

        lbs, ubs = self._constraint_bounds()
        var_lb, var_ub, integrality = self._variable_arrays()

        if dense:
            matrix = np.zeros((len(self._constraints), nvars))
            for i, constraint in enumerate(self._constraints):
                for var, coef in constraint.lhs.terms.items():
                    if coef != 0.0:
                        matrix[i, var.index] += coef
        else:
            # pre-size the coefficient arrays: counting first avoids the list
            # append/convert churn on models with tens of thousands of nonzeros
            nnz = 0
            for constraint in self._constraints:
                for coef in constraint.lhs.terms.values():
                    if coef != 0.0:
                        nnz += 1
            rows = np.empty(nnz, dtype=np.int64)
            cols = np.empty(nnz, dtype=np.int64)
            data = np.empty(nnz, dtype=np.float64)
            cursor = 0
            for i, constraint in enumerate(self._constraints):
                for var, coef in constraint.lhs.terms.items():
                    if coef != 0.0:
                        rows[cursor] = i
                        cols[cursor] = var.index
                        data[cursor] = coef
                        cursor += 1
            matrix = sparse.csr_matrix(
                (data, (rows, cols)), shape=(len(self._constraints), nvars)
            )

        return MatrixForm(
            objective=objective,
            constraint_matrix=matrix,
            constraint_lb=lbs,
            constraint_ub=ubs,
            var_lb=var_lb,
            var_ub=var_ub,
            integrality=integrality,
            variables=list(self._variables),
        )

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def check_assignment(
        self, values: Dict[Variable, float], tol: float = 1e-6
    ) -> List[Constraint]:
        """Return the constraints violated by ``values`` (empty == feasible)."""
        violated = []
        for constraint in self._constraints:
            if not constraint.is_satisfied(values, tol):
                violated.append(constraint)
        for var in self._variables:
            value = values[var]
            if value < var.lb - tol or value > var.ub + tol:
                violated.append(Constraint(LinExpr({var: 1.0}, 0.0), Sense.LE, name=f"bound[{var.name}]"))
            elif var.is_integral and abs(value - round(value)) > tol:
                violated.append(Constraint(LinExpr({var: 1.0}, 0.0), Sense.EQ, name=f"integrality[{var.name}]"))
        return violated

    def to_lp_string(self, max_constraints: int | None = None) -> str:
        """Export a CPLEX-LP-like textual representation (for debugging)."""
        lines = ["\\ model " + self.name, "Minimize" if self._sense_minimize else "Maximize"]
        lines.append(" obj: " + _format_expr(self._objective))
        lines.append("Subject To")
        constraints = self._constraints
        if max_constraints is not None:
            constraints = constraints[:max_constraints]
        for constraint in constraints:
            op = {"<=": "<=", ">=": ">=", "==": "="}[constraint.sense.value]
            lines.append(
                f" {constraint.name}: "
                + _format_expr(LinExpr(constraint.lhs.terms, 0.0))
                + f" {op} {constraint.rhs:g}"
            )
        lines.append("Bounds")
        for var in self._variables:
            lb = "-inf" if math.isinf(var.lb) else f"{var.lb:g}"
            ub = "+inf" if math.isinf(var.ub) else f"{var.ub:g}"
            lines.append(f" {lb} <= {var.name} <= {ub}")
        integers = [v.name for v in self._variables if v.vtype is VarType.INTEGER]
        binaries = [v.name for v in self._variables if v.vtype is VarType.BINARY]
        if integers:
            lines.append("General")
            lines.append(" " + " ".join(integers))
        if binaries:
            lines.append("Binary")
            lines.append(" " + " ".join(binaries))
        lines.append("End")
        return "\n".join(lines)


def _format_expr(expr: LinExpr) -> str:
    parts = []
    for var, coef in sorted(expr.terms.items(), key=lambda kv: kv[0].index):
        if coef == 0:
            continue
        parts.append(f"{coef:+g} {var.name}")
    if expr.constant:
        parts.append(f"{expr.constant:+g}")
    return " ".join(parts) if parts else "0"
