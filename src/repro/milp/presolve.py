"""MILP presolve: shrink a :class:`~repro.milp.model.MatrixForm` before solving.

The floorplanning models of the paper carry a lot of structure a solver never
needs to see: binaries fixed to zero by the feasible-placement pruning of
:mod:`repro.floorplan.milp_builder`, singleton rows that are really variable
bounds, constraints duplicated between the base model and the relocation
extension, and rows made redundant by the variable bounds alone.  This module
removes all of that *exactly* — every reduction preserves the feasible set and
the optimal objective value — and records an invertible mapping so solutions
of the reduced problem are restored to the original variable space
(:meth:`PresolveResult.restore`).

Reductions applied (iterated to a fixed point):

1. **coefficient cleanup** — drop stored coefficients below ``1e-12``;
2. **integer bound tightening** — round fractional bounds of integral
   variables inward;
3. **fixed-variable substitution** — variables with ``lb == ub`` are removed
   and folded into the row activity bounds and the objective offset;
4. **singleton rows** — a row with one nonzero is a variable bound; tighten
   and drop the row;
5. **redundant rows** — rows whose activity range (from the variable bounds)
   already implies the constraint are dropped; rows whose range *contradicts*
   it prove infeasibility;
6. **duplicate rows** — rows with identical coefficient patterns are merged
   by intersecting their activity bounds.

All reductions work on the sense-free ``lb <= A x <= ub`` row form, so the
presolver is oblivious to how constraints were written.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.milp.expr import Variable
from repro.milp.model import MatrixForm

__all__ = ["PresolveStatus", "PresolveStats", "PresolveResult", "presolve"]

#: Coefficients smaller than this are treated as exact zeros.
COEF_TOL = 1e-12

#: Feasibility tolerance used by redundancy/infeasibility activity tests.
FEAS_TOL = 1e-9

#: Bound on presolve passes; each pass is a fixed point check, so the loop
#: normally exits after 2-3 iterations.
MAX_PASSES = 10


class PresolveStatus(enum.Enum):
    """Outcome of a presolve run."""

    REDUCED = "reduced"  # a (possibly unchanged) reduced problem remains
    SOLVED = "solved"  # every variable was fixed; the model is solved
    INFEASIBLE = "infeasible"  # presolve proved the model infeasible


@dataclasses.dataclass
class PresolveStats:
    """What presolve did, for reports and benchmark assertions."""

    passes: int = 0
    coefficients_dropped: int = 0
    bounds_tightened: int = 0
    variables_fixed: int = 0
    singleton_rows: int = 0
    redundant_rows: int = 0
    duplicate_rows: int = 0
    empty_rows: int = 0
    rows_before: int = 0
    rows_after: int = 0
    cols_before: int = 0
    cols_after: int = 0
    nnz_before: int = 0
    nnz_after: int = 0

    @property
    def rows_removed(self) -> int:
        """Total constraint rows eliminated."""
        return self.rows_before - self.rows_after

    @property
    def cols_removed(self) -> int:
        """Total variable columns eliminated."""
        return self.cols_before - self.cols_after

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"presolve: {self.rows_before}x{self.cols_before} -> "
            f"{self.rows_after}x{self.cols_after} "
            f"({self.rows_removed} rows, {self.cols_removed} cols, "
            f"{self.nnz_before - self.nnz_after} nonzeros removed "
            f"in {self.passes} passes)"
        )


@dataclasses.dataclass
class PresolveResult:
    """Reduced problem plus the exact postsolve mapping.

    ``reduced`` is ``None`` unless ``status is PresolveStatus.REDUCED``.  The
    mapping back to the original space is: original variable ``j`` takes
    ``fixed_values[j]`` when presolve fixed it, otherwise the reduced
    solution's value at position ``kept_cols.index(j)``.  Objective values of
    the reduced problem are offset by ``objective_offset`` (in the internal
    minimization sense).
    """

    status: PresolveStatus
    original: MatrixForm
    reduced: Optional[MatrixForm]
    stats: PresolveStats
    kept_cols: np.ndarray
    fixed_values: np.ndarray
    fixed_mask: np.ndarray
    objective_offset: float = 0.0
    message: str = ""

    # ------------------------------------------------------------------
    def restore(self, reduced_x: np.ndarray) -> np.ndarray:
        """Map a reduced solution vector back to the original variables."""
        full = self.fixed_values.copy()
        if self.kept_cols.size:
            full[self.kept_cols] = np.asarray(reduced_x, dtype=float)
        return full

    def restore_values(self, reduced_x: np.ndarray) -> Dict[Variable, float]:
        """Restore to a ``Variable -> value`` mapping with integers rounded."""
        full = self.restore(reduced_x)
        values: Dict[Variable, float] = {}
        for var, val in zip(self.original.variables, full):
            values[var] = float(round(val)) if var.is_integral else float(val)
        return values

    def restore_objective(self, reduced_objective: float) -> float:
        """Objective of the original (internal minimize) problem."""
        return float(reduced_objective) + self.objective_offset

    def fixed_only_values(self) -> Dict[Variable, float]:
        """Values when presolve solved the model outright (status SOLVED)."""
        if self.status is not PresolveStatus.SOLVED:
            raise ValueError("model was not fully solved by presolve")
        return self.restore_values(np.empty(0))


def presolve(form: MatrixForm) -> PresolveResult:
    """Run the reduction loop on a matrix form.

    The input form is never mutated.  Works on the sparse lowering; a dense
    form (from ``to_matrix_form(dense=True)``) is converted first.
    """
    form = form.to_sparse()
    nrows, ncols = form.num_constraints, form.num_variables

    matrix = form.constraint_matrix.copy().tocsr()
    row_lb = form.constraint_lb.copy()
    row_ub = form.constraint_ub.copy()
    var_lb = form.var_lb.astype(float).copy()
    var_ub = form.var_ub.astype(float).copy()
    objective = form.objective
    integral = form.integrality > 0

    stats = PresolveStats(
        rows_before=nrows,
        cols_before=ncols,
        nnz_before=int(matrix.nnz),
    )

    row_alive = np.ones(nrows, dtype=bool)
    col_alive = np.ones(ncols, dtype=bool)
    fixed_values = np.zeros(ncols)
    infeasible_reason: Optional[str] = None

    def _fail(reason: str) -> PresolveResult:
        stats.rows_after = int(row_alive.sum())
        stats.cols_after = int(col_alive.sum())
        stats.nnz_after = 0
        return PresolveResult(
            status=PresolveStatus.INFEASIBLE,
            original=form,
            reduced=None,
            stats=stats,
            kept_cols=np.flatnonzero(col_alive),
            fixed_values=fixed_values,
            fixed_mask=~col_alive,
            message=reason,
        )

    # ------------------------------------------------------------------
    # pass loop
    # ------------------------------------------------------------------
    for _ in range(MAX_PASSES):
        changed = False
        stats.passes += 1

        # 1. coefficient cleanup ---------------------------------------
        small = np.abs(matrix.data) < COEF_TOL
        nonzero_small = small & (matrix.data != 0.0)
        if nonzero_small.any():
            stats.coefficients_dropped += int(nonzero_small.sum())
            changed = True
        if small.any():
            matrix.data[small] = 0.0
        matrix.eliminate_zeros()

        # 2. integer bound tightening ----------------------------------
        tighten_lb = integral & col_alive & (np.ceil(var_lb - FEAS_TOL) > var_lb)
        tighten_ub = integral & col_alive & (np.floor(var_ub + FEAS_TOL) < var_ub)
        if tighten_lb.any():
            var_lb[tighten_lb] = np.ceil(var_lb[tighten_lb] - FEAS_TOL)
            stats.bounds_tightened += int(tighten_lb.sum())
            changed = True
        if tighten_ub.any():
            var_ub[tighten_ub] = np.floor(var_ub[tighten_ub] + FEAS_TOL)
            stats.bounds_tightened += int(tighten_ub.sum())
            changed = True
        crossed = col_alive & (var_lb > var_ub + FEAS_TOL)
        if crossed.any():
            j = int(np.flatnonzero(crossed)[0])
            infeasible_reason = (
                f"variable {form.variables[j].name!r} has empty domain "
                f"[{var_lb[j]:g}, {var_ub[j]:g}]"
            )
            break

        # 3. fixed-variable substitution -------------------------------
        newly_fixed = col_alive & (var_ub - var_lb <= FEAS_TOL)
        if newly_fixed.any():
            fix_idx = np.flatnonzero(newly_fixed)
            values = 0.5 * (var_lb[fix_idx] + var_ub[fix_idx])
            values = np.where(
                integral[fix_idx], np.round(values), values
            )
            fixed_values[fix_idx] = values
            # fold a_ij * x_j into the row activity bounds
            csc = matrix.tocsc()
            for j, value in zip(fix_idx.tolist(), values.tolist()):
                start, end = csc.indptr[j], csc.indptr[j + 1]
                rows = csc.indices[start:end]
                coefs = csc.data[start:end]
                if value != 0.0 and rows.size:
                    shift = coefs * value
                    row_lb[rows] = np.where(
                        np.isfinite(row_lb[rows]), row_lb[rows] - shift, row_lb[rows]
                    )
                    row_ub[rows] = np.where(
                        np.isfinite(row_ub[rows]), row_ub[rows] - shift, row_ub[rows]
                    )
            col_alive[fix_idx] = False
            stats.variables_fixed += int(fix_idx.size)
            # zero the fixed columns out of the matrix
            keep_mask = np.ones(ncols, dtype=bool)
            keep_mask[fix_idx] = False
            scale = sparse.diags(keep_mask.astype(float))
            matrix = (matrix @ scale).tocsr()
            matrix.eliminate_zeros()
            changed = True

        # 4. singleton rows --------------------------------------------
        row_nnz = np.diff(matrix.indptr)
        singleton = row_alive & (row_nnz == 1)
        if singleton.any():
            for i in np.flatnonzero(singleton).tolist():
                start = matrix.indptr[i]
                j = int(matrix.indices[start])
                a = float(matrix.data[start])
                lo, hi = row_lb[i], row_ub[i]
                if a > 0:
                    new_lb = lo / a if np.isfinite(lo) else -math.inf
                    new_ub = hi / a if np.isfinite(hi) else math.inf
                else:
                    new_lb = hi / a if np.isfinite(hi) else -math.inf
                    new_ub = lo / a if np.isfinite(lo) else math.inf
                if new_lb > var_lb[j] + FEAS_TOL:
                    var_lb[j] = new_lb
                    stats.bounds_tightened += 1
                if new_ub < var_ub[j] - FEAS_TOL:
                    var_ub[j] = new_ub
                    stats.bounds_tightened += 1
                row_alive[i] = False
                stats.singleton_rows += 1
                if var_lb[j] > var_ub[j] + FEAS_TOL:
                    infeasible_reason = (
                        f"singleton row empties domain of "
                        f"{form.variables[j].name!r}"
                    )
                    break
            if infeasible_reason is not None:
                break
            changed = True

        # 5. empty + redundant rows ------------------------------------
        row_nnz = np.diff(matrix.indptr)
        empty = row_alive & (row_nnz == 0)
        if empty.any():
            bad = empty & ((row_lb > FEAS_TOL) | (row_ub < -FEAS_TOL))
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                infeasible_reason = (
                    f"row {i} reduced to 0 in [{row_lb[i]:g}, {row_ub[i]:g}]"
                )
                break
            stats.empty_rows += int(empty.sum())
            row_alive[empty] = False
            changed = True

        min_act, max_act = _activity_bounds(matrix, var_lb, var_ub)
        contradiction = row_alive & (
            (min_act > row_ub + FEAS_TOL) | (max_act < row_lb - FEAS_TOL)
        )
        if contradiction.any():
            i = int(np.flatnonzero(contradiction)[0])
            infeasible_reason = (
                f"row {i} activity [{min_act[i]:g}, {max_act[i]:g}] cannot meet "
                f"[{row_lb[i]:g}, {row_ub[i]:g}]"
            )
            break
        redundant = (
            row_alive
            & (row_nnz > 0)
            & (min_act >= row_lb - FEAS_TOL)
            & (max_act <= row_ub + FEAS_TOL)
        )
        if redundant.any():
            stats.redundant_rows += int(redundant.sum())
            row_alive[redundant] = False
            changed = True

        # 6. duplicate rows --------------------------------------------
        removed = _merge_duplicate_rows(matrix, row_lb, row_ub, row_alive)
        if removed < 0:
            infeasible_reason = "duplicate rows with incompatible bounds"
            break
        if removed:
            stats.duplicate_rows += removed
            changed = True

        if not changed:
            break

    # ------------------------------------------------------------------
    # assemble the result
    # ------------------------------------------------------------------
    if infeasible_reason is not None:
        return _fail(infeasible_reason)

    kept_cols = np.flatnonzero(col_alive)
    kept_rows = np.flatnonzero(row_alive)
    stats.cols_after = int(kept_cols.size)

    if kept_cols.size == 0:
        # everything fixed: verify the remaining rows accept the fixed point
        stats.rows_after = 0
        stats.nnz_after = 0
        return PresolveResult(
            status=PresolveStatus.SOLVED,
            original=form,
            reduced=None,
            stats=stats,
            kept_cols=kept_cols,
            fixed_values=fixed_values,
            fixed_mask=~col_alive,
            objective_offset=float(objective @ fixed_values),
            message="all variables fixed by presolve",
        )

    reduced_matrix = matrix[kept_rows][:, kept_cols].tocsr()
    reduced_matrix.eliminate_zeros()
    stats.rows_after = int(kept_rows.size)
    stats.nnz_after = int(reduced_matrix.nnz)

    fixed_mask = ~col_alive
    offset = float(objective[fixed_mask] @ fixed_values[fixed_mask])

    reduced = MatrixForm(
        objective=objective[kept_cols].copy(),
        constraint_matrix=reduced_matrix,
        constraint_lb=row_lb[kept_rows].copy(),
        constraint_ub=row_ub[kept_rows].copy(),
        var_lb=var_lb[kept_cols].copy(),
        var_ub=var_ub[kept_cols].copy(),
        integrality=form.integrality[kept_cols].copy(),
        variables=[form.variables[j] for j in kept_cols.tolist()],
    )
    return PresolveResult(
        status=PresolveStatus.REDUCED,
        original=form,
        reduced=reduced,
        stats=stats,
        kept_cols=kept_cols,
        fixed_values=fixed_values,
        fixed_mask=fixed_mask,
        objective_offset=offset,
        message=stats.summary(),
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _activity_bounds(matrix: sparse.csr_matrix, var_lb: np.ndarray, var_ub: np.ndarray):
    """Row activity ranges implied by the variable bounds.

    Sparse matvecs only touch stored entries, so infinite variable bounds
    propagate as ``-inf``/``+inf`` without producing NaNs (a positive
    coefficient never multiplies ``+inf`` when computing the minimum).
    """
    pos = matrix.maximum(0)
    neg = matrix.minimum(0)
    min_act = pos @ var_lb + neg @ var_ub
    max_act = pos @ var_ub + neg @ var_lb
    return min_act, max_act


def _merge_duplicate_rows(
    matrix: sparse.csr_matrix,
    row_lb: np.ndarray,
    row_ub: np.ndarray,
    row_alive: np.ndarray,
) -> int:
    """Merge rows with identical sparsity patterns and coefficients.

    Bounds of duplicates are intersected onto the first occurrence.  Returns
    the number of rows removed, or ``-1`` when an intersection is empty
    (proving infeasibility).
    """
    seen: Dict[tuple, int] = {}
    removed = 0
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    for i in np.flatnonzero(row_alive).tolist():
        start, end = indptr[i], indptr[i + 1]
        if start == end:
            continue
        key = (
            tuple(indices[start:end].tolist()),
            tuple(np.round(data[start:end], 12).tolist()),
        )
        first = seen.get(key)
        if first is None:
            seen[key] = i
            continue
        row_lb[first] = max(row_lb[first], row_lb[i])
        row_ub[first] = min(row_ub[first], row_ub[i])
        row_alive[i] = False
        removed += 1
        if row_lb[first] > row_ub[first] + FEAS_TOL:
            return -1
    return removed
