"""MILP modelling and solving substrate.

The paper's floorplanner is formulated as a Mixed-Integer Linear Program and
handed to an off-the-shelf solver.  No third-party modelling layer (PuLP,
Pyomo, OR-Tools) is available in this environment, so this package provides a
small but complete modelling language of its own:

* :class:`~repro.milp.expr.Variable` and :class:`~repro.milp.expr.LinExpr`
  implement affine expressions with operator overloading;
* :class:`~repro.milp.model.Model` collects variables, linear constraints and
  an objective, and can export the problem in a dense/sparse matrix form;
* :mod:`~repro.milp.scipy_backend` compiles a model to
  :func:`scipy.optimize.milp` (the HiGHS branch-and-cut solver);
* :mod:`~repro.milp.branch_bound` is a pure-Python branch-and-bound solver on
  top of LP relaxations, used as a fallback backend and for ablations;
* :func:`~repro.milp.solver.solve` dispatches between backends and applies
  :class:`~repro.milp.solver.SolverOptions` (time limit, MIP gap, verbosity).
"""

from repro.milp.expr import LinExpr, Variable, VarType, quicksum
from repro.milp.constraint import Constraint, Sense
from repro.milp.model import MatrixForm, Model, ModelStats

# NOTE: the package attribute ``repro.milp.presolve`` resolves to the
# *function* (the module's primary API), shadowing the submodule of the same
# name.  Module internals not re-exported here are reachable with
# ``from repro.milp.presolve import <name>``, which always resolves against
# the submodule itself.
from repro.milp.presolve import PresolveResult, PresolveStats, PresolveStatus, presolve
from repro.milp.solution import MILPSolution, SolveStatus
from repro.milp.solver import SolverOptions, prepare_model, solve, split_matrix_form

__all__ = [
    "LinExpr",
    "Variable",
    "VarType",
    "quicksum",
    "Constraint",
    "Sense",
    "MatrixForm",
    "Model",
    "ModelStats",
    "MILPSolution",
    "SolveStatus",
    "SolverOptions",
    "PresolveResult",
    "PresolveStats",
    "PresolveStatus",
    "presolve",
    "prepare_model",
    "split_matrix_form",
    "solve",
]
