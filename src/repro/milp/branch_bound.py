"""Pure-Python branch-and-bound MILP solver.

This backend exists for two reasons:

* it removes the hard dependency on HiGHS MIP support (only LP is needed), and
* it provides a transparent reference implementation used by the ablation
  benchmarks (``benchmarks/bench_ablation_modes.py``) to study how much of the
  paper's runtime story is attributable to the solver rather than the model.

The algorithm is a textbook LP-based branch and bound:

1. solve the LP relaxation with ``scipy.optimize.linprog`` (HiGHS simplex/IPM);
2. if the relaxation is integral, update the incumbent;
3. otherwise branch on the most fractional integer variable, exploring the
   child whose bound is closer to the incumbent first (best-first on a heap).

It is exact but not fast; use it on small models (tests, small synthetic
devices) and keep the HiGHS MIP backend for the SDR-scale instances.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.milp.model import MatrixForm, Model
from repro.milp.solution import MILPSolution, SolveStatus

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    priority: float
    count: int
    lower: np.ndarray = None  # type: ignore[assignment]
    upper: np.ndarray = None  # type: ignore[assignment]


def solve_with_branch_bound(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    max_nodes: int = 200_000,
    verbose: bool = False,
) -> MILPSolution:
    """Solve ``model`` with LP-based branch and bound.

    Parameters mirror :func:`repro.milp.scipy_backend.solve_with_scipy`;
    ``max_nodes`` bounds the search tree as a safety valve.
    """
    form = model.to_matrix_form()
    start = time.perf_counter()
    deadline = None if time_limit is None else start + float(time_limit)
    gap_target = 0.0 if mip_gap is None else float(mip_gap)

    nvars = len(form.variables)
    if nvars == 0:
        return MILPSolution(
            status=SolveStatus.OPTIMAL, objective=0.0, values={}, bound=0.0,
            backend="branch-bound", message="empty model",
        )

    integer_indices = np.flatnonzero(form.integrality > 0)

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    best_bound = -math.inf
    nodes_explored = 0
    counter = itertools.count()

    root = _Node(priority=-math.inf, count=next(counter),
                 lower=form.var_lb.copy(), upper=form.var_ub.copy())
    heap: List[_Node] = [root]
    timed_out = False

    while heap:
        if deadline is not None and time.perf_counter() > deadline:
            timed_out = True
            break
        if nodes_explored >= max_nodes:
            timed_out = True
            break

        node = heapq.heappop(heap)
        nodes_explored += 1

        relaxation = _solve_lp(form, node.lower, node.upper)
        if relaxation is None:
            continue  # infeasible subproblem
        obj, x = relaxation

        if obj >= incumbent_obj - 1e-9:
            continue  # pruned by bound

        fractional = _most_fractional(x, integer_indices)
        if fractional is None:
            # integral solution: new incumbent
            if obj < incumbent_obj:
                incumbent_obj = obj
                incumbent_x = x.copy()
            continue

        idx, value = fractional
        floor_val = math.floor(value + _INT_TOL)

        lower_child = _Node(priority=obj, count=next(counter),
                            lower=node.lower.copy(), upper=node.upper.copy())
        lower_child.upper[idx] = floor_val
        upper_child = _Node(priority=obj, count=next(counter),
                            lower=node.lower.copy(), upper=node.upper.copy())
        upper_child.lower[idx] = floor_val + 1
        heapq.heappush(heap, lower_child)
        heapq.heappush(heap, upper_child)

        # optional early stop on gap
        if heap and incumbent_obj < math.inf:
            best_bound = heap[0].priority
            if best_bound > -math.inf:
                gap = abs(incumbent_obj - best_bound) / max(1.0, abs(incumbent_obj))
                if gap <= gap_target:
                    break

    elapsed = time.perf_counter() - start

    if incumbent_x is None:
        status = SolveStatus.TIME_LIMIT if timed_out else SolveStatus.INFEASIBLE
        return MILPSolution(
            status=status, solve_time=elapsed, node_count=nodes_explored,
            backend="branch-bound",
            message="no incumbent found" if timed_out else "search exhausted without incumbent",
        )

    proven_optimal = not timed_out and not heap
    if not heap:
        best_bound = incumbent_obj
    elif heap:
        best_bound = min(n.priority for n in heap)
        best_bound = min(best_bound, incumbent_obj)

    values = {}
    for var, val in zip(form.variables, incumbent_x):
        values[var] = float(round(val)) if var.is_integral else float(val)
    objective = model.objective_value(values)
    user_bound = best_bound if model.is_minimization else -best_bound

    return MILPSolution(
        status=SolveStatus.OPTIMAL if proven_optimal else SolveStatus.FEASIBLE,
        objective=objective,
        values=values,
        bound=user_bound,
        solve_time=elapsed,
        node_count=nodes_explored,
        backend="branch-bound",
        message="optimal" if proven_optimal else "stopped early with incumbent",
    )


def _solve_lp(
    form: MatrixForm, lower: np.ndarray, upper: np.ndarray
) -> Optional[Tuple[float, np.ndarray]]:
    """Solve the LP relaxation restricted to the node's bounds."""
    if np.any(lower > upper + 1e-12):
        return None
    a_ub_parts = []
    b_ub_parts = []
    a_eq_parts = []
    b_eq_parts = []
    matrix = form.constraint_matrix
    lb = form.constraint_lb
    ub = form.constraint_ub
    finite_ub = np.isfinite(ub)
    finite_lb = np.isfinite(lb)
    equality = finite_lb & finite_ub & (np.abs(ub - lb) < 1e-12)
    ineq_ub = finite_ub & ~equality
    ineq_lb = finite_lb & ~equality
    if np.any(ineq_ub):
        a_ub_parts.append(matrix[ineq_ub])
        b_ub_parts.append(ub[ineq_ub])
    if np.any(ineq_lb):
        a_ub_parts.append(-matrix[ineq_lb])
        b_ub_parts.append(-lb[ineq_lb])
    if np.any(equality):
        a_eq_parts.append(matrix[equality])
        b_eq_parts.append(lb[equality])

    from scipy import sparse as _sparse

    a_ub = _sparse.vstack(a_ub_parts) if a_ub_parts else None
    b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
    a_eq = _sparse.vstack(a_eq_parts) if a_eq_parts else None
    b_eq = np.concatenate(b_eq_parts) if b_eq_parts else None

    bounds = list(zip(
        [l if np.isfinite(l) else None for l in lower],
        [u if np.isfinite(u) else None for u in upper],
    ))
    result = linprog(
        c=form.objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun), np.asarray(result.x)


def _most_fractional(
    x: np.ndarray, integer_indices: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Index and value of the integer variable farthest from integrality."""
    if integer_indices.size == 0:
        return None
    vals = x[integer_indices]
    frac = np.abs(vals - np.round(vals))
    worst = int(np.argmax(frac))
    if frac[worst] <= _INT_TOL:
        return None
    return int(integer_indices[worst]), float(vals[worst])
