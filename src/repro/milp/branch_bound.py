"""Pure-Python branch-and-bound MILP solver.

This backend exists for two reasons:

* it removes the hard dependency on HiGHS MIP support (only LP is needed), and
* it provides a transparent reference implementation used by the ablation
  benchmarks to study how much of the paper's runtime story is attributable to
  the solver rather than the model.

The algorithm is LP-based branch and bound, hot-started at every level:

1. the model is lowered and presolved once through
   :func:`repro.milp.solver.prepare_model`, and the ``linprog``-shaped
   constraint split (:func:`repro.milp.solver.split_matrix_form`) is built
   once per solve instead of once per node — only the variable-bound arrays
   differ between nodes (bound-delta re-solves);
2. children inherit the parent's LP state (objective bound and branch
   fractionality): it feeds the pseudo-cost estimates and lets a node be
   pruned against the incumbent *before* its LP is solved;
3. branching uses pseudo-costs (observed objective degradation per unit of
   fractionality, product rule) instead of most-fractional selection;
4. a rounding pass plus a fix-and-propagate dive produce an incumbent at the
   root, and LP reduced costs then fix provably-immovable integers, so
   best-first pruning bites from the first nodes on;
5. on exit the solution carries the achieved MIP gap (``bound`` is always
   populated from the weakest open or gap-pruned node).

``warm_start=False`` reverts to the textbook configuration (most-fractional
branching, no heuristics, per-node constraint split) used as the ablation
baseline by the ``milp.bb_warmstart`` benchmark.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.milp.model import MatrixForm, Model
from repro.milp.solution import MILPSolution, SolveStatus
from repro.milp.solver import (
    PreparedModel,
    SplitForm,
    prepare_model,
    remaining_budget,
    split_matrix_form,
)
from repro.obs.trace import record_stage

_INT_TOL = 1e-6

#: Round cap of the fix-and-propagate dive (at most two LP solves per round).
_MAX_DIVE_ROUNDS = 12


@dataclass(order=True)
class _Node:
    priority: float
    count: int
    lower: np.ndarray = field(compare=False, default=None)  # type: ignore[assignment]
    upper: np.ndarray = field(compare=False, default=None)  # type: ignore[assignment]
    branch_idx: int = field(compare=False, default=-1)
    branch_up: bool = field(compare=False, default=False)
    branch_frac: float = field(compare=False, default=0.0)


class _PseudoCosts:
    """Per-variable objective degradation per unit of fractionality."""

    def __init__(self, nvars: int) -> None:
        self.down_sum = np.zeros(nvars)
        self.down_count = np.zeros(nvars)
        self.up_sum = np.zeros(nvars)
        self.up_count = np.zeros(nvars)

    def update(self, idx: int, up: bool, degradation: float, frac: float) -> None:
        """Record one observed branch outcome (child LP minus parent LP)."""
        if frac <= _INT_TOL:
            return
        per_unit = max(0.0, degradation) / frac
        if up:
            self.up_sum[idx] += per_unit
            self.up_count[idx] += 1.0
        else:
            self.down_sum[idx] += per_unit
            self.down_count[idx] += 1.0

    def select(self, x: np.ndarray, candidates: np.ndarray) -> Tuple[int, float]:
        """Pick the branching variable by the pseudo-cost product rule."""
        vals = x[candidates]
        fracs = vals - np.floor(vals)
        total_count = self.down_count.sum() + self.up_count.sum()
        if total_count == 0:
            # no history yet: fall back to most-fractional
            scores = np.minimum(fracs, 1.0 - fracs)
        else:
            avg = (self.down_sum.sum() + self.up_sum.sum()) / total_count
            avg = max(avg, 1e-6)
            down = np.where(
                self.down_count[candidates] > 0,
                self.down_sum[candidates] / np.maximum(self.down_count[candidates], 1),
                avg,
            )
            up = np.where(
                self.up_count[candidates] > 0,
                self.up_sum[candidates] / np.maximum(self.up_count[candidates], 1),
                avg,
            )
            scores = np.maximum(down * fracs, 1e-8) * np.maximum(
                up * (1.0 - fracs), 1e-8
            )
        best = int(np.argmax(scores))
        return int(candidates[best]), float(vals[best])


def solve_with_branch_bound(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    max_nodes: int = 200_000,
    verbose: bool = False,
    presolve: bool = True,
    warm_start: bool = True,
    prepared: PreparedModel | None = None,
) -> MILPSolution:
    """Solve ``model`` with warm-started LP-based branch and bound.

    Parameters mirror :func:`repro.milp.scipy_backend.solve_with_scipy`;
    ``max_nodes`` bounds the search tree as a safety valve, ``warm_start``
    toggles pseudo-cost branching plus the primal heuristics, and the
    ``time_limit`` budget covers matrix lowering and presolve as well as the
    node loop.
    """
    start = time.perf_counter()
    if prepared is None:
        prepared = prepare_model(model, run_presolve=presolve, backend="branch-bound")

    if prepared.shortcut is not None:
        # copy before stamping: a PreparedModel may be reused across backends
        return dataclasses.replace(
            prepared.shortcut,
            backend="branch-bound",
            solve_time=time.perf_counter() - start,
        )

    form = prepared.active
    budget, exhausted = remaining_budget(time_limit, start)
    if exhausted:
        return MILPSolution(
            status=SolveStatus.TIME_LIMIT,
            solve_time=time.perf_counter() - start,
            backend="branch-bound",
            message="time limit exhausted during matrix build/presolve (gap=inf)",
            presolve_stats=prepared.stats,
        )
    deadline = None if budget is None else time.perf_counter() + budget
    gap_target = 0.0 if mip_gap is None else float(mip_gap)

    integer_indices = np.flatnonzero(form.integrality > 0)
    split = split_matrix_form(form) if warm_start else None

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    best_bound = -math.inf
    #: weakest bound discarded by gap-aware pruning (keeps the exit gap honest)
    pruned_bound = math.inf
    nodes_explored = 0
    counter = itertools.count()
    pseudo = _PseudoCosts(form.num_variables)
    timed_out = False

    def _prune_cut() -> float:
        """Objective level at which a subtree is not worth exploring.

        Warm mode discards subtrees that cannot improve the incumbent by more
        than the requested MIP gap — the contract of ``mip_gap`` — instead of
        only strictly-dominated ones; ``pruned_bound`` records what was cut so
        the reported bound never overstates what was proven.
        """
        if not math.isfinite(incumbent_obj):
            return math.inf
        allowance = (
            gap_target * max(1.0, abs(incumbent_obj)) if warm_start else 0.0
        )
        return incumbent_obj - allowance - 1e-9

    # ------------------------------------------------------------------
    # root node
    # ------------------------------------------------------------------
    search_start = time.perf_counter()
    root_lower = form.var_lb.astype(float).copy()
    root_upper = form.var_ub.astype(float).copy()
    nodes_explored += 1
    root = _solve_lp_with_duals(form, split, root_lower, root_upper)
    if root is None:
        record_stage(
            "milp.search",
            time.perf_counter() - search_start,
            backend="branch-bound",
            nodes=nodes_explored,
        )
        return MILPSolution(
            status=SolveStatus.INFEASIBLE,
            solve_time=time.perf_counter() - start,
            node_count=nodes_explored,
            backend="branch-bound",
            message="LP relaxation infeasible",
            presolve_stats=prepared.stats,
        )
    root_obj, root_x, root_rc_lb, root_rc_ub = root
    best_bound = root_obj

    heap: List[_Node] = []

    fractional = _most_fractional(root_x, integer_indices)
    if fractional is None:
        incumbent_obj, incumbent_x = root_obj, root_x.copy()
    else:
        if warm_start:
            # primal heuristics: rounding, then depth-limited diving
            rounded = _try_round(form, root_x, integer_indices)
            if rounded is not None and rounded[0] < incumbent_obj:
                incumbent_obj, incumbent_x = rounded[0], rounded[1]
            dive = _dive(
                form, split, root_lower, root_upper, root_x,
                integer_indices, deadline,
            )
            if dive is not None and dive[0] < incumbent_obj:
                incumbent_obj, incumbent_x = dive[0], dive[1]
            # with an incumbent in hand, the root duals prove many integer
            # variables immovable (up to the allowed gap) — fix them for the
            # entire tree and account the cutoff in the proven bound
            if _reduced_cost_fix(
                root_obj, root_x, root_rc_lb, root_rc_ub,
                root_lower, root_upper, integer_indices, _prune_cut(),
            ):
                pruned_bound = min(pruned_bound, _prune_cut())
        _branch(
            heap, counter, root_obj, root_x, root_lower, root_upper,
            fractional if not warm_start else None,
            integer_indices, pseudo, warm_start,
        )

    # ------------------------------------------------------------------
    # best-first node loop
    # ------------------------------------------------------------------
    while heap:
        if deadline is not None and time.perf_counter() > deadline:
            timed_out = True
            break
        if nodes_explored >= max_nodes:
            timed_out = True
            break

        node = heapq.heappop(heap)
        if warm_start and node.priority >= _prune_cut():
            # parent bound already dominates the incumbent: prune without LP
            pruned_bound = min(pruned_bound, node.priority)
            continue
        nodes_explored += 1

        relaxation = _solve_lp_with_duals(form, split, node.lower, node.upper)
        if relaxation is None:
            continue  # infeasible subproblem
        obj, x, rc_lb, rc_ub = relaxation

        if warm_start and node.branch_idx >= 0:
            pseudo.update(
                node.branch_idx, node.branch_up, obj - node.priority, node.branch_frac
            )

        if obj >= _prune_cut():
            pruned_bound = min(pruned_bound, obj)
            continue  # pruned by bound

        fractional = _most_fractional(x, integer_indices)
        if fractional is None:
            # integral solution: new incumbent
            if obj < incumbent_obj:
                incumbent_obj = obj
                incumbent_x = x.copy()
            continue

        if warm_start:
            rounded = _try_round(form, x, integer_indices)
            if rounded is not None and rounded[0] < incumbent_obj:
                incumbent_obj, incumbent_x = rounded[0], rounded[1]
            # subtree-local reduced-cost fixing against the pruning cutoff
            if _reduced_cost_fix(
                obj, x, rc_lb, rc_ub,
                node.lower, node.upper, integer_indices, _prune_cut(),
            ):
                pruned_bound = min(pruned_bound, _prune_cut())

        _branch(
            heap, counter, obj, x, node.lower, node.upper,
            fractional if not warm_start else None,
            integer_indices, pseudo, warm_start,
        )

        # optional early stop on gap (signed: dominated open nodes close it)
        if heap and incumbent_obj < math.inf:
            open_bound = heap[0].priority
            if open_bound > -math.inf:
                gap = (incumbent_obj - open_bound) / max(1.0, abs(incumbent_obj))
                if gap <= gap_target:
                    break

    elapsed = time.perf_counter() - start
    record_stage(
        "milp.search",
        time.perf_counter() - search_start,
        backend="branch-bound",
        nodes=nodes_explored,
    )

    # the proven bound is the weakest open or gap-pruned node (or the
    # incumbent itself when the tree closed completely)
    if heap:
        best_bound = min(min(n.priority for n in heap), pruned_bound, incumbent_obj)
    elif not timed_out:
        best_bound = min(pruned_bound, incumbent_obj)

    if incumbent_x is None:
        status = SolveStatus.TIME_LIMIT if timed_out else SolveStatus.INFEASIBLE
        bound = prepared.user_bound(best_bound) if math.isfinite(best_bound) else float("nan")
        return MILPSolution(
            status=status,
            bound=bound,
            solve_time=elapsed,
            node_count=nodes_explored,
            backend="branch-bound",
            message=(
                "no incumbent found (gap=inf)"
                if timed_out
                else "search exhausted without incumbent"
            ),
            presolve_stats=prepared.stats,
        )

    proven_optimal = not timed_out and best_bound >= incumbent_obj - 1e-9

    values = prepared.restore_values(incumbent_x)
    objective = model.objective_value(values)
    user_bound = prepared.user_bound(best_bound)
    gap = abs(incumbent_obj - best_bound) / max(1.0, abs(incumbent_obj))

    return MILPSolution(
        status=SolveStatus.OPTIMAL if proven_optimal else SolveStatus.FEASIBLE,
        objective=objective,
        values=values,
        bound=user_bound,
        solve_time=elapsed,
        node_count=nodes_explored,
        backend="branch-bound",
        message=(
            "optimal"
            if proven_optimal
            else f"stopped early with incumbent (gap={gap:.4%})"
        ),
        presolve_stats=prepared.stats,
    )


# ----------------------------------------------------------------------
# node machinery
# ----------------------------------------------------------------------
def _branch(
    heap: List[_Node],
    counter,
    obj: float,
    x: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    fractional: Optional[Tuple[int, float]],
    integer_indices: np.ndarray,
    pseudo: _PseudoCosts,
    warm_start: bool,
) -> None:
    """Push the two children of a node onto the heap."""
    if fractional is None:
        candidates = _fractional_indices(x, integer_indices)
        idx, value = pseudo.select(x, candidates)
    else:
        idx, value = fractional
    floor_val = math.floor(value + _INT_TOL)
    frac = value - floor_val

    down = _Node(
        priority=obj, count=next(counter),
        lower=lower.copy(), upper=upper.copy(),
        branch_idx=idx, branch_up=False, branch_frac=frac,
    )
    down.upper[idx] = floor_val
    up = _Node(
        priority=obj, count=next(counter),
        lower=lower.copy(), upper=upper.copy(),
        branch_idx=idx, branch_up=True, branch_frac=1.0 - frac,
    )
    up.lower[idx] = floor_val + 1
    heapq.heappush(heap, down)
    heapq.heappush(heap, up)


def _solve_lp(
    form: MatrixForm,
    split: Optional[SplitForm],
    lower: np.ndarray,
    upper: np.ndarray,
) -> Optional[Tuple[float, np.ndarray]]:
    """Solve the LP relaxation restricted to the node's bounds.

    With ``split`` provided (warm-start mode) the constraint blocks are reused
    across nodes and only the bound arrays differ; the legacy path rebuilds
    the split per node, reproducing the pre-optimization cost profile.
    """
    solved = _solve_lp_with_duals(form, split, lower, upper)
    if solved is None:
        return None
    obj, x, _, _ = solved
    return obj, x


def _solve_lp_with_duals(
    form: MatrixForm,
    split: Optional[SplitForm],
    lower: np.ndarray,
    upper: np.ndarray,
) -> Optional[Tuple[float, np.ndarray, Optional[np.ndarray], Optional[np.ndarray]]]:
    """Node LP returning the bound-dual marginals for reduced-cost fixing."""
    if np.any(lower > upper + 1e-12):
        return None
    if split is None:
        split = split_matrix_form(form)
    result = linprog(
        c=form.objective,
        A_ub=split.a_ub,
        b_ub=split.b_ub,
        A_eq=split.a_eq,
        b_eq=split.b_eq,
        bounds=np.column_stack((lower, upper)),
        method="highs",
    )
    if not result.success:
        return None
    rc_lower = getattr(getattr(result, "lower", None), "marginals", None)
    rc_upper = getattr(getattr(result, "upper", None), "marginals", None)
    return float(result.fun), np.asarray(result.x), rc_lower, rc_upper


def _reduced_cost_fix(
    obj: float,
    x: np.ndarray,
    rc_lower: Optional[np.ndarray],
    rc_upper: Optional[np.ndarray],
    lower: np.ndarray,
    upper: np.ndarray,
    integer_indices: np.ndarray,
    cut: float,
) -> int:
    """Fix integer variables whose reduced cost proves they cannot move.

    At an LP optimum, moving a nonbasic variable one unit off its bound
    degrades the objective by at least its reduced cost.  When
    ``obj + rc > cut`` every solution with the variable off its bound lies
    above the pruning cutoff (the incumbent minus the allowed MIP gap, the
    same level at which whole subtrees are discarded), so the variable can
    be fixed at its bound for the subtree.  The caller must fold ``cut``
    into its pruned-bound bookkeeping whenever fixing occurred, keeping the
    reported dual bound honest.  Bounds are tightened in place; returns the
    number of variables fixed.
    """
    if rc_lower is None or rc_upper is None or not math.isfinite(cut):
        return 0
    slack = cut - obj
    if slack < 0:
        return 0
    idx = integer_indices[upper[integer_indices] - lower[integer_indices] > 0.5]
    if idx.size == 0:
        return 0
    vals = x[idx]
    at_lb = (vals <= lower[idx] + _INT_TOL) & (rc_lower[idx] > slack)
    at_ub = (vals >= upper[idx] - _INT_TOL) & (-rc_upper[idx] > slack)
    fix_lb = idx[at_lb]
    fix_ub = idx[at_ub]
    upper[fix_lb] = lower[fix_lb]
    lower[fix_ub] = upper[fix_ub]
    return int(fix_lb.size + fix_ub.size)


def _fractional_indices(x: np.ndarray, integer_indices: np.ndarray) -> np.ndarray:
    """Integer variables whose LP value is fractional."""
    vals = x[integer_indices]
    frac = np.abs(vals - np.round(vals))
    return integer_indices[frac > _INT_TOL]


def _most_fractional(
    x: np.ndarray, integer_indices: np.ndarray
) -> Optional[Tuple[int, float]]:
    """Index and value of the integer variable farthest from integrality."""
    if integer_indices.size == 0:
        return None
    vals = x[integer_indices]
    frac = np.abs(vals - np.round(vals))
    worst = int(np.argmax(frac))
    if frac[worst] <= _INT_TOL:
        return None
    return int(integer_indices[worst]), float(vals[worst])


# ----------------------------------------------------------------------
# primal heuristics
# ----------------------------------------------------------------------
def _try_round(
    form: MatrixForm, x: np.ndarray, integer_indices: np.ndarray
) -> Optional[Tuple[float, np.ndarray]]:
    """Round the LP solution to the nearest integers and test feasibility."""
    if integer_indices.size == 0:
        return None
    xr = x.copy()
    xr[integer_indices] = np.round(xr[integer_indices])
    np.clip(xr, form.var_lb, form.var_ub, out=xr)
    activity = form.constraint_matrix @ xr
    tol = 1e-7
    if np.all(activity >= form.constraint_lb - tol) and np.all(
        activity <= form.constraint_ub + tol
    ):
        return float(form.objective @ xr), xr
    return None


def _dive(
    form: MatrixForm,
    split: Optional[SplitForm],
    lower: np.ndarray,
    upper: np.ndarray,
    x: np.ndarray,
    integer_indices: np.ndarray,
    deadline: Optional[float],
) -> Optional[Tuple[float, np.ndarray]]:
    """Depth-limited fix-and-propagate dive from the (root) LP solution.

    Each round fixes every integer variable already close to an integer plus
    the most fractional one, then re-solves; on an infeasible round the
    near-integral fixes are rolled back and only the single most fractional
    variable is flipped to its other neighbour.  Bounded by
    :data:`_MAX_DIVE_ROUNDS` rounds (at most two LP solves each), so a failed
    dive costs far less than the tree nodes an incumbent saves.
    """
    lower = lower.copy()
    upper = upper.copy()
    current = x
    for _ in range(_MAX_DIVE_ROUNDS):
        if deadline is not None and time.perf_counter() > deadline:
            return None
        fractional = _most_fractional(current, integer_indices)
        if fractional is None:
            return float(form.objective @ current), current
        idx, value = fractional

        # fix-and-propagate: everything within 0.1 of an integer, plus the
        # most fractional variable rounded to its nearest value
        vals = current[integer_indices]
        near = integer_indices[np.abs(vals - np.round(vals)) <= 0.1]
        trial_lower, trial_upper = lower.copy(), upper.copy()
        rounded = np.clip(
            np.round(current[near]), trial_lower[near], trial_upper[near]
        )
        trial_lower[near] = rounded
        trial_upper[near] = rounded
        target = float(np.clip(round(value), lower[idx], upper[idx]))
        trial_lower[idx] = target
        trial_upper[idx] = target
        relaxation = _solve_lp(form, split, trial_lower, trial_upper)

        if relaxation is None:
            # roll the aggressive fixes back; flip only the branching value
            flipped = math.floor(value) + math.ceil(value) - target
            trial_lower, trial_upper = lower.copy(), upper.copy()
            flipped = float(np.clip(flipped, lower[idx], upper[idx]))
            trial_lower[idx] = flipped
            trial_upper[idx] = flipped
            relaxation = _solve_lp(form, split, trial_lower, trial_upper)
            if relaxation is None:
                return None

        lower, upper = trial_lower, trial_upper
        _, current = relaxation
    fractional = _most_fractional(current, integer_indices)
    if fractional is None:
        return float(form.objective @ current), current
    return None
