"""Solution objects returned by the MILP backends."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Mapping

from repro.milp.expr import Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # a feasible incumbent exists but optimality was not proven
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"  # stopped on the time limit with no incumbent
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether a usable variable assignment is attached to the result."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclasses.dataclass
class MILPSolution:
    """Result of solving a :class:`~repro.milp.model.Model`.

    Attributes
    ----------
    status:
        Solve outcome.
    objective:
        Objective value of the incumbent (``nan`` when no incumbent exists).
    values:
        Mapping ``Variable -> value`` for the incumbent.
    bound:
        Best dual bound proven by the solver (equals ``objective`` at optimality).
    solve_time:
        Wall-clock seconds spent inside the backend.
    node_count:
        Number of branch-and-bound nodes explored (0 when the backend does not
        report it).
    backend:
        Name of the backend that produced the result.
    message:
        Free-form backend status message.
    presolve_stats:
        :class:`~repro.milp.presolve.PresolveStats` of the presolve run that
        preceded the backend, or ``None`` when presolve was disabled.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Dict[Variable, float] = dataclasses.field(default_factory=dict)
    bound: float = float("nan")
    solve_time: float = 0.0
    node_count: int = 0
    backend: str = ""
    message: str = ""
    presolve_stats: object | None = None

    # ------------------------------------------------------------------
    def value(self, var: Variable, default: float | None = None) -> float:
        """Value of a variable in the incumbent (``default`` if missing)."""
        if var in self.values:
            return self.values[var]
        if default is not None:
            return default
        raise KeyError(f"no value for variable {var.name!r} in solution")

    def value_int(self, var: Variable) -> int:
        """Value of a variable rounded to the nearest integer."""
        return int(round(self.value(var)))

    def values_by_name(self) -> Mapping[str, float]:
        """Mapping ``variable name -> value`` (handy for serialization)."""
        return {var.name: val for var, val in self.values.items()}

    @property
    def gap(self) -> float:
        """Relative optimality gap ``|objective - bound| / max(1, |objective|)``."""
        import math

        if math.isnan(self.objective) or math.isnan(self.bound):
            return float("inf")
        return abs(self.objective - self.bound) / max(1.0, abs(self.objective))

    def __bool__(self) -> bool:
        return self.status.has_solution
