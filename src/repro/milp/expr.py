"""Affine expressions over decision variables.

The modelling layer is intentionally small: variables, affine expressions and
the arithmetic needed to write constraints the way the paper writes them,
e.g. ``model.add(h[c] == h[n])`` or
``model.add(o[c, pc] + o[n, pn] + k[n, pi] <= 2 + v[c])``.

Expressions are immutable-ish (arithmetic returns new objects) but use a plain
dict of ``variable -> coefficient`` internally so that building models with
tens of thousands of terms stays cheap.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Union

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A single decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_var`; the
    constructor is public only to keep the class easy to test in isolation.

    Parameters
    ----------
    name:
        Unique (per model) human-readable name, used in LP export and
        debugging output.
    index:
        Dense integer index assigned by the owning model.
    vtype:
        Variable domain (continuous, integer or binary).
    lb, ub:
        Lower / upper bounds.  ``None`` means unbounded in that direction
        (except for binaries, which are always in ``[0, 1]``).
    """

    __slots__ = ("name", "index", "vtype", "lb", "ub")

    def __init__(
        self,
        name: str,
        index: int,
        vtype: VarType = VarType.CONTINUOUS,
        lb: float | None = 0.0,
        ub: float | None = None,
    ) -> None:
        if vtype is VarType.BINARY:
            lb = 0.0 if lb is None else max(0.0, float(lb))
            ub = 1.0 if ub is None else min(1.0, float(ub))
        self.name = name
        self.index = index
        self.vtype = vtype
        self.lb = -math.inf if lb is None else float(lb)
        self.ub = math.inf if ub is None else float(ub)

    # -- arithmetic ---------------------------------------------------------
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-self._as_expr()) + other

    def __mul__(self, coef: Number) -> "LinExpr":
        return self._as_expr() * coef

    def __rmul__(self, coef: Number) -> "LinExpr":
        return self._as_expr() * coef

    def __truediv__(self, denom: Number) -> "LinExpr":
        return self._as_expr() * (1.0 / float(denom))

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    # -- comparisons build constraints --------------------------------------
    def __le__(self, other: "ExprLike"):
        return self._as_expr() <= other

    def __ge__(self, other: "ExprLike"):
        return self._as_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.vtype.value}, [{self.lb}, {self.ub}])"

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.vtype in (VarType.INTEGER, VarType.BINARY)


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0) -> None:
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------------
    @staticmethod
    def from_const(value: Number) -> "LinExpr":
        """Build a constant expression."""
        return LinExpr({}, float(value))

    def copy(self) -> "LinExpr":
        """Return an independent copy of this expression."""
        return LinExpr(dict(self.terms), self.constant)

    # -- in-place accumulation (used by quicksum for speed) ------------------
    def _iadd(self, other: "ExprLike", scale: float = 1.0) -> "LinExpr":
        if isinstance(other, (int, float)):
            self.constant += scale * float(other)
            return self
        if isinstance(other, Variable):
            self.terms[other] = self.terms.get(other, 0.0) + scale
            return self
        if isinstance(other, LinExpr):
            for var, coef in other.terms.items():
                self.terms[var] = self.terms.get(var, 0.0) + scale * coef
            self.constant += scale * other.constant
            return self
        raise TypeError(f"cannot add {type(other).__name__} to LinExpr")

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self.copy()._iadd(other, 1.0)

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self.copy()._iadd(other, 1.0)

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self.copy()._iadd(other, -1.0)

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        result = self * -1.0
        return result._iadd(other, 1.0)

    def __mul__(self, coef: Number) -> "LinExpr":
        if not isinstance(coef, (int, float)):
            raise TypeError("LinExpr can only be multiplied by a scalar (the model is linear)")
        scaled = {var: c * float(coef) for var, c in self.terms.items()}
        return LinExpr(scaled, self.constant * float(coef))

    def __rmul__(self, coef: Number) -> "LinExpr":
        return self.__mul__(coef)

    def __truediv__(self, denom: Number) -> "LinExpr":
        return self.__mul__(1.0 / float(denom))

    def __neg__(self) -> "LinExpr":
        return self.__mul__(-1.0)

    # -- comparisons build constraints ---------------------------------------
    def __le__(self, other: "ExprLike"):
        from repro.milp.constraint import Constraint, Sense

        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: "ExprLike"):
        from repro.milp.constraint import Constraint, Sense

        return Constraint(self - other, Sense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.milp.constraint import Constraint, Sense

        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - other, Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    # -- inspection -----------------------------------------------------------
    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` in this expression (0 if absent)."""
        return self.terms.get(var, 0.0)

    def variables(self) -> Iterable[Variable]:
        """Variables with a (possibly zero) stored coefficient."""
        return self.terms.keys()

    def evaluate(self, values: Mapping[Variable, float]) -> float:
        """Evaluate the expression under an assignment ``variable -> value``."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * values[var]
        return total

    def is_constant(self, tol: float = 0.0) -> bool:
        """True if every stored coefficient is within ``tol`` of zero."""
        return all(abs(c) <= tol for c in self.terms.values())

    def __repr__(self) -> str:
        parts = []
        for var, coef in sorted(self.terms.items(), key=lambda kv: kv[0].index):
            if coef == 0:
                continue
            parts.append(f"{coef:+g}*{var.name}")
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


ExprLike = Union[Number, Variable, LinExpr]


def as_expr(value: ExprLike) -> LinExpr:
    """Coerce a number, variable or expression to a :class:`LinExpr`."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, Variable):
        return value._as_expr()
    if isinstance(value, (int, float)):
        return LinExpr.from_const(value)
    raise TypeError(f"cannot interpret {type(value).__name__} as a linear expression")


def quicksum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers efficiently.

    Equivalent to ``sum(items)`` but accumulates in place, avoiding the
    quadratic blow-up of repeated ``LinExpr.__add__`` copies when summing
    thousands of terms (which the floorplanning model does routinely).
    """
    total = LinExpr()
    for item in items:
        total._iadd(item, 1.0)
    return total
