"""Solve facade dispatching between MILP backends.

Besides the user-facing :func:`solve`, this module owns the glue that both
backends used to duplicate:

* :func:`prepare_model` lowers a model to sparse matrix form, runs
  :mod:`repro.milp.presolve` and produces a :class:`PreparedModel` carrying
  the reduced form, the postsolve mapping and shortcut solutions (empty or
  presolve-decided models);
* :func:`split_matrix_form` converts the two-sided ``lb <= A x <= ub`` row
  form into the ``A_ub/b_ub/A_eq/b_eq`` shape ``scipy.optimize.linprog``
  wants — computed once per solve instead of once per branch-and-bound node.

Both backends accept a ``prepared=`` argument so advanced callers (tests,
ablations) can lower/presolve once and solve the same prepared problem with
several backends; each backend copies any shortcut solution before stamping
it, so a shared :class:`PreparedModel` is safe to reuse.  The time-limit
budget always covers the preparation work, whoever triggered it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.milp.expr import Variable
from repro.milp.model import MatrixForm, Model
from repro.milp.presolve import PresolveResult, PresolveStatus, presolve
from repro.milp.solution import MILPSolution, SolveStatus
from repro.obs.trace import record_stage


@dataclasses.dataclass(frozen=True)
class SolverOptions:
    """Options shared by all MILP backends.

    The dataclass is frozen so that option sets are hashable and can key
    caches (see :mod:`repro.service.jobs`); use :meth:`replace` to derive
    variants.

    Attributes
    ----------
    backend:
        ``"highs"`` (scipy/HiGHS branch-and-cut, default) or ``"branch-bound"``
        (pure-Python reference implementation).
    time_limit:
        Wall-clock limit in seconds, or ``None`` for no limit.  The budget
        covers matrix lowering and presolve, not just backend time.
    mip_gap:
        Relative optimality gap at which the solver may stop.
    max_nodes:
        Node budget for the branch-and-bound backend.
    verbose:
        Enable backend log output.
    presolve:
        Run the exact presolve reductions before handing the model to the
        backend (both backends).
    warm_start:
        Branch-and-bound only: pseudo-cost branching plus rounding/diving
        primal heuristics hot-started from parent-node LP solutions.
        Disabling reverts to textbook most-fractional branching.
    """

    backend: str = "highs"
    time_limit: float | None = None
    mip_gap: float | None = None
    max_nodes: int = 200_000
    verbose: bool = False
    presolve: bool = True
    warm_start: bool = True

    def replace(self, **changes) -> "SolverOptions":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (stable key order)."""
        return {
            "backend": self.backend,
            "time_limit": self.time_limit,
            "mip_gap": self.mip_gap,
            "max_nodes": self.max_nodes,
            "verbose": self.verbose,
            "presolve": self.presolve,
            "warm_start": self.warm_start,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolverOptions":
        """Rebuild options from :meth:`as_dict` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


# ----------------------------------------------------------------------
# shared backend glue
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SplitForm:
    """``linprog``-shaped constraint data derived from a :class:`MatrixForm`.

    Rows with a finite upper bound contribute to ``A_ub``, rows with a finite
    lower bound contribute negated, and two-sided-equal rows become ``A_eq``.
    """

    a_ub: Optional[sparse.csr_matrix]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[sparse.csr_matrix]
    b_eq: Optional[np.ndarray]


def split_matrix_form(form: MatrixForm) -> SplitForm:
    """Split two-sided rows into the inequality/equality blocks once."""
    matrix = form.constraint_matrix
    is_sparse = sparse.issparse(matrix)
    lb = form.constraint_lb
    ub = form.constraint_ub
    finite_ub = np.isfinite(ub)
    finite_lb = np.isfinite(lb)
    equality = finite_lb & finite_ub & (np.abs(ub - lb) < 1e-12)
    ineq_ub = finite_ub & ~equality
    ineq_lb = finite_lb & ~equality

    a_ub_parts = []
    b_ub_parts = []
    if np.any(ineq_ub):
        a_ub_parts.append(matrix[ineq_ub])
        b_ub_parts.append(ub[ineq_ub])
    if np.any(ineq_lb):
        a_ub_parts.append(-matrix[ineq_lb])
        b_ub_parts.append(-lb[ineq_lb])

    stack = sparse.vstack if is_sparse else np.vstack
    a_ub = stack(a_ub_parts) if a_ub_parts else None
    b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
    a_eq = matrix[equality] if np.any(equality) else None
    b_eq = lb[equality] if np.any(equality) else None
    return SplitForm(a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq)


@dataclasses.dataclass
class PreparedModel:
    """Everything a backend needs, built once by :func:`prepare_model`.

    ``shortcut`` is a complete :class:`MILPSolution` when preparation already
    decided the model (empty model, presolve-proven infeasibility, or every
    variable fixed); backends must return it directly after stamping their
    name and the preparation time.
    """

    model: Model
    form: MatrixForm
    presolve_result: Optional[PresolveResult]
    active: MatrixForm
    prep_time: float
    shortcut: Optional[MILPSolution] = None

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Presolve statistics (``None`` when presolve was skipped)."""
        return self.presolve_result.stats if self.presolve_result else None

    def restore_values(self, x: np.ndarray) -> Dict[Variable, float]:
        """Map a backend solution on the active form to original variables."""
        if self.presolve_result is not None:
            return self.presolve_result.restore_values(x)
        values = {}
        for var, val in zip(self.form.variables, x):
            values[var] = float(round(val)) if var.is_integral else float(val)
        return values

    def restore_bound(self, internal_bound: float) -> float:
        """Dual bound of the active form -> internal bound of the original."""
        if self.presolve_result is not None:
            return self.presolve_result.restore_objective(internal_bound)
        return float(internal_bound)

    def user_bound(self, internal_bound: float) -> float:
        """Internal (minimize-sense) bound -> user-facing objective sense.

        Re-applies the objective constant the matrix lowering drops, so the
        returned bound is comparable to ``MILPSolution.objective`` and the
        ``gap`` property is meaningful.
        """
        restored = self.restore_bound(internal_bound)
        constant = self.model.objective.constant
        if self.model.is_minimization:
            return constant + restored
        return constant - restored


def prepare_model(
    model: Model,
    run_presolve: bool = True,
    backend: str = "",
) -> PreparedModel:
    """Lower ``model`` and presolve it; shared entry point of both backends."""
    prepared = _prepare_model(model, run_presolve=run_presolve, backend=backend)
    # Tracing stage hook: a no-op unless a collector is active on this thread
    # (see repro.obs.trace.collect_stages).
    record_stage(
        "milp.presolve",
        prepared.prep_time,
        shortcut=prepared.shortcut is not None,
    )
    return prepared


def _prepare_model(
    model: Model,
    run_presolve: bool = True,
    backend: str = "",
) -> PreparedModel:
    start = time.perf_counter()
    form = model.to_matrix_form()

    if form.num_variables == 0:
        elapsed = time.perf_counter() - start
        return PreparedModel(
            model=model,
            form=form,
            presolve_result=None,
            active=form,
            prep_time=elapsed,
            shortcut=MILPSolution(
                status=SolveStatus.OPTIMAL,
                objective=0.0,
                values={},
                bound=0.0,
                solve_time=elapsed,
                backend=backend,
                message="empty model",
            ),
        )

    if not run_presolve:
        return PreparedModel(
            model=model,
            form=form,
            presolve_result=None,
            active=form,
            prep_time=time.perf_counter() - start,
        )

    result = presolve(form)
    elapsed = time.perf_counter() - start
    shortcut: Optional[MILPSolution] = None
    active = form

    if result.status is PresolveStatus.INFEASIBLE:
        shortcut = MILPSolution(
            status=SolveStatus.INFEASIBLE,
            solve_time=elapsed,
            backend=backend,
            message=f"presolve proved infeasibility: {result.message}",
            presolve_stats=result.stats,
        )
    elif result.status is PresolveStatus.SOLVED:
        values = result.fixed_only_values()
        violated = model.check_assignment(values)
        if violated:
            shortcut = MILPSolution(
                status=SolveStatus.INFEASIBLE,
                solve_time=elapsed,
                backend=backend,
                message="presolve fixed point violates remaining constraints",
                presolve_stats=result.stats,
            )
        else:
            objective = model.objective_value(values)
            shortcut = MILPSolution(
                status=SolveStatus.OPTIMAL,
                objective=objective,
                values=values,
                bound=objective,
                solve_time=elapsed,
                backend=backend,
                message="solved by presolve",
                presolve_stats=result.stats,
            )
    else:
        active = result.reduced

    return PreparedModel(
        model=model,
        form=form,
        presolve_result=result,
        active=active,
        prep_time=elapsed,
        shortcut=shortcut,
    )


def remaining_budget(
    time_limit: float | None, start: float, now: float | None = None
) -> Tuple[float | None, bool]:
    """Time left from a budget started at ``start`` (``perf_counter`` space).

    Returns ``(remaining_seconds_or_None, exhausted)``; preparation time is
    thereby charged against the caller's ``time_limit``.
    """
    if time_limit is None:
        return None, False
    now = time.perf_counter() if now is None else now
    remaining = float(time_limit) - (now - start)
    return max(0.0, remaining), remaining <= 0.0


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def solve(model: Model, options: SolverOptions | None = None) -> MILPSolution:
    """Solve ``model`` with the backend selected in ``options``."""
    from repro.milp.branch_bound import solve_with_branch_bound
    from repro.milp.scipy_backend import solve_with_scipy

    options = options or SolverOptions()
    backend = options.backend.lower()
    if backend in ("highs", "scipy", "scipy-highs"):
        return solve_with_scipy(
            model,
            time_limit=options.time_limit,
            mip_gap=options.mip_gap,
            verbose=options.verbose,
            presolve=options.presolve,
        )
    if backend in ("branch-bound", "bb", "branch_and_bound"):
        return solve_with_branch_bound(
            model,
            time_limit=options.time_limit,
            mip_gap=options.mip_gap,
            max_nodes=options.max_nodes,
            verbose=options.verbose,
            presolve=options.presolve,
            warm_start=options.warm_start,
        )
    raise ValueError(f"unknown MILP backend {options.backend!r}")
