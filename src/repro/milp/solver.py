"""Solve facade dispatching between MILP backends."""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

from repro.milp.branch_bound import solve_with_branch_bound
from repro.milp.model import Model
from repro.milp.scipy_backend import solve_with_scipy
from repro.milp.solution import MILPSolution


@dataclasses.dataclass(frozen=True)
class SolverOptions:
    """Options shared by all MILP backends.

    The dataclass is frozen so that option sets are hashable and can key
    caches (see :mod:`repro.service.jobs`); use :meth:`replace` to derive
    variants.

    Attributes
    ----------
    backend:
        ``"highs"`` (scipy/HiGHS branch-and-cut, default) or ``"branch-bound"``
        (pure-Python reference implementation).
    time_limit:
        Wall-clock limit in seconds, or ``None`` for no limit.
    mip_gap:
        Relative optimality gap at which the solver may stop.
    max_nodes:
        Node budget for the branch-and-bound backend.
    verbose:
        Enable backend log output.
    """

    backend: str = "highs"
    time_limit: float | None = None
    mip_gap: float | None = None
    max_nodes: int = 200_000
    verbose: bool = False

    def replace(self, **changes) -> "SolverOptions":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (stable key order)."""
        return {
            "backend": self.backend,
            "time_limit": self.time_limit,
            "mip_gap": self.mip_gap,
            "max_nodes": self.max_nodes,
            "verbose": self.verbose,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolverOptions":
        """Rebuild options from :meth:`as_dict` output."""
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def solve(model: Model, options: SolverOptions | None = None) -> MILPSolution:
    """Solve ``model`` with the backend selected in ``options``."""
    options = options or SolverOptions()
    backend = options.backend.lower()
    if backend in ("highs", "scipy", "scipy-highs"):
        return solve_with_scipy(
            model,
            time_limit=options.time_limit,
            mip_gap=options.mip_gap,
            verbose=options.verbose,
        )
    if backend in ("branch-bound", "bb", "branch_and_bound"):
        return solve_with_branch_bound(
            model,
            time_limit=options.time_limit,
            mip_gap=options.mip_gap,
            max_nodes=options.max_nodes,
            verbose=options.verbose,
        )
    raise ValueError(f"unknown MILP backend {options.backend!r}")
