"""Linear constraints.

A constraint is stored in the normalized form ``expr (<=|>=|==) 0`` where
``expr`` is an affine :class:`~repro.milp.expr.LinExpr`.  Comparison operators
on expressions/variables produce :class:`Constraint` objects directly, so the
model-building code reads like the paper's inequalities.
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.milp.expr import LinExpr, Variable


class Sense(enum.Enum):
    """Direction of a linear constraint (after moving everything to the LHS)."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``lhs sense 0``.

    Parameters
    ----------
    lhs:
        Affine expression already normalized so that the right-hand side is 0.
    sense:
        Constraint direction.
    name:
        Optional name, normally assigned when the constraint is added to a
        :class:`~repro.milp.model.Model`.
    """

    __slots__ = ("lhs", "sense", "name")

    def __init__(self, lhs: LinExpr, sense: Sense, name: str | None = None) -> None:
        self.lhs = lhs
        self.sense = sense
        self.name = name

    # ------------------------------------------------------------------
    @property
    def rhs(self) -> float:
        """Right-hand side when written as ``terms sense rhs``."""
        return -self.lhs.constant

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` on the left-hand side."""
        return self.lhs.coefficient(var)

    def violation(self, values: Mapping[Variable, float]) -> float:
        """Amount by which the constraint is violated under an assignment.

        Returns 0.0 when satisfied; positive values measure the violation in
        the constraint's own units.
        """
        value = self.lhs.evaluate(values)
        if self.sense is Sense.LE:
            return max(0.0, value)
        if self.sense is Sense.GE:
            return max(0.0, -value)
        return abs(value)

    def is_satisfied(self, values: Mapping[Variable, float], tol: float = 1e-6) -> bool:
        """Whether the assignment satisfies the constraint within ``tol``."""
        return self.violation(values) <= tol

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.lhs!r} {self.sense.value} 0{label})"
