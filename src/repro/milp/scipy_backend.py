"""Backend that compiles a :class:`~repro.milp.model.Model` to HiGHS.

`scipy.optimize.milp` wraps the HiGHS branch-and-cut solver, which is an exact
MILP solver; the paper's formulation therefore keeps its feasibility and
optimality semantics when solved through this backend.

The model is lowered and presolved through the shared
:func:`repro.milp.solver.prepare_model` glue, so HiGHS sees the reduced
problem and the returned solution is mapped back to the original variables.
"""

from __future__ import annotations

import dataclasses
import time

from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.model import Model
from repro.milp.solution import MILPSolution, SolveStatus
from repro.milp.solver import PreparedModel, prepare_model, remaining_budget
from repro.obs.trace import stage_timer


def solve_with_scipy(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    verbose: bool = False,
    presolve: bool = True,
    prepared: PreparedModel | None = None,
) -> MILPSolution:
    """Solve ``model`` using ``scipy.optimize.milp`` (HiGHS).

    Parameters
    ----------
    model:
        The model to solve.
    time_limit:
        Wall-clock limit in seconds (``None`` = no limit).  The budget covers
        matrix lowering and presolve as well as HiGHS time.
    mip_gap:
        Relative MIP gap at which HiGHS may stop early.
    verbose:
        Forwarded to HiGHS output.
    presolve:
        Run the exact presolve reductions before handing off to HiGHS.
    prepared:
        Pre-built :class:`~repro.milp.solver.PreparedModel` (the facade
        passes one to avoid lowering twice); built here when omitted.
    """
    start = time.perf_counter()
    if prepared is None:
        prepared = prepare_model(model, run_presolve=presolve, backend="scipy-highs")

    if prepared.shortcut is not None:
        # copy before stamping: a PreparedModel may be reused across backends
        return dataclasses.replace(
            prepared.shortcut,
            backend="scipy-highs",
            solve_time=time.perf_counter() - start,
        )

    form = prepared.active
    budget, exhausted = remaining_budget(time_limit, start)
    if exhausted:
        return MILPSolution(
            status=SolveStatus.TIME_LIMIT,
            solve_time=time.perf_counter() - start,
            backend="scipy-highs",
            message="time limit exhausted during matrix build/presolve",
            presolve_stats=prepared.stats,
        )

    options: dict = {"disp": bool(verbose)}
    if budget is not None:
        options["time_limit"] = budget
    if mip_gap is not None:
        options["mip_rel_gap"] = float(mip_gap)

    constraints = None
    if form.num_constraints > 0:
        constraints = LinearConstraint(
            form.constraint_matrix, form.constraint_lb, form.constraint_ub
        )

    bounds = Bounds(form.var_lb, form.var_ub)

    with stage_timer("milp.search", backend="scipy-highs"):
        result = milp(
            c=form.objective,
            constraints=constraints,
            integrality=form.integrality,
            bounds=bounds,
            options=options,
        )
    elapsed = time.perf_counter() - start

    status = _map_status(result)
    values = {}
    objective = float("nan")
    if result.x is not None:
        values = prepared.restore_values(result.x)
        # Evaluate through the user-facing objective so the presolve offset
        # and any constants the lowering dropped are reflected.
        objective = model.objective_value(values)

    bound = float("nan")
    mip_dual_bound = getattr(result, "mip_dual_bound", None)
    if mip_dual_bound is not None:
        bound = prepared.user_bound(float(mip_dual_bound))
    elif status is SolveStatus.OPTIMAL:
        bound = objective

    node_count = int(getattr(result, "mip_node_count", 0) or 0)
    return MILPSolution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        solve_time=elapsed,
        node_count=node_count,
        backend="scipy-highs",
        message=str(getattr(result, "message", "")),
        presolve_stats=prepared.stats,
    )


def _map_status(result) -> SolveStatus:
    # scipy.optimize.milp status codes:
    # 0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
    status = getattr(result, "status", 4)
    if status == 0:
        return SolveStatus.OPTIMAL
    if status == 1:
        return SolveStatus.FEASIBLE if result.x is not None else SolveStatus.TIME_LIMIT
    if status == 2:
        return SolveStatus.INFEASIBLE
    if status == 3:
        return SolveStatus.UNBOUNDED
    if result.x is not None:
        return SolveStatus.FEASIBLE
    return SolveStatus.ERROR
