"""Backend that compiles a :class:`~repro.milp.model.Model` to HiGHS.

`scipy.optimize.milp` wraps the HiGHS branch-and-cut solver, which is an exact
MILP solver; the paper's formulation therefore keeps its feasibility and
optimality semantics when solved through this backend.
"""

from __future__ import annotations

import time

from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.model import Model
from repro.milp.solution import MILPSolution, SolveStatus


def solve_with_scipy(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    verbose: bool = False,
) -> MILPSolution:
    """Solve ``model`` using ``scipy.optimize.milp`` (HiGHS).

    Parameters
    ----------
    model:
        The model to solve.
    time_limit:
        Wall-clock limit in seconds passed to HiGHS (``None`` = no limit).
    mip_gap:
        Relative MIP gap at which HiGHS may stop early.
    verbose:
        Forwarded to HiGHS output.
    """
    form = model.to_matrix_form()
    start = time.perf_counter()

    options: dict = {"disp": bool(verbose)}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap is not None:
        options["mip_rel_gap"] = float(mip_gap)

    constraints = None
    if form.constraint_matrix.shape[0] > 0:
        constraints = LinearConstraint(
            form.constraint_matrix, form.constraint_lb, form.constraint_ub
        )

    bounds = Bounds(form.var_lb, form.var_ub)

    if len(form.variables) == 0:
        return MILPSolution(
            status=SolveStatus.OPTIMAL,
            objective=0.0,
            values={},
            bound=0.0,
            solve_time=0.0,
            backend="scipy-highs",
            message="empty model",
        )

    result = milp(
        c=form.objective,
        constraints=constraints,
        integrality=form.integrality,
        bounds=bounds,
        options=options,
    )
    elapsed = time.perf_counter() - start

    status = _map_status(result)
    values = {}
    objective = float("nan")
    if result.x is not None:
        values = {
            var: _clean_value(var, x)
            for var, x in zip(form.variables, result.x)
        }
        if not model.is_minimization:
            objective = -float(result.fun)
        else:
            objective = float(result.fun)
        # Re-evaluate through the user-facing objective so constants that the
        # lowering dropped (none today, but cheap insurance) are reflected.
        objective = model.objective_value(values)

    bound = float("nan")
    mip_dual_bound = getattr(result, "mip_dual_bound", None)
    if mip_dual_bound is not None:
        bound = float(mip_dual_bound) if model.is_minimization else -float(mip_dual_bound)
    elif status is SolveStatus.OPTIMAL:
        bound = objective

    node_count = int(getattr(result, "mip_node_count", 0) or 0)
    return MILPSolution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        solve_time=elapsed,
        node_count=node_count,
        backend="scipy-highs",
        message=str(getattr(result, "message", "")),
    )


def _map_status(result) -> SolveStatus:
    # scipy.optimize.milp status codes:
    # 0 optimal, 1 iteration/time limit, 2 infeasible, 3 unbounded, 4 other
    status = getattr(result, "status", 4)
    if status == 0:
        return SolveStatus.OPTIMAL
    if status == 1:
        return SolveStatus.FEASIBLE if result.x is not None else SolveStatus.TIME_LIMIT
    if status == 2:
        return SolveStatus.INFEASIBLE
    if status == 3:
        return SolveStatus.UNBOUNDED
    if result.x is not None:
        return SolveStatus.FEASIBLE
    return SolveStatus.ERROR


def _clean_value(var, x: float) -> float:
    """Round integral variables to avoid 0.9999999 artifacts downstream."""
    if var.is_integral:
        return float(round(float(x)))
    return float(x)
