"""Bitstream-relocation support for the floorplanner (the paper's contribution).

* :mod:`~repro.relocation.compatibility` — the geometric predicates behind
  Definitions .1 and .2 (area compatibility, free-compatibility) plus an
  enumerator of compatible positions;
* :mod:`~repro.relocation.spec` — the designer-facing
  :class:`~repro.relocation.spec.RelocationSpec` (how many free-compatible
  areas per region, hard constraint vs soft metric, weights);
* :mod:`~repro.relocation.constraints` — the MILP extension of Section IV
  (offset variables, eqs. 4–10);
* :mod:`~repro.relocation.metric` — the soft-constraint variant of Section V
  (violation binaries, eqs. 11–13, the RLcost objective term);
* :mod:`~repro.relocation.analysis` — the Section VI feasibility analysis and
  a geometric enumerator of free-compatible areas for already-solved
  floorplans.
"""

from repro.relocation.compatibility import (
    areas_compatible,
    compatible_column_offsets,
    enumerate_free_compatible_areas,
    is_free_compatible,
)
from repro.relocation.spec import RelocationRequest, RelocationSpec
from repro.relocation.constraints import RelocationVariables, apply_relocation_constraints
from repro.relocation.metric import relocation_cost, relocation_summary
from repro.relocation.analysis import (
    FeasibilityResult,
    feasibility_analysis,
    count_reachable_copies,
)

__all__ = [
    "areas_compatible",
    "compatible_column_offsets",
    "enumerate_free_compatible_areas",
    "is_free_compatible",
    "RelocationRequest",
    "RelocationSpec",
    "RelocationVariables",
    "apply_relocation_constraints",
    "relocation_cost",
    "relocation_summary",
    "FeasibilityResult",
    "feasibility_analysis",
    "count_reachable_copies",
]
