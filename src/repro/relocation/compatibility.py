"""Area compatibility predicates (Definitions .1 and .2).

Two areas are *compatible* when they have the same shape, size and relative
positioning of tiles of the same type; an area is *free-compatible* with
respect to a region when it is compatible and does not overlap any other
placed area or forbidden area.

On a columnar-partitioned device the tile type of a cell depends only on its
column, so compatibility of two equally-sized rectangles reduces to comparing
the column-type sequences of their column ranges — which is what the
functions below exploit (and what makes exhaustive enumeration cheap).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.device.partition import ColumnarPartition
from repro.floorplan.geometry import Rect


def areas_compatible(partition: ColumnarPartition, a: Rect, b: Rect) -> bool:
    """Definition .2's compatibility core: same shape, size and tile layout.

    Both rectangles must lie inside the device; the relative positioning of
    tile types is compared cell by cell (via the per-column effective type of
    the columnar partition).
    """
    if a.width != b.width or a.height != b.height:
        return False
    if not a.within(partition.width, partition.height):
        return False
    if not b.within(partition.width, partition.height):
        return False
    for offset in range(a.width):
        if partition.column_type(a.col + offset) != partition.column_type(b.col + offset):
            return False
    return True


def _rect_touches_forbidden(partition: ColumnarPartition, rect: Rect) -> bool:
    for area in partition.forbidden_areas:
        if rect.col > area.col_end or rect.col_end < area.col_start:
            continue
        if any(rect.row <= row <= rect.row_end for row in area.rows):
            return True
    return False


def is_free_compatible(
    partition: ColumnarPartition,
    region_rect: Rect,
    candidate: Rect,
    occupied: Iterable[Rect] = (),
) -> bool:
    """Definition .2: candidate is compatible with the region and free.

    ``occupied`` lists every rectangle the candidate must not overlap: the
    placements of all reconfigurable regions (including the source region)
    and any already-reserved free-compatible area.
    """
    if not areas_compatible(partition, region_rect, candidate):
        return False
    if _rect_touches_forbidden(partition, candidate):
        return False
    for rect in occupied:
        if candidate.overlaps(rect):
            return False
    return True


def compatible_column_offsets(
    partition: ColumnarPartition, rect: Rect
) -> List[int]:
    """Leftmost columns at which a compatible copy of ``rect`` could start.

    Because tile types are constant along a column, a copy placed with its
    left edge at column ``c`` is compatible iff the column-type sequence of
    ``c .. c+width-1`` equals that of the original rectangle; the row position
    is unconstrained by compatibility (only by overlap/forbidden checks).
    The original column is included in the result.
    """
    if not rect.within(partition.width, partition.height):
        raise ValueError(f"rectangle {rect} lies outside the device")
    signature = [partition.column_type(rect.col + off) for off in range(rect.width)]
    offsets: List[int] = []
    for col in range(0, partition.width - rect.width + 1):
        if all(
            partition.column_type(col + off) == signature[off]
            for off in range(rect.width)
        ):
            offsets.append(col)
    return offsets


def enumerate_free_compatible_areas(
    partition: ColumnarPartition,
    region_rect: Rect,
    occupied: Sequence[Rect] = (),
    include_original: bool = False,
    limit: int | None = None,
) -> List[Rect]:
    """Enumerate every free-compatible area for a placed region.

    Parameters
    ----------
    partition:
        Columnar partition of the device.
    region_rect:
        Rectangle currently assigned to the region.
    occupied:
        Rectangles that candidates must not overlap (typically all current
        placements; the region's own rectangle is handled automatically).
    include_original:
        Whether the region's own position may be reported (it trivially
        satisfies compatibility); off by default because a relocation target
        must differ from the source.
    limit:
        Stop after this many candidates (``None`` = enumerate all).

    Returns
    -------
    list of Rect
        Candidates ordered left-to-right then bottom-to-top.  Note that the
        returned candidates may overlap *each other*; greedy selection of a
        mutually disjoint subset is done by the callers
        (:class:`repro.floorplan.ho.HOSeeder`, the run-time manager).
    """
    blockers = list(occupied)
    if not include_original and region_rect not in blockers:
        blockers.append(region_rect)
    candidates: List[Rect] = []
    for col in compatible_column_offsets(partition, region_rect):
        for row in range(0, partition.height - region_rect.height + 1):
            candidate = Rect(col, row, region_rect.width, region_rect.height)
            if not include_original and candidate == region_rect:
                continue
            if is_free_compatible(partition, region_rect, candidate, blockers):
                candidates.append(candidate)
                if limit is not None and len(candidates) >= limit:
                    return candidates
    return candidates


def select_disjoint_areas(candidates: Sequence[Rect], count: int) -> List[Rect]:
    """Greedily pick up to ``count`` mutually non-overlapping candidates."""
    chosen: List[Rect] = []
    for candidate in candidates:
        if len(chosen) >= count:
            break
        if all(not candidate.overlaps(existing) for existing in chosen):
            chosen.append(candidate)
    return chosen
