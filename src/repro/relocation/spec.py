"""Designer-facing relocation requirements.

Section II.A of the paper distinguishes two ways of asking the floorplanner
for free-compatible areas:

* **relocation as a constraint** — the solution is feasible only if every
  requested area is found (Section IV);
* **relocation as a metric** — requested areas are desirable but optional;
  each missed area costs ``cw[c]`` in the objective (Section V).

Both modes, and their combination, are expressed with a
:class:`RelocationSpec`, which expands into the
:class:`~repro.floorplan.milp_builder.AreaSpec` entries handed to the MILP
builder.  The free-compatible areas follow the paper's naming convention:
the region name followed by a copy number (``"Signal Decoder 2"``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping

from repro.device.resources import ResourceVector
from repro.floorplan.milp_builder import AreaSpec
from repro.floorplan.problem import FloorplanProblem


@dataclasses.dataclass(frozen=True)
class RelocationRequest:
    """Free-compatible areas requested for one region.

    Attributes
    ----------
    region:
        Name of the reconfigurable region.
    copies:
        Number of free-compatible areas to reserve.
    hard:
        ``True`` = relocation as a constraint, ``False`` = as a metric.
    weight:
        ``cw[c]`` applied to every copy when ``hard`` is false.
    """

    region: str
    copies: int
    hard: bool = True
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.copies <= 0:
            raise ValueError("a relocation request needs at least one copy")
        if self.weight <= 0:
            raise ValueError("relocation weight must be positive")


class RelocationSpec:
    """A collection of per-region relocation requests."""

    def __init__(self, requests: Iterable[RelocationRequest] = ()) -> None:
        self._requests: Dict[str, RelocationRequest] = {}
        for request in requests:
            if request.region in self._requests:
                raise ValueError(f"duplicate relocation request for {request.region!r}")
            self._requests[request.region] = request

    # ------------------------------------------------------------------
    @classmethod
    def as_constraint(cls, copies_by_region: Mapping[str, int]) -> "RelocationSpec":
        """Relocation as a constraint: all requested areas must be found."""
        return cls(
            RelocationRequest(region=name, copies=count, hard=True)
            for name, count in copies_by_region.items()
        )

    @classmethod
    def as_metric(
        cls,
        copies_by_region: Mapping[str, int],
        weights: Mapping[str, float] | None = None,
    ) -> "RelocationSpec":
        """Relocation as a metric: missed areas are penalized, not forbidden."""
        weights = weights or {}
        return cls(
            RelocationRequest(
                region=name, copies=count, hard=False, weight=weights.get(name, 1.0)
            )
            for name, count in copies_by_region.items()
        )

    @classmethod
    def empty(cls) -> "RelocationSpec":
        """A spec requesting no free-compatible areas."""
        return cls()

    # ------------------------------------------------------------------
    @property
    def requests(self) -> List[RelocationRequest]:
        """Requests in insertion order."""
        return list(self._requests.values())

    @property
    def regions(self) -> List[str]:
        """Regions with at least one requested copy."""
        return list(self._requests.keys())

    @property
    def total_copies(self) -> int:
        """Total number of requested free-compatible areas."""
        return sum(request.copies for request in self._requests.values())

    @property
    def has_hard_requests(self) -> bool:
        """Whether any request is a hard constraint."""
        return any(request.hard for request in self._requests.values())

    def request_for(self, region: str) -> RelocationRequest:
        """The request attached to a region."""
        return self._requests[region]

    def __contains__(self, region: str) -> bool:
        return region in self._requests

    def __len__(self) -> int:
        return len(self._requests)

    def __bool__(self) -> bool:
        return bool(self._requests)

    # ------------------------------------------------------------------
    def area_name(self, region: str, copy_index: int) -> str:
        """Name of the ``copy_index``-th free-compatible area of a region.

        Follows the paper's convention used in Figures 4-5 (``"Signal
        Decoder 2"`` is the second reserved area of the Signal Decoder).
        """
        return f"{region} {copy_index}"

    def build_area_specs(self, problem: FloorplanProblem) -> List[AreaSpec]:
        """Expand the spec into the free-compatible-area :class:`AreaSpec`\\ s."""
        specs: List[AreaSpec] = []
        for request in self._requests.values():
            region = problem.region_by_name(request.region)  # validates the name
            for copy_index in range(1, request.copies + 1):
                specs.append(
                    AreaSpec(
                        name=self.area_name(region.name, copy_index),
                        requirements=ResourceVector.zero(),
                        compatible_with=region.name,
                        soft=not request.hard,
                        weight=request.weight,
                    )
                )
        return specs

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{req.region}: {req.copies}{'' if req.hard else ' (soft)'}"
            for req in self._requests.values()
        )
        return f"RelocationSpec({inner})"
