"""MILP extension for bitstream relocation (Sections IV and V).

Given a base floorplanning model (:class:`~repro.floorplan.milp_builder.FloorplanMILP`)
that already contains the free-compatible areas as extra areas of set ``N``,
this module adds:

* the portion-offset variables ``o[n,p]`` with their semantics constraints
  (eqs. 4 and 5);
* the compatibility constraints between every free-compatible area ``c`` and
  the region ``n`` it must be compatible with:

  - equal heights (eq. 6),
  - equal number of covered portions (eq. 7),
  - matching tile types at corresponding relative positions (eq. 10, the
    tightened form of eq. 8),
  - equal tile counts in corresponding covered portions (eq. 9).

For *soft* areas (relocation as a metric, Section V) every constraint that
could make the model infeasible receives the violation binary ``v[c]`` as an
extra big-M slack, turning eqs. 9/10 into eqs. 11/12.  The non-overlap
constraints were already relaxed with ``v[c]`` by the base builder.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.floorplan.milp_builder import FloorplanMILP
from repro.milp import LinExpr, Model, Variable, quicksum


@dataclasses.dataclass
class RelocationVariables:
    """Handles to the variables added by :func:`apply_relocation_constraints`."""

    offset: Dict[str, List[Variable]]
    pairs: List[Tuple[str, str]]
    num_constraints_added: int

    def offset_vars(self, area: str) -> List[Variable]:
        """Offset variables ``o[area, p]`` in portion order."""
        return self.offset[area]


def apply_relocation_constraints(milp: FloorplanMILP) -> RelocationVariables:
    """Attach the Section IV/V constraints to a built floorplanning model.

    The free-compatible areas and their ``compatible_with`` / ``soft``
    attributes are read from ``milp.areas``; regions that are not referenced
    by any free-compatible area get no offset variables (they do not need
    them).
    """
    model = milp.model
    partition = milp.partition
    num_portions = partition.num_portions
    type_ids = partition.portion_type_ids()
    height = partition.height
    max_w = partition.width
    big_m_tiles = float(max_w * height)

    pairs: List[Tuple[str, str]] = []  # (free area, region)
    for area in milp.areas:
        if area.is_free_area:
            if area.compatible_with is None:
                continue
            pairs.append((area.name, area.compatible_with))

    if not pairs:
        return RelocationVariables(offset={}, pairs=[], num_constraints_added=0)

    involved = {name for pair in pairs for name in pair}
    constraints_before = len(model.constraints)

    # ------------------------------------------------------------------
    # offset variables o[n,p]  (eqs. 4 and 5)
    # ------------------------------------------------------------------
    offset: Dict[str, List[Variable]] = {}
    for name in sorted(involved):
        key = _sanitize(name)
        k_vars = milp.k[name]
        o_vars = [
            model.add_continuous(f"o[{key},{p}]", lb=0.0, ub=1.0)
            for p in range(num_portions)
        ]
        # eq. 4: exactly one first-covered portion
        model.add(quicksum(o_vars) == 1, name=f"offset_unique[{key}]")
        # eq. 5: the offset follows from the covered-portion indicators
        model.add(o_vars[0] == k_vars[0], name=f"offset_first[{key}]")
        for p in range(1, num_portions):
            model.add(
                o_vars[p] >= k_vars[p] - k_vars[p - 1],
                name=f"offset_step[{key},{p}]",
            )
        offset[name] = o_vars

    # ------------------------------------------------------------------
    # per-pair compatibility constraints
    # ------------------------------------------------------------------
    for area_name, region_name in pairs:
        if region_name not in milp.h_expr:
            raise KeyError(
                f"free-compatible area {area_name!r} references unknown region {region_name!r}"
            )
        area_spec = milp.area_by_name(area_name)
        soft = area_spec.soft
        violation = milp.violation.get(area_name) if soft else None
        akey = _sanitize(area_name)

        # eq. 6: equal heights
        _add_soft_equality(
            model,
            milp.h_expr[area_name],
            milp.h_expr[region_name],
            float(height),
            violation,
            name=f"rel_height[{akey}]",
        )

        # eq. 7: equal number of covered portions
        _add_soft_equality(
            model,
            quicksum(milp.k[area_name]),
            quicksum(milp.k[region_name]),
            float(num_portions),
            violation,
            name=f"rel_portions[{akey}]",
        )

        o_c = offset[area_name]
        o_n = offset[region_name]
        k_n = milp.k[region_name]
        tiles_c = milp.tiles_in_portion[area_name]
        tiles_n = milp.tiles_in_portion[region_name]

        for pc in range(num_portions):
            for pn in range(num_portions):
                for i in range(-num_portions + 1, num_portions):
                    ci = pc + i
                    ni = pn + i
                    if not (0 <= ci < num_portions and 0 <= ni < num_portions):
                        continue
                    activation = 3 - o_c[pc] - o_n[pn] - k_n[ni]
                    if violation is not None:
                        activation = activation + violation

                    # eq. 10 (eq. 12 when soft): matching tile types
                    if type_ids[ci] != type_ids[ni]:
                        bound = 2 if violation is None else 2 + violation
                        model.add(
                            o_c[pc] + o_n[pn] + k_n[ni] <= bound,
                            name=f"rel_type[{akey},{pc},{pn},{i}]",
                        )
                        # a type mismatch forbids this alignment entirely, the
                        # tile-count constraints below would be vacuous
                        continue

                    # eq. 9 (eq. 11 when soft): equal tile counts in the
                    # corresponding covered portions
                    model.add(
                        tiles_c[ci]
                        <= tiles_n[ni] + big_m_tiles * activation,
                        name=f"rel_tiles_le[{akey},{pc},{pn},{i}]",
                    )
                    model.add(
                        tiles_c[ci]
                        >= tiles_n[ni] - big_m_tiles * activation,
                        name=f"rel_tiles_ge[{akey},{pc},{pn},{i}]",
                    )

    return RelocationVariables(
        offset=offset,
        pairs=pairs,
        num_constraints_added=len(model.constraints) - constraints_before,
    )


def _add_soft_equality(
    model: Model,
    left: LinExpr,
    right: LinExpr,
    big_m: float,
    violation: Variable | None,
    name: str,
) -> None:
    """Add ``left == right``, relaxed by ``violation`` when provided."""
    if violation is None:
        model.add(left == right, name=name)
    else:
        model.add(left <= right + big_m * violation, name=f"{name}:le")
        model.add(left >= right - big_m * violation, name=f"{name}:ge")


def _sanitize(name: str) -> str:
    return name.replace(" ", "_").replace(",", "_")
