"""Relocation as a metric (Section V): post-solve accounting.

The MILP-side machinery of the soft mode (violation binaries ``v[c]``, the
relaxed constraints of eqs. 11–12 and the ``RLcost`` objective term of
eqs. 13–15) lives in :mod:`repro.floorplan.milp_builder` and
:mod:`repro.relocation.constraints`.  This module provides the matching
*solution-side* view: given a solved floorplan and the spec that produced it,
report which free-compatible areas were obtained and what the relocation cost
of the solution is.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.floorplan.placement import Floorplan
from repro.relocation.spec import RelocationSpec


@dataclasses.dataclass(frozen=True)
class RegionRelocationSummary:
    """Per-region relocation outcome."""

    region: str
    requested: int
    satisfied: int
    hard: bool
    weight: float

    @property
    def missed(self) -> int:
        """Requested areas that were not obtained."""
        return self.requested - self.satisfied

    @property
    def cost(self) -> float:
        """Contribution to ``RLcost`` (eq. 13)."""
        return self.weight * self.missed


def relocation_summary(
    floorplan: Floorplan, spec: RelocationSpec
) -> List[RegionRelocationSummary]:
    """Summarize the relocation outcome of a solved floorplan."""
    summaries: List[RegionRelocationSummary] = []
    for request in spec.requests:
        areas = floorplan.free_areas_for(request.region)
        satisfied = sum(1 for area in areas if area.satisfied)
        summaries.append(
            RegionRelocationSummary(
                region=request.region,
                requested=request.copies,
                satisfied=satisfied,
                hard=request.hard,
                weight=request.weight,
            )
        )
    return summaries


def relocation_cost(floorplan: Floorplan, spec: RelocationSpec) -> float:
    """``RLcost`` of eq. 13 evaluated on a solution."""
    return sum(summary.cost for summary in relocation_summary(floorplan, spec))


def relocation_cost_normalized(floorplan: Floorplan, spec: RelocationSpec) -> float:
    """``RLcost / RLmax`` — the term that enters the objective of eq. 14."""
    rl_max = sum(req.weight * req.copies for req in spec.requests)
    if rl_max <= 0:
        return 0.0
    return relocation_cost(floorplan, spec) / rl_max


def satisfied_areas_by_region(floorplan: Floorplan) -> Dict[str, int]:
    """Count of satisfied free-compatible areas keyed by region name."""
    counts: Dict[str, int] = {}
    for area in floorplan.free_areas.values():
        if area.satisfied and area.compatible_with is not None:
            counts[area.compatible_with] = counts.get(area.compatible_with, 0) + 1
    return counts
