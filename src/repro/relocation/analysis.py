"""Relocation feasibility analysis (the first experiment of Section VI).

The paper begins its evaluation with a *feasibility test*: for every
reconfigurable region, ask the floorplanner whether a placement exists in
which that single region gets one free-compatible area (while all other
regions are still placed).  For the SDR design the answer is negative for the
matched filter and the video decoder and positive for the three remaining
regions, which the paper then calls the *relocatable regions*.

:func:`feasibility_analysis` reproduces that test; :func:`count_reachable_copies`
is a purely geometric helper used by the HO seeder and the run-time manager to
enumerate relocation targets of an already-solved floorplan.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.floorplan.placement import Floorplan
from repro.floorplan.problem import FloorplanProblem
from repro.milp import SolverOptions
from repro.relocation.compatibility import (
    enumerate_free_compatible_areas,
    select_disjoint_areas,
)
from repro.relocation.spec import RelocationSpec


@dataclasses.dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of the feasibility test for one region."""

    region: str
    feasible: bool
    status: str
    solve_time: float
    floorplan: Optional[Floorplan] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "feasible" if self.feasible else "infeasible"
        return f"{self.region}: {verdict} ({self.status}, {self.solve_time:.1f}s)"


def feasibility_analysis(
    problem: FloorplanProblem,
    regions: Sequence[str] | None = None,
    options: SolverOptions | None = None,
    mode: str = "O",
) -> List[FeasibilityResult]:
    """Run the Section VI feasibility test.

    For each region (default: all of them) a floorplan is solved that requests
    exactly one *hard* free-compatible area for that region and none for the
    others.  A region is *relocatable* when that problem is feasible.

    Parameters
    ----------
    problem:
        The floorplanning instance.
    regions:
        Region names to test; defaults to every region of the problem.
    options:
        MILP solver options (a time limit is strongly recommended).
    mode:
        Floorplanner mode, ``"O"`` or ``"HO"``.
    """
    from repro.floorplan.solver import FloorplanSolver

    names = list(regions) if regions is not None else list(problem.region_names)
    results: List[FeasibilityResult] = []
    for name in names:
        spec = RelocationSpec.as_constraint({name: 1})
        solver = FloorplanSolver(problem, relocation=spec, mode=mode, options=options)
        report = solver.solve()
        feasible = report.floorplan.is_complete and report.solution.status.has_solution
        results.append(
            FeasibilityResult(
                region=name,
                feasible=bool(feasible),
                status=report.solution.status.value,
                solve_time=report.solution.solve_time,
                floorplan=report.floorplan if feasible else None,
            )
        )
    return results


def relocatable_regions(results: Sequence[FeasibilityResult]) -> List[str]:
    """Names of the regions found relocatable by a feasibility analysis."""
    return [result.region for result in results if result.feasible]


def count_reachable_copies(
    floorplan: Floorplan, region_name: str, max_copies: int | None = None
) -> int:
    """How many mutually disjoint free-compatible areas exist geometrically.

    Unlike the MILP (which co-optimizes placements and free areas), this works
    on a *fixed* floorplan: the region placements stay where they are and only
    the free space is searched.  It is therefore a lower bound on what the
    relocation-aware floorplanner can achieve, and is the quantity available
    to a run-time manager after the design has been implemented.
    """
    placement = floorplan.placements[region_name]
    occupied = [p.rect for p in floorplan.all_placements()]
    candidates = enumerate_free_compatible_areas(
        floorplan.problem.partition, placement.rect, occupied
    )
    limit = max_copies if max_copies is not None else len(candidates)
    return len(select_disjoint_areas(candidates, limit))


def reachable_copies_by_region(
    floorplan: Floorplan, max_copies: int | None = None
) -> Dict[str, int]:
    """:func:`count_reachable_copies` for every placed region."""
    return {
        name: count_reachable_copies(floorplan, name, max_copies)
        for name in floorplan.placements
    }
