"""The software-defined-radio (SDR) case study of Section VI.

The design (taken from Vipin & Fahmy, reference [8]) consists of five modules
connected in sequence by a 64-bit bus: matched filter, carrier recovery,
demodulator, signal decoder and video decoder.  Each module has several
mutually exclusive modes, all mapped to one reconfigurable region per module,
so the floorplanning instance has five regions whose resource requirements
(in tiles) are those of Table I:

=====================  =========  ==========  =========  ========
Region                 CLB tiles  BRAM tiles  DSP tiles  # Frames
=====================  =========  ==========  =========  ========
Matched Filter            25          0           5        1040
Carrier Recovery           7          0           1         280
Demodulator                5          2           0         240
Signal Decoder            12          1           0         462
Video Decoder             55          2           5        2180
Total                    104          5          11        4202
=====================  =========  ==========  =========  ========

The frame column is derived from the per-tile frame counts of the Virtex-5
(36/30/28 for CLB/BRAM/DSP) and is reproduced exactly by
``FloorplanProblem.required_frames``; ``tests/workloads/test_sdr.py`` checks
every row against the table above.
"""

from __future__ import annotations

from typing import Dict, List

from repro.device.catalog import virtex5_fx70t_like
from repro.device.grid import FPGADevice
from repro.device.resources import ResourceVector
from repro.floorplan.problem import Connection, FloorplanProblem, Region
from repro.relocation.spec import RelocationSpec

#: Region names in signal-chain order (also the bus connection order).
SDR_REGION_NAMES: List[str] = [
    "Matched Filter",
    "Carrier Recovery",
    "Demodulator",
    "Signal Decoder",
    "Video Decoder",
]

#: Table I resource requirements, in tiles per type.
SDR_REQUIREMENTS: Dict[str, Dict[str, int]] = {
    "Matched Filter": {"CLB": 25, "BRAM": 0, "DSP": 5},
    "Carrier Recovery": {"CLB": 7, "BRAM": 0, "DSP": 1},
    "Demodulator": {"CLB": 5, "BRAM": 2, "DSP": 0},
    "Signal Decoder": {"CLB": 12, "BRAM": 1, "DSP": 0},
    "Video Decoder": {"CLB": 55, "BRAM": 2, "DSP": 5},
}

#: Frame counts reported in the last column of Table I.
SDR_FRAMES: Dict[str, int] = {
    "Matched Filter": 1040,
    "Carrier Recovery": 280,
    "Demodulator": 240,
    "Signal Decoder": 462,
    "Video Decoder": 2180,
}

#: Width of the bus connecting consecutive modules (wirelength weight).
SDR_BUS_WIDTH: float = 64.0

#: Regions found relocatable by the paper's feasibility analysis.
SDR_RELOCATABLE: List[str] = ["Carrier Recovery", "Demodulator", "Signal Decoder"]


def sdr_regions() -> List[Region]:
    """The five SDR regions with the Table I requirements."""
    return [
        Region(name=name, requirements=ResourceVector(SDR_REQUIREMENTS[name]))
        for name in SDR_REGION_NAMES
    ]


def sdr_connections() -> List[Connection]:
    """The 64-bit sequential bus between consecutive modules."""
    return [
        Connection(source=a, target=b, weight=SDR_BUS_WIDTH)
        for a, b in zip(SDR_REGION_NAMES, SDR_REGION_NAMES[1:])
    ]


def sdr_problem(device: FPGADevice | None = None) -> FloorplanProblem:
    """The complete SDR floorplanning instance on the Virtex-5-like device."""
    device = device or virtex5_fx70t_like()
    return FloorplanProblem(
        device=device,
        regions=sdr_regions(),
        connections=sdr_connections(),
        name="SDR",
    )


def sdr_relocatable_regions() -> List[str]:
    """The relocatable regions used to build the SDR2/SDR3 instances."""
    return list(SDR_RELOCATABLE)


def sdr2_spec(hard: bool = True) -> RelocationSpec:
    """SDR2: two free-compatible areas for every relocatable region."""
    return _spec(copies=2, hard=hard)


def sdr3_spec(hard: bool = True) -> RelocationSpec:
    """SDR3: three free-compatible areas for every relocatable region."""
    return _spec(copies=3, hard=hard)


def _spec(copies: int, hard: bool) -> RelocationSpec:
    mapping = {name: copies for name in SDR_RELOCATABLE}
    if hard:
        return RelocationSpec.as_constraint(mapping)
    return RelocationSpec.as_metric(mapping)


def mini_sdr_problem(device: FPGADevice | None = None) -> FloorplanProblem:
    """A scaled-down SDR instance that solves in seconds (tests, examples).

    The five modules keep their relative proportions but each requirement is
    divided by roughly four, and the default device is a small synthetic grid;
    this keeps the MILP small enough for the unit tests and the quickstart
    example while exercising the exact same code paths as the full SDR.
    """
    from repro.device.catalog import synthetic_device

    device = device or synthetic_device(16, 6, bram_every=5, dsp_every=8, name="mini-sdr-device")
    scaled: Dict[str, Dict[str, int]] = {
        "Matched Filter": {"CLB": 6, "DSP": 1},
        "Carrier Recovery": {"CLB": 2, "DSP": 1},
        "Demodulator": {"CLB": 2, "BRAM": 1},
        "Signal Decoder": {"CLB": 3, "BRAM": 1},
        "Video Decoder": {"CLB": 13, "BRAM": 1, "DSP": 1},
    }
    regions = [
        Region(name=name, requirements=ResourceVector(req)) for name, req in scaled.items()
    ]
    connections = [
        Connection(source=a, target=b, weight=SDR_BUS_WIDTH)
        for a, b in zip(scaled.keys(), list(scaled.keys())[1:])
    ]
    return FloorplanProblem(
        device=device, regions=regions, connections=connections, name="SDR-mini"
    )
