"""Workloads: the SDR case study of Section VI and synthetic generators."""

from repro.workloads.sdr import (
    SDR_REGION_NAMES,
    sdr_problem,
    sdr_regions,
    sdr_relocatable_regions,
    sdr2_spec,
    sdr3_spec,
)
from repro.workloads.synthetic import SyntheticWorkloadConfig, synthetic_problem

__all__ = [
    "SDR_REGION_NAMES",
    "sdr_regions",
    "sdr_problem",
    "sdr_relocatable_regions",
    "sdr2_spec",
    "sdr3_spec",
    "SyntheticWorkloadConfig",
    "synthetic_problem",
]
