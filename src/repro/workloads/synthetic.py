"""Synthetic workload generator for the scaling benchmarks and examples.

The generator produces floorplanning instances whose aggregate demand is a
configurable fraction of the device capacity, with per-region requirements
drawn from a seeded random generator so that runs are reproducible.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence

import numpy as np

from repro.device.catalog import synthetic_device
from repro.device.grid import FPGADevice
from repro.device.resources import ResourceType, ResourceVector
from repro.floorplan.problem import Connection, FloorplanProblem, Region


@dataclasses.dataclass
class SyntheticWorkloadConfig:
    """Parameters of a synthetic instance.

    Attributes
    ----------
    num_regions:
        Number of reconfigurable regions to generate.
    utilization:
        Target fraction of the device's usable CLB tiles demanded in total.
    bram_fraction, dsp_fraction:
        Probability that a region also requires BRAM / DSP tiles.
    chain_connectivity:
        Connect consecutive regions with a bus (mirrors the SDR topology);
        otherwise a sparse random connection set is generated.
    bus_width:
        Weight of each generated connection.
    seed:
        RNG seed (all randomness flows through it).
    """

    num_regions: int = 5
    utilization: float = 0.5
    bram_fraction: float = 0.4
    dsp_fraction: float = 0.3
    chain_connectivity: bool = True
    bus_width: float = 32.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_regions <= 0:
            raise ValueError("num_regions must be positive")
        if not 0 < self.utilization <= 0.95:
            raise ValueError("utilization must be in (0, 0.95]")


def config_grid(
    num_regions: Sequence[int] = (3, 5),
    utilizations: Sequence[float] = (0.5,),
    seeds: Sequence[int] = (0,),
    **common,
) -> List[SyntheticWorkloadConfig]:
    """Cross parameter axes into a grid of workload configs.

    The cartesian product ``num_regions x utilizations x seeds`` is returned
    in deterministic (itertools.product) order; ``common`` supplies the
    remaining :class:`SyntheticWorkloadConfig` fields shared by every cell.
    The scenario-sweep driver (:mod:`repro.service.sweep`) crosses these
    configs with devices and relocation specs into solve-job grids.
    """
    return [
        SyntheticWorkloadConfig(
            num_regions=regions, utilization=utilization, seed=seed, **common
        )
        for regions, utilization, seed in itertools.product(
            num_regions, utilizations, seeds
        )
    ]


def synthetic_problem(
    device: FPGADevice | None = None,
    config: SyntheticWorkloadConfig | None = None,
    name: Optional[str] = None,
) -> FloorplanProblem:
    """Generate a synthetic floorplanning instance.

    The per-region CLB demand is drawn from a Dirichlet split of the total
    budget so that regions have realistically unequal sizes; BRAM/DSP demands
    are added to a random subset of regions, capped by device capacity.
    """
    config = config or SyntheticWorkloadConfig()
    device = device or synthetic_device(24, 8, name="synthetic-workload-device")
    rng = np.random.default_rng(config.seed)

    capacity = device.total_resources()
    clb_budget = int(capacity.get(ResourceType.CLB) * config.utilization)
    clb_budget = max(clb_budget, config.num_regions)  # at least one tile each

    shares = rng.dirichlet(np.full(config.num_regions, 2.0))
    clb_demands = np.maximum(1, np.floor(shares * clb_budget).astype(int))

    bram_capacity = capacity.get(ResourceType.BRAM)
    dsp_capacity = capacity.get(ResourceType.DSP)
    bram_left = int(bram_capacity * config.utilization)
    dsp_left = int(dsp_capacity * config.utilization)

    regions: List[Region] = []
    for index in range(config.num_regions):
        requirement = {ResourceType.CLB: int(clb_demands[index])}
        if bram_left > 0 and rng.random() < config.bram_fraction:
            amount = int(rng.integers(1, max(2, bram_left // 2 + 1)))
            amount = min(amount, bram_left)
            requirement[ResourceType.BRAM] = amount
            bram_left -= amount
        if dsp_left > 0 and rng.random() < config.dsp_fraction:
            amount = int(rng.integers(1, max(2, dsp_left // 2 + 1)))
            amount = min(amount, dsp_left)
            requirement[ResourceType.DSP] = amount
            dsp_left -= amount
        regions.append(
            Region(name=f"R{index}", requirements=ResourceVector(requirement))
        )

    connections: List[Connection] = []
    if config.chain_connectivity:
        for a, b in zip(regions, regions[1:]):
            connections.append(
                Connection(source=a.name, target=b.name, weight=config.bus_width)
            )
    else:
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                if rng.random() < 0.3:
                    connections.append(
                        Connection(source=a.name, target=b.name, weight=config.bus_width)
                    )

    return FloorplanProblem(
        device=device,
        regions=regions,
        connections=connections,
        name=name or f"synthetic-{config.num_regions}r-seed{config.seed}",
    )
