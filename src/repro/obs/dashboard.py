"""The ``/dashboard`` page: one self-contained HTML operational view.

Stdlib-only server-side rendering — no JavaScript frameworks, no external
assets, no client round trips beyond a ``<meta http-equiv="refresh">``
auto-reload.  The page is built from the same machine-readable documents the
fleet already serves (``/metrics?format=json`` and the trace recorder), so a
gateway and the fleet router share one renderer: the router's roll-up simply
carries extra blocks (``router``, ``replicas``) that light up extra panels.

Histograms are drawn as inline SVG bar sparklines from the exact bucket
counts — the same raws the roll-up merges — so what the dashboard shows is
what the percentile math uses, not a rendered-table approximation.

Each panel carries a stable ``id="panel-…"`` marker; the CI obs-smoke job
asserts their presence, so renaming one is a contract change.
"""

from __future__ import annotations

import html
import time
from typing import List, Mapping, Optional, Sequence

from repro.server.http import HtmlPayload

__all__ = ["render_dashboard", "histogram_svg"]

_REFRESH_SECONDS = 2

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 0; background: #10141a; color: #d7dde4; }
header { padding: 14px 22px; background: #171d26; border-bottom: 1px solid #2a3442;
         display: flex; justify-content: space-between; align-items: baseline; }
header h1 { font-size: 18px; margin: 0; font-weight: 600; }
header .meta { color: #8ba0b5; font-size: 12px; }
main { display: flex; flex-wrap: wrap; gap: 14px; padding: 18px 22px; }
section { background: #171d26; border: 1px solid #2a3442; border-radius: 8px;
          padding: 14px 16px; min-width: 260px; flex: 1 1 300px; }
section h2 { font-size: 13px; margin: 0 0 10px; color: #9db4c9;
             text-transform: uppercase; letter-spacing: 0.06em; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
td, th { padding: 3px 8px 3px 0; text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr + tr td { border-top: 1px solid #222b36; }
.big { font-size: 26px; font-weight: 600; color: #f1f5f9; }
.unit { color: #8ba0b5; font-size: 12px; margin-left: 4px; }
.kpis { display: flex; gap: 24px; flex-wrap: wrap; }
.ok { color: #5dd39e; } .warn { color: #f2c14e; } .bad { color: #ef6461; }
.spark { margin-top: 6px; }
code { color: #9db4c9; background: #10141a; padding: 1px 5px; border-radius: 4px; }
.footer { padding: 8px 22px 18px; color: #5b6b7c; font-size: 11px; }
"""


def _fmt(value: object, digits: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}f}".rstrip("0").rstrip(".") or "0"
    return html.escape(str(value))


def _fmt_ms(seconds: object) -> str:
    try:
        return f"{float(seconds) * 1e3:.1f}"
    except (TypeError, ValueError):
        return "–"


def histogram_svg(
    counts: Sequence[int],
    width: int = 260,
    height: int = 48,
    color: str = "#4f9cf9",
) -> str:
    """Inline SVG bar sparkline of bucket counts (empty buckets stay gaps)."""
    counts = [max(0, int(c)) for c in counts]
    peak = max(counts) if counts else 0
    if peak == 0:
        return (
            f'<svg class="spark" width="{width}" height="{height}">'
            f'<text x="4" y="{height - 6}" fill="#5b6b7c" font-size="11">'
            "no samples yet</text></svg>"
        )
    bar = width / len(counts)
    bars = []
    for index, count in enumerate(counts):
        if count == 0:
            continue
        h = max(2.0, (count / peak) * (height - 4))
        bars.append(
            f'<rect x="{index * bar + 0.5:.1f}" y="{height - h:.1f}" '
            f'width="{max(1.0, bar - 1):.1f}" height="{h:.1f}" fill="{color}">'
            f"<title>bucket {index}: {count}</title></rect>"
        )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'role="img" aria-label="histogram">{"".join(bars)}</svg>'
    )


def _kpi(label: str, value: str, unit: str = "", tone: str = "") -> str:
    cls = f"big {tone}".strip()
    unit_html = f'<span class="unit">{unit}</span>' if unit else ""
    return (
        f'<div><div class="unit">{html.escape(label)}</div>'
        f'<div class="{cls}">{value}{unit_html}</div></div>'
    )


def _rows(pairs: Sequence[tuple]) -> str:
    return "".join(
        f"<tr><td>{html.escape(str(name))}</td><td class='num'>{value}</td></tr>"
        for name, value in pairs
    )


def _latency_panel(name: str, summary: Mapping, raw: Optional[Mapping]) -> str:
    cells = ""
    if summary.get("count"):
        cells = _rows(
            [
                ("count", _fmt(summary.get("count"))),
                ("p50 (ms)", _fmt_ms(summary.get("p50"))),
                ("p90 (ms)", _fmt_ms(summary.get("p90"))),
                ("p99 (ms)", _fmt_ms(summary.get("p99"))),
                ("max (ms)", _fmt_ms(summary.get("max"))),
            ]
        )
    else:
        cells = "<tr><td>no samples yet</td></tr>"
    svg = histogram_svg(raw.get("counts", [])) if raw else ""
    return (
        f'<section id="panel-latency-{html.escape(name)}">'
        f"<h2>latency · {html.escape(name)}</h2>"
        f"<table>{cells}</table>{svg}</section>"
    )


def render_dashboard(
    metrics: Mapping[str, object],
    traces: Sequence[Mapping[str, object]] = (),
    title: str = "repro dashboard",
    health: Optional[Mapping[str, object]] = None,
) -> HtmlPayload:
    """Render the operational dashboard for one gateway or the fleet router.

    ``metrics`` is the ``/metrics?format=json`` document (gateway snapshot or
    router roll-up — the renderer keys off which blocks are present);
    ``traces`` is a list of recent trace documents from the local recorder;
    ``health`` the ``/healthz`` payload for the build/uptime strip.
    """
    counters: Mapping = metrics.get("counters", {}) or {}
    latency: Mapping = metrics.get("latency", {}) or {}
    cache: Mapping = metrics.get("cache", {}) or {}
    histograms: Mapping = metrics.get("histograms", {}) or {}
    health = health or {}

    shed_rate = float(counters.get("shed_rate", 0.0) or 0.0)
    hit_rate = float(counters.get("hit_rate", 0.0) or 0.0)
    expired = int(counters.get("deadline_expired", 0) or 0)
    degraded = int(counters.get("degraded", 0) or 0)
    router_block: Mapping = metrics.get("router", {}) or {}
    breakers_open = int(router_block.get("breakers_open", 0) or 0)
    status = str(health.get("status", "ok"))
    tone = "ok" if status == "ok" else ("warn" if status == "draining" else "bad")

    sections: List[str] = []

    # --- headline KPIs -------------------------------------------------
    sections.append(
        '<section id="panel-overview"><h2>overview</h2><div class="kpis">'
        + _kpi("status", f'<span class="{tone}">{html.escape(status)}</span>')
        + _kpi("received", _fmt(counters.get("received", 0)))
        + _kpi("cache hit rate", f"{hit_rate * 100:.1f}", "%")
        + _kpi(
            "shed rate",
            f"{shed_rate * 100:.1f}",
            "%",
            tone="bad" if shed_rate > 0.05 else "",
        )
        + _kpi("queue depth", _fmt(counters.get("queue_depth", 0)))
        + _kpi(
            "deadline expired",
            _fmt(expired),
            tone="warn" if expired else "",
        )
        + _kpi("degraded", _fmt(degraded), tone="warn" if degraded else "")
        + (
            _kpi(
                "breakers open",
                _fmt(breakers_open),
                tone="bad" if breakers_open else "ok",
            )
            if router_block
            else ""
        )
        + "</div></section>"
    )

    # --- latency histograms -------------------------------------------
    for name in ("request", "cache_hit", "solve_miss"):
        if name in latency or name in histograms:
            sections.append(
                _latency_panel(name, latency.get(name, {}), histograms.get(name))
            )

    # --- batching ------------------------------------------------------
    batch_raw = histograms.get("batch_size")
    sections.append(
        '<section id="panel-batching"><h2>micro-batching</h2><table>'
        + _rows(
            [
                ("batches", _fmt(counters.get("batches", 0))),
                ("batched jobs", _fmt(counters.get("batched_jobs", 0))),
                ("deduped jobs", _fmt(counters.get("deduped_jobs", 0))),
                ("mean batch size", _fmt(counters.get("mean_batch_size", 0.0))),
            ]
        )
        + "</table>"
        + (histogram_svg(batch_raw.get("counts", []), color="#8d6fe8") if batch_raw else "")
        + "</section>"
    )

    # --- cache + single flight ----------------------------------------
    sections.append(
        '<section id="panel-cache"><h2>cache &amp; single flight</h2><table>'
        + _rows(
            [
                ("tier hits", _fmt(cache.get("hits", 0))),
                ("tier misses", _fmt(cache.get("misses", 0))),
                ("stores", _fmt(cache.get("stores", 0))),
                ("flight waits", _fmt(counters.get("flight_waits", 0))),
                ("flight takeovers", _fmt(counters.get("flight_takeovers", 0))),
                ("flights held", _fmt(cache.get("flights", 0))),
                ("stale locks reclaimed", _fmt(cache.get("stale_locks", 0))),
            ]
        )
        + "</table></section>"
    )

    # --- fleet panel (router roll-up only) -----------------------------
    replicas = metrics.get("replicas") or health.get("replicas")
    if replicas:
        rows = []
        for replica in replicas:
            up = replica.get("reporting", replica.get("up", False))
            breaker = str(replica.get("breaker", "closed"))
            breaker_tone = "ok" if breaker == "closed" else (
                "warn" if breaker == "half-open" else "bad"
            )
            depth = replica.get("queue_depth_ewma")
            rows.append(
                "<tr>"
                f"<td><code>{html.escape(str(replica.get('node', '?')))}</code></td>"
                f"<td class='{'ok' if up else 'bad'}'>{'up' if up else 'down'}</td>"
                f"<td class='{breaker_tone}'>{html.escape(breaker)}</td>"
                f"<td class='num'>{_fmt(depth) if depth is not None else '–'}</td>"
                f"<td class='num'>{_fmt(replica.get('routed', 0))}</td>"
                f"<td class='num'>{_fmt(replica.get('failures', 0))}</td>"
                "</tr>"
            )
        router: Mapping = metrics.get("router", {}) or {}
        router_rows = _rows(
            [
                ("routed", _fmt(router.get("routed", 0))),
                ("retries", _fmt(router.get("retries", 0))),
                ("failovers", _fmt(router.get("failovers", 0))),
                ("unavailable (503)", _fmt(router.get("unavailable", 0))),
                ("shed at front door", _fmt(router.get("shed_overload", 0))),
                ("deadline expired", _fmt(router.get("deadline_expired", 0))),
                ("breakers open", _fmt(router.get("breakers_open", 0))),
            ]
        ) if router else ""
        sections.append(
            '<section id="panel-fleet"><h2>fleet</h2>'
            "<table><tr><th>replica</th><th>health</th><th>breaker</th>"
            "<th class='num'>depth</th>"
            "<th class='num'>routed</th><th class='num'>failures</th></tr>"
            + "".join(rows)
            + "</table>"
            + (f"<table style='margin-top:10px'>{router_rows}</table>" if router_rows else "")
            + "</section>"
        )

    # --- recent traces -------------------------------------------------
    trace_rows = []
    for doc in list(traces)[:12]:
        trace_id = str(doc.get("trace_id", "?"))
        status_str = str(doc.get("status", "?"))
        duration_ms = float(doc.get("duration", 0.0) or 0.0) * 1e3
        metadata = doc.get("metadata") or {}
        fingerprint = str(metadata.get("fingerprint") or "")[:12]
        trace_rows.append(
            "<tr>"
            f"<td><a style='color:#4f9cf9' href='/debug/traces/{html.escape(trace_id)}'>"
            f"<code>{html.escape(trace_id)}</code></a></td>"
            f"<td class='{'ok' if status_str == 'ok' else 'bad'}'>{html.escape(status_str)}</td>"
            f"<td class='num'>{duration_ms:.1f}</td>"
            f"<td class='num'>{len(doc.get('spans') or [])}</td>"
            f"<td><code>{html.escape(fingerprint)}</code></td>"
            "</tr>"
        )
    sections.append(
        '<section id="panel-traces"><h2>recent traces</h2><table>'
        "<tr><th>trace</th><th>status</th><th class='num'>ms</th>"
        "<th class='num'>spans</th><th>fingerprint</th></tr>"
        + ("".join(trace_rows) or "<tr><td>no traces recorded yet</td></tr>")
        + "</table></section>"
    )

    uptime = health.get("uptime_seconds", counters.get("uptime_s", 0))
    meta_bits = [
        f"uptime {_fmt(uptime)}s",
        f"rev <code>{html.escape(str(health.get('git_rev', '?')))}</code>",
        f"refreshes every {_REFRESH_SECONDS}s",
    ]
    page = (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<meta http-equiv='refresh' content='{_REFRESH_SECONDS}'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        "<body><header>"
        f"<h1>{html.escape(title)}</h1>"
        f"<div class='meta'>{' · '.join(meta_bits)}</div>"
        "</header><main>"
        + "".join(sections)
        + "</main><div class='footer'>repro.obs dashboard · rendered "
        f"{time.strftime('%Y-%m-%d %H:%M:%S')}</div></body></html>"
    )
    return HtmlPayload(page)
