"""Trace storage: bounded in-memory ring buffer plus optional JSONL sink.

The recorder is the process-local home of completed traces.  It is sized for
operations, not archival: the ring keeps the most recent N trace documents for
``GET /debug/traces`` and the dashboard, while the optional JSONL sink appends
every completed trace to disk (with size-based rotation) for capture→replay
via ``python -m repro.obs export``.

Everything here is thread-safe: the gateway records from asyncio callbacks on
the event loop thread, tests record from arbitrary threads, and /debug reads
can race a record.
"""

from __future__ import annotations

import collections
import json
import os
import threading
from typing import Dict, List, Mapping, Optional

from repro.obs.trace import Trace

__all__ = ["TraceRing", "JsonlSink", "TraceRecorder"]


class TraceRing:
    """Bounded FIFO of traces with by-id lookup.

    Evicts the oldest trace once ``capacity`` is exceeded; eviction count is
    surfaced in stats so operators can tell "trace not found" from "trace
    aged out".

    Entries are stored as whatever ``add`` received — a sealed
    :class:`~repro.obs.trace.Trace` or an exported document — and are only
    serialized to documents when read.  ``add`` sits on the request hot path
    (every traced request lands here before its response is written), while
    ``/debug/traces`` reads are rare, so the dict-building cost belongs on
    the read side.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._order: collections.deque = collections.deque()
        self._by_id: Dict[str, object] = {}
        self._lock = threading.Lock()
        self.recorded = 0
        self.evicted = 0

    @staticmethod
    def _entry_id(entry) -> str:
        if isinstance(entry, Trace):
            return entry.trace_id
        return str(entry.get("trace_id", ""))

    @staticmethod
    def _materialize(entry) -> Dict[str, object]:
        if isinstance(entry, Trace):
            return entry.as_dict()
        return dict(entry)

    def add(self, entry) -> None:
        if not isinstance(entry, Trace):
            entry = dict(entry)  # detach from the caller's mutable doc
        trace_id = self._entry_id(entry)
        with self._lock:
            self.recorded += 1
            if trace_id in self._by_id:
                # Same id recorded twice (e.g. a retry): keep the newest,
                # leaving its position in the eviction order untouched.
                self._by_id[trace_id] = entry
                return
            self._order.append(trace_id)
            self._by_id[trace_id] = entry
            while len(self._order) > self.capacity:
                oldest = self._order.popleft()
                self._by_id.pop(oldest, None)
                self.evicted += 1

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            entry = self._by_id.get(trace_id)
        return self._materialize(entry) if entry is not None else None

    def list(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first trace documents (bounded by ``limit``)."""
        with self._lock:
            ids = list(self._order)
            entries = [self._by_id.get(trace_id) for trace_id in reversed(ids)]
        docs = []
        for entry in entries:
            if entry is not None:
                docs.append(self._materialize(entry))
            if limit is not None and len(docs) >= limit:
                break
        return docs

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._order),
                "recorded": self.recorded,
                "evicted": self.evicted,
            }


class JsonlSink:
    """Append-only JSONL trace log with size-based rotation.

    When the live file exceeds ``max_bytes`` it is renamed to ``<path>.1``
    (shifting ``.1`` → ``.2`` … up to ``backups``, dropping the oldest) and a
    fresh file is started — the classic logrotate scheme, so a long soak
    cannot fill the disk.
    """

    def __init__(self, path: str, max_bytes: int = 16 * 1024 * 1024, backups: int = 2) -> None:
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.backups = max(0, int(backups))
        self._lock = threading.Lock()
        self.written = 0
        self.rotations = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def write(self, doc: Mapping[str, object]) -> None:
        line = json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            self._maybe_rotate(len(line))
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
            self.written += 1

    def _maybe_rotate(self, incoming: int) -> None:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{index}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self.rotations += 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            return {
                "path": self.path,
                "bytes": size,
                "max_bytes": self.max_bytes,
                "written": self.written,
                "rotations": self.rotations,
            }


class TraceRecorder:
    """Facade the serving layers talk to: ring + optional JSONL sink.

    ``record`` accepts either a live :class:`Trace` (sealed if still open) or
    an already-exported document, so process-boundary consumers (the router
    recording its fragment, tests injecting fixtures) share one entry point.
    """

    def __init__(
        self,
        capacity: int = 256,
        sink_path: Optional[str] = None,
        sink_max_bytes: int = 16 * 1024 * 1024,
        sink_backups: int = 2,
    ) -> None:
        self.ring = TraceRing(capacity=capacity)
        self.sink = (
            JsonlSink(sink_path, max_bytes=sink_max_bytes, backups=sink_backups)
            if sink_path
            else None
        )

    def record(self, trace) -> None:
        if isinstance(trace, Trace):
            trace.finish(trace.status if trace.status != "open" else "ok")
            self.ring.add(trace)
            if self.sink is not None:
                self.sink.write(trace.as_dict())
        else:
            doc = dict(trace)
            self.ring.add(doc)
            if self.sink is not None:
                self.sink.write(doc)

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        return self.ring.get(trace_id)

    def list(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return self.ring.list(limit=limit)

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = dict(self.ring.stats())
        if self.sink is not None:
            stats["sink"] = self.sink.stats()
        return stats
