"""CLI for the observability subsystem.

``export`` turns recorded traces into a replayable capture document::

    # from a sink file (or a saved /debug/traces?full=1 response)
    python -m repro.obs export traces.jsonl -o capture.json

    # straight from a live gateway or fleet router
    python -m repro.obs export 127.0.0.1:8765 -o capture.json --limit 200

The capture feeds both replay paths: the discrete-event simulator
(``TraceReplayTraffic.from_capture``) and the load generator
(``python -m repro.server.loadgen --replay capture.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, Tuple

from repro.obs.capture import (
    build_capture,
    capture_schedule,
    fetch_trace_docs,
    load_trace_docs,
    write_capture,
)


def _parse_endpoint(source: str) -> Optional[Tuple[str, int]]:
    """``host:port`` or ``http://host:port`` → address; ``None`` for paths."""
    stripped = source
    for prefix in ("http://", "https://"):
        if stripped.startswith(prefix):
            stripped = stripped[len(prefix):]
            break
    stripped = stripped.rstrip("/")
    host, sep, port = stripped.rpartition(":")
    if not sep or not port.isdigit() or "/" in stripped:
        return None
    return (host or "127.0.0.1"), int(port)


def _export(args: argparse.Namespace) -> int:
    endpoint = _parse_endpoint(args.source)
    if endpoint is not None:
        host, port = endpoint
        try:
            docs = fetch_trace_docs(host, port, limit=args.limit)
        except OSError as exc:
            print(f"export FAIL: cannot fetch traces from {host}:{port}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        try:
            docs = load_trace_docs(args.source)
        except OSError as exc:
            print(f"export FAIL: cannot read {args.source}: {exc}", file=sys.stderr)
            return 1
    capture = build_capture(docs, source=args.source)
    requests = capture["requests"]
    if not requests:
        print(
            f"export FAIL: {args.source} holds no replayable solve traces "
            "(decoded requests carry a fingerprint in trace metadata)",
            file=sys.stderr,
        )
        return 1
    write_capture(capture, args.output)
    schedule = capture_schedule(capture)
    print(
        f"export OK: {len(requests)} requests "
        f"({len(set(r['fingerprint'] for r in requests))} unique fingerprints) "
        f"spanning {schedule.duration:.3f}s -> {args.output}"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace capture tooling (export recorded traces for replay).",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    export = commands.add_parser(
        "export",
        help="distil traces into a replayable capture document",
    )
    export.add_argument(
        "source",
        help="traces.jsonl / saved trace JSON, or host:port of a live "
        "gateway or router to fetch from",
    )
    export.add_argument("-o", "--output", default="capture.json")
    export.add_argument(
        "--limit", type=int, default=500,
        help="max traces to fetch from a live endpoint",
    )
    args = parser.parse_args(argv)
    if args.command == "export":
        return _export(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
