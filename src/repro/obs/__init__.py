"""repro.obs — end-to-end request tracing, dashboard, and capture→replay.

Stdlib-only observability for the serving stack: :mod:`repro.obs.trace`
(trace/span model, ``X-Repro-Trace`` propagation, solver stage hooks),
:mod:`repro.obs.recorder` (bounded ring + rotating JSONL sink behind
``GET /debug/traces``), :mod:`repro.obs.dashboard` (the ``/dashboard`` HTML),
and :mod:`repro.obs.capture` (captured traces → ``ModeSchedule``/TraceReplay
scenarios and loadgen replay files; ``python -m repro.obs export``).
"""

from repro.obs.capture import (
    CAPTURE_SCHEMA_VERSION,
    build_capture,
    capture_schedule,
    load_capture,
    load_trace_docs,
    write_capture,
)
from repro.obs.recorder import JsonlSink, TraceRecorder, TraceRing
from repro.obs.trace import (
    TRACE_HEADER,
    TRACE_SCHEMA_VERSION,
    Span,
    Trace,
    collect_stages,
    format_trace_header,
    new_id,
    parse_trace_header,
    record_stage,
    stage_timer,
)

__all__ = [
    "CAPTURE_SCHEMA_VERSION",
    "TRACE_HEADER",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Trace",
    "TraceRing",
    "JsonlSink",
    "TraceRecorder",
    "new_id",
    "parse_trace_header",
    "format_trace_header",
    "record_stage",
    "stage_timer",
    "collect_stages",
    "build_capture",
    "capture_schedule",
    "load_trace_docs",
    "load_capture",
    "write_capture",
]
