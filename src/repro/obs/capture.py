"""Production-trace capture: turn recorded traces into replayable load.

The tracing pipeline (:mod:`repro.obs.trace`) leaves behind trace documents —
in the ``/debug/traces`` ring and, with a sink configured, in a JSONL file.
This module distils them into a **capture**: one JSON document holding the
observed solve-request sequence (fingerprints, job names, inter-arrival
offsets) plus a dwell-timed :class:`~repro.runtime.scheduler.ModeSchedule`
encoding of the same sequence.  One capture feeds both replay paths:

* the **simulator** — :meth:`repro.sim.traffic.TraceReplayTraffic.from_capture`
  replays the captured cadence as timed mode requests;
* the **load generator** — :func:`repro.server.loadgen.replay_loop` re-sends
  the captured request sequence against a live gateway or fleet, resolving
  each fingerprint back to a request payload.

A request usually appears in several recorders (the router's fragment and
the owning replica's fragment share one trace id); capture keeps exactly one
entry per trace id, preferring the origin fragment — the process that minted
the id and therefore saw the request first.

``python -m repro.obs export`` is the CLI wrapper (see ``__main__``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional

from repro.obs.trace import TRACE_SCHEMA_VERSION
from repro.runtime.scheduler import ModeSchedule

__all__ = [
    "CAPTURE_SCHEMA_VERSION",
    "load_trace_docs",
    "fetch_trace_docs",
    "select_requests",
    "build_capture",
    "capture_schedule",
    "write_capture",
    "load_capture",
]

CAPTURE_SCHEMA_VERSION = 1

#: Fingerprint prefix length used for schedule mode tags (long enough that
#: collisions within one capture are implausible, short enough to read).
_TAG_CHARS = 12


def load_trace_docs(path: str) -> List[Dict[str, object]]:
    """Trace documents from a file: JSONL (one doc per line, as the
    :class:`~repro.obs.recorder.JsonlSink` writes) or JSON (a list, or a
    ``/debug/traces?full=1`` response with a ``"traces"`` key)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("[") or stripped.startswith("{"):
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            data = None
        if isinstance(data, list):
            return [doc for doc in data if isinstance(doc, dict)]
        if isinstance(data, dict):
            traces = data.get("traces", [])
            if isinstance(traces, list):
                return [doc for doc in traces if isinstance(doc, dict)]
    docs: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn line from a rotated sink is not fatal
        if isinstance(doc, dict):
            docs.append(doc)
    return docs


def fetch_trace_docs(
    host: str, port: int, limit: int = 500, timeout: float = 10.0
) -> List[Dict[str, object]]:
    """Full trace documents from a live gateway or router's debug endpoint."""
    from urllib.request import urlopen

    url = f"http://{host}:{port}/debug/traces?full=1&limit={int(limit)}"
    with urlopen(url, timeout=timeout) as response:  # noqa: S310 — http only
        data = json.loads(response.read())
    traces = data.get("traces", []) if isinstance(data, dict) else []
    return [doc for doc in traces if isinstance(doc, dict)]


def _is_origin(doc: Mapping[str, object]) -> bool:
    return doc.get("remote_parent") is None


def select_requests(docs: Iterable[Mapping[str, object]]) -> List[Dict[str, object]]:
    """One replayable request per trace id, in arrival order.

    Only decoded solve traces (those carrying a fingerprint) qualify; among
    fragments sharing a trace id the origin fragment wins, falling back to
    the earliest-starting one when the origin never reached this collection.
    """
    chosen: Dict[str, Mapping[str, object]] = {}
    for doc in docs:
        metadata = doc.get("metadata")
        if not isinstance(metadata, dict) or not metadata.get("fingerprint"):
            continue
        trace_id = str(doc.get("trace_id", ""))
        if not trace_id:
            continue
        current = chosen.get(trace_id)
        if current is None:
            chosen[trace_id] = doc
            continue
        if _is_origin(doc) and not _is_origin(current):
            chosen[trace_id] = doc
        elif _is_origin(doc) == _is_origin(current) and float(
            doc.get("start", 0.0)
        ) < float(current.get("start", 0.0)):
            chosen[trace_id] = doc

    ordered = sorted(chosen.values(), key=lambda doc: float(doc.get("start", 0.0)))
    if not ordered:
        return []
    first_start = float(ordered[0].get("start", 0.0))
    requests = []
    for doc in ordered:
        metadata = doc["metadata"]  # type: ignore[index]
        requests.append(
            {
                "offset": round(float(doc.get("start", 0.0)) - first_start, 9),
                "fingerprint": str(metadata["fingerprint"]),
                "job": str(metadata.get("job") or "solve"),
                "client": metadata.get("client"),
                "trace_id": str(doc.get("trace_id")),
                "origin": doc.get("origin"),
                "status": doc.get("status"),
                "duration": float(doc.get("duration", 0.0)),
            }
        )
    return requests


def build_capture(
    docs: Iterable[Mapping[str, object]], source: Optional[str] = None
) -> Dict[str, object]:
    """The capture document: request sequence + its ModeSchedule encoding.

    The schedule maps each request to one activation — region is the job
    name, mode a short fingerprint tag — and its dwells are the observed
    inter-arrival gaps, so :meth:`ModeSchedule.timed_steps` reproduces the
    captured offsets exactly (the last dwell is 0: nothing follows it).
    """
    requests = select_requests(docs)
    steps = tuple(
        (request["job"], f"fp-{request['fingerprint'][:_TAG_CHARS]}")
        for request in requests
    )
    dwells: tuple = ()
    if len(requests) > 1:
        offsets = [float(request["offset"]) for request in requests]
        dwells = tuple(
            round(max(0.0, offsets[i + 1] - offsets[i]), 9)
            for i in range(len(offsets) - 1)
        ) + (0.0,)
    schedule = ModeSchedule(steps=steps, dwells=dwells)
    return {
        "schema": CAPTURE_SCHEMA_VERSION,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "source": source,
        "requests": requests,
        "schedule": schedule.to_dict(),
    }


def capture_schedule(capture: Mapping[str, object]) -> ModeSchedule:
    """The embedded :class:`ModeSchedule` of a capture document."""
    return ModeSchedule.from_dict(dict(capture.get("schedule", {})))


def write_capture(capture: Mapping[str, object], path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(capture, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_capture(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        capture = json.load(handle)
    if not isinstance(capture, dict) or "requests" not in capture:
        raise ValueError(f"{path} is not a capture document")
    schema = capture.get("schema")
    if schema != CAPTURE_SCHEMA_VERSION:
        raise ValueError(
            f"capture schema {schema!r} unsupported "
            f"(this build reads schema {CAPTURE_SCHEMA_VERSION})"
        )
    return capture
