"""End-to-end request tracing: trace/span model, header propagation, stage hooks.

A **trace** follows one solve request through every serving layer.  The trace
id is minted at the first traced process the request hits (the fleet router,
or a gateway when hit directly) and propagated downstream in the
``X-Repro-Trace`` header as ``<trace_id>`` or ``<trace_id>:<parent_span_id>``,
so the router's forward span becomes the remote parent of the replica's
request handling.  Each process records **spans** — named, timed segments
(decode, admission, cache lookup, single-flight wait, batch assembly, the
solve itself) — into its local :class:`~repro.obs.recorder.TraceRecorder`;
``GET /debug/traces`` exposes them, and the shared trace id is what stitches
the per-process fragments back into one request story.

Span timestamps are wall-clock seconds derived from a per-trace
``(time.time(), perf_counter)`` anchor: durations have ``perf_counter``
precision while absolute times stay comparable across processes on one host.

**Solver stage hooks.**  The MILP and floorplan solvers run deep below the
gateway, often on pool threads or in child processes where no trace object is
reachable.  They report coarse stage timings (``milp.presolve``,
``milp.search``, ``floorplan.build``, ``floorplan.postsolve``) through a
thread-local sink: :func:`record_stage` is a no-op costing one attribute probe
unless :func:`collect_stages` installed a sink on the current thread — which
:func:`repro.floorplan.solver.run_job` does around every service-layer solve.
The collected stages travel inside the picklable
:class:`~repro.service.results.JobResult` and are re-attached to the request
trace as child spans of its solve span by the gateway.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "TRACE_HEADER",
    "TRACE_SCHEMA_VERSION",
    "new_id",
    "parse_trace_header",
    "format_trace_header",
    "Span",
    "Trace",
    "summarize_trace_doc",
    "record_stage",
    "stage_timer",
    "collect_stages",
]

#: The propagation header: ``<trace_id>`` or ``<trace_id>:<parent_span_id>``.
TRACE_HEADER = "X-Repro-Trace"

#: Version stamped into every exported trace document.
TRACE_SCHEMA_VERSION = 1

_MAX_ID_CHARS = 64


#: Pre-minted 8-byte hex ids.  Ids are minted several times per request on
#: the serving hot path, where a per-id ``os.urandom`` syscall is measurable;
#: drawing one entropy block per 256 ids keeps ids crypto-random at ~1/256th
#: of the cost.  ``list.pop`` is atomic under the GIL, and a refill race
#: between threads merely stocks the pool twice.
_ID_POOL: List[str] = []
_ID_BATCH = 256


def new_id(nbytes: int = 8) -> str:
    """A fresh random hex id (crypto-random so ids never collide by seed)."""
    if nbytes != 8:
        return os.urandom(nbytes).hex()
    try:
        return _ID_POOL.pop()
    except IndexError:
        blob = os.urandom(8 * _ID_BATCH).hex()
        _ID_POOL.extend(blob[i:i + 16] for i in range(16, 16 * _ID_BATCH, 16))
        return blob[:16]


def _valid_id(value: str) -> bool:
    if not value or len(value) > _MAX_ID_CHARS:
        return False
    return all(c in "0123456789abcdefABCDEF-" for c in value)


def parse_trace_header(value: Optional[str]) -> tuple[Optional[str], Optional[str]]:
    """``(trace_id, parent_span_id)`` from a header value, or ``(None, None)``.

    Malformed values are treated as absent — an upstream speaking a different
    dialect must never break the request, it just starts a fresh trace.
    """
    if not value:
        return None, None
    trace_id, _sep, parent = value.partition(":")
    trace_id = trace_id.strip()
    parent = parent.strip()
    if not _valid_id(trace_id):
        return None, None
    if parent and not _valid_id(parent):
        parent = ""
    return trace_id, (parent or None)


def format_trace_header(trace_id: str, span_id: Optional[str] = None) -> str:
    """Encode the propagation header for a downstream hop."""
    return f"{trace_id}:{span_id}" if span_id else trace_id


# ----------------------------------------------------------------------
# spans and traces
# ----------------------------------------------------------------------
@dataclasses.dataclass(slots=True)
class Span:
    """One named, timed segment of a trace (wall-clock seconds).

    Slotted: several spans are minted per traced request on the serving hot
    path, and the per-instance ``__dict__`` they would otherwise carry is
    measurable GC pressure on the gateway's event loop.
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: float
    annotations: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": round(self.duration, 9),
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        return cls(
            name=str(data["name"]),
            span_id=str(data["span_id"]),
            parent_id=(None if data.get("parent_id") is None else str(data["parent_id"])),
            start=float(data["start"]),
            end=float(data["end"]),
            annotations=dict(data.get("annotations", {})),
        )


class Trace:
    """One process's fragment of a request trace.

    The object is single-request, single-task state (the gateway builds one
    per ``/solve`` and never shares it), so there is no locking; the recorder
    it lands in is the thread-safe part.
    """

    __slots__ = (
        "trace_id",
        "origin",
        "remote_parent",
        "metadata",
        "spans",
        "status",
        "_wall0",
        "_perf0",
        "_offset",
        "_end_perf",
    )

    def __init__(
        self,
        trace_id: Optional[str] = None,
        origin: str = "gateway",
        remote_parent: Optional[str] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id or new_id()
        self.origin = origin
        self.remote_parent = remote_parent
        # the trace takes ownership of the metadata dict (hot-path callers
        # always hand over a fresh literal; copying it again is pure churn)
        self.metadata: Dict[str, object] = metadata if metadata is not None else {}
        self.spans: List[Span] = []
        self.status = "open"
        self._wall0 = time.time()
        self._perf0 = time.perf_counter()
        self._offset = self._wall0 - self._perf0
        self._end_perf: Optional[float] = None

    # ------------------------------------------------------------------
    @classmethod
    def begin(
        cls,
        header: Optional[str] = None,
        origin: str = "gateway",
        metadata: Optional[Dict[str, object]] = None,
    ) -> "Trace":
        """Continue the trace named in ``header`` or start a fresh one."""
        trace_id, parent = parse_trace_header(header)
        return cls(trace_id=trace_id, origin=origin, remote_parent=parent, metadata=metadata)

    # ------------------------------------------------------------------
    def wall(self, perf_instant: float) -> float:
        """Convert a ``perf_counter`` instant to this trace's wall clock."""
        return self._offset + perf_instant

    @property
    def start(self) -> float:
        return self._wall0

    @property
    def end(self) -> float:
        if self._end_perf is None:
            return self.wall(time.perf_counter())
        return self.wall(self._end_perf)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(
        self, name: str, parent: Optional[Span] = None, **annotations: object
    ) -> Iterator[Span]:
        """Time a block as one span (annotations may be added on the yielded
        span while it is open)."""
        start = time.perf_counter()
        span = Span(
            name=name,
            span_id=new_id(),
            parent_id=parent.span_id if parent is not None else self.remote_parent,
            start=self.wall(start),
            end=0.0,
            annotations=annotations,  # the **kwargs dict is already fresh
        )
        try:
            yield span
        finally:
            span.end = self.wall(time.perf_counter())
            self.spans.append(span)

    def add_span(
        self,
        name: str,
        start_perf: float,
        end_perf: float,
        parent: Optional[Span] = None,
        **annotations: object,
    ) -> Span:
        """Record a span from explicit ``perf_counter`` instants."""
        span = Span(
            name=name,
            span_id=new_id(),
            parent_id=parent.span_id if parent is not None else self.remote_parent,
            start=self.wall(start_perf),
            end=self.wall(end_perf),
            annotations=annotations,  # the **kwargs dict is already fresh
        )
        self.spans.append(span)
        return span

    def add_stage_spans(
        self, stages: Optional[Sequence[Mapping[str, object]]], parent: Span
    ) -> None:
        """Re-attach solver stage timings as child spans of ``parent``.

        Stages carry durations, not absolute instants (they may have been
        measured in another thread or process), so they are laid out
        back-to-back from the parent span's start — preserving order and
        proportion, which is what the dashboard and the nesting tests read.
        """
        if not stages:
            return
        cursor = parent.start
        for stage in stages:
            try:
                seconds = max(0.0, float(stage["seconds"]))
                name = str(stage["name"])
            except (KeyError, TypeError, ValueError):
                continue
            annotations = {
                key: value
                for key, value in stage.items()
                if key not in ("name", "seconds")
            }
            self.spans.append(
                Span(
                    name=name,
                    span_id=new_id(),
                    parent_id=parent.span_id,
                    start=cursor,
                    end=cursor + seconds,
                    annotations=annotations,
                )
            )
            cursor += seconds

    # ------------------------------------------------------------------
    def finish(self, status: str = "ok") -> "Trace":
        """Seal the trace (idempotent: the first status wins)."""
        if self._end_perf is None:
            self._end_perf = time.perf_counter()
            self.status = status
        return self

    def as_dict(self) -> Dict[str, object]:
        """The JSON document ``/debug/traces`` serves and the JSONL sink
        persists (one line each)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "origin": self.origin,
            "remote_parent": self.remote_parent,
            "status": self.status,
            "start": self._wall0,
            "end": self.end,
            "duration": round(self.duration, 9),
            "metadata": dict(self.metadata),
            "spans": [span.as_dict() for span in self.spans],
        }

    def summary(self) -> Dict[str, object]:
        """The compact row the trace-list endpoint and dashboard render."""
        return {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "status": self.status,
            "start": self._wall0,
            "duration_ms": round(self.duration * 1e3, 3),
            "spans": len(self.spans),
            "fingerprint": self.metadata.get("fingerprint"),
        }


def summarize_trace_doc(doc: Mapping[str, object]) -> Dict[str, object]:
    """Compact list-endpoint row for an exported trace document."""
    spans = doc.get("spans") or []
    metadata = doc.get("metadata") or {}
    return {
        "trace_id": doc.get("trace_id"),
        "origin": doc.get("origin"),
        "status": doc.get("status"),
        "start": doc.get("start"),
        "duration_ms": round(float(doc.get("duration", 0.0)) * 1e3, 3),
        "spans": len(spans),
        "fingerprint": metadata.get("fingerprint") if isinstance(metadata, dict) else None,
    }


# ----------------------------------------------------------------------
# solver stage hooks (thread-local, near-zero cost when uncollected)
# ----------------------------------------------------------------------
_STAGE_SINK = threading.local()


def record_stage(name: str, seconds: float, **annotations: object) -> None:
    """Report one solver stage timing to the current thread's collector.

    A no-op (one attribute probe) unless :func:`collect_stages` is active on
    this thread — the hot solve paths call this unconditionally.
    """
    sink = getattr(_STAGE_SINK, "sink", None)
    if sink is None:
        return
    entry: Dict[str, object] = {"name": name, "seconds": float(seconds)}
    if annotations:
        entry.update(annotations)
    sink.append(entry)


@contextlib.contextmanager
def stage_timer(name: str, **annotations: object) -> Iterator[None]:
    """Time a block as one stage; free when no collector is installed."""
    if getattr(_STAGE_SINK, "sink", None) is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        record_stage(name, time.perf_counter() - start, **annotations)


@contextlib.contextmanager
def collect_stages() -> Iterator[List[Dict[str, object]]]:
    """Collect every :func:`record_stage` call made on this thread.

    Nested collectors stack: the innermost wins (stages are not duplicated
    outward), matching one-solve-one-collector usage in the service layer.
    """
    previous = getattr(_STAGE_SINK, "sink", None)
    sink: List[Dict[str, object]] = []
    _STAGE_SINK.sink = sink
    try:
        yield sink
    finally:
        _STAGE_SINK.sink = previous
