"""Run a chaos plan against a live fleet under client load, and judge it.

The runner owns the whole experiment:

1. spawn a :class:`~repro.fleet.harness.BackgroundFleet` (replica processes
   plus router frontend) on a fresh shared cache dir;
2. start closed-loop client traffic against the router on a background
   thread, recording every response's status, latency and headers;
3. play the :class:`~repro.chaos.plan.ChaosPlan` on the main thread —
   apply each action at its instant, revert it after its duration, and
   revert anything still outstanding when the horizon ends;
4. stop traffic, run the :mod:`~repro.chaos.invariants` checker over the
   recorded outcomes and fault windows, and fold everything into a
   :class:`ChaosReport` with a pass/fail verdict.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.actions import ChaosContext
from repro.chaos.invariants import (
    InvariantViolation,
    RequestOutcome,
    SHED_STATUSES,
    check_invariants,
)
from repro.chaos.plan import ChaosEvent, ChaosPlan

__all__ = ["ChaosReport", "run_chaos"]


@dataclasses.dataclass
class ChaosReport:
    """Everything one chaos run produced, plus the verdict."""

    horizon: float
    replicas: int
    outcomes: List[RequestOutcome]
    violations: List[InvariantViolation]
    applied: List[Tuple[float, str]]  # (instant, action name)
    fault_windows: List[Tuple[float, float]]
    restarts: int

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def sent(self) -> int:
        return len(self.outcomes)

    def status_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def shed(self) -> int:
        return sum(
            1 for outcome in self.outcomes if outcome.status in SHED_STATUSES
        )

    @property
    def degraded(self) -> int:
        return sum(
            1 for outcome in self.outcomes
            if isinstance(outcome.body, dict) and outcome.body.get("degraded")
        )

    def p99_s(self) -> float:
        from repro.sim.stats import percentile

        latencies = [
            outcome.latency_s for outcome in self.outcomes if outcome.status != 599
        ]
        return percentile(latencies, 99.0) if latencies else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "verdict": "PASS" if self.ok else "FAIL",
            "horizon_s": self.horizon,
            "replicas": self.replicas,
            "requests": self.sent,
            "statuses": {str(k): v for k, v in self.status_counts().items()},
            "shed": self.shed,
            "degraded": self.degraded,
            "p99_s": round(self.p99_s(), 4),
            "restarts": self.restarts,
            "faults": [
                {"t": round(when, 3), "action": name} for when, name in self.applied
            ],
            "violations": [str(violation) for violation in self.violations],
        }

    def format_report(self) -> str:
        lines = [
            f"chaos verdict: {'PASS' if self.ok else 'FAIL'}",
            f"  {self.sent} requests over {self.horizon:.1f}s against "
            f"{self.replicas} replicas ({self.restarts} restarts)",
            f"  statuses: "
            + ", ".join(f"{count}x {status}"
                        for status, count in self.status_counts().items()),
            f"  shed={self.shed} degraded={self.degraded} p99={self.p99_s():.2f}s",
            f"  faults applied: "
            + (", ".join(f"{name}@{when:.1f}s" for when, name in self.applied)
               or "none"),
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# traffic
# ----------------------------------------------------------------------
async def _traffic(
    host: str,
    port: int,
    payloads: Sequence[Dict[str, object]],
    clients: int,
    stop: threading.Event,
    outcomes: List[RequestOutcome],
    t0: float,
) -> None:
    from repro.server.loadgen import GatewayClient

    async def one_client(index: int) -> None:
        client = GatewayClient(host, port, client_id=f"chaos-{index}")
        connected = False
        step = 0
        while not stop.is_set():
            payload = payloads[(index + step) % len(payloads)]
            step += 1
            offset = time.perf_counter() - t0
            started = time.perf_counter()
            try:
                if not connected:
                    await client.connect()
                    connected = True
                status, body = await client.solve(payload)
                headers = dict(client.last_headers)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                await client.close()
                connected = False
                outcomes.append(RequestOutcome(
                    offset, 599, time.perf_counter() - started, {}, None
                ))
                await asyncio.sleep(0.05)
                continue
            outcomes.append(RequestOutcome(
                offset, status, time.perf_counter() - started, headers, body
            ))
            if status in SHED_STATUSES:
                # back off a token amount so a shedding fleet is not
                # busy-spun; honoring the full Retry-After would starve
                # the run of samples
                await asyncio.sleep(0.05)
        await client.close()

    await asyncio.gather(*(one_client(index) for index in range(clients)))


def _traffic_thread(
    host: str,
    port: int,
    payloads: Sequence[Dict[str, object]],
    clients: int,
    stop: threading.Event,
    outcomes: List[RequestOutcome],
    t0: float,
) -> threading.Thread:
    thread = threading.Thread(
        target=lambda: asyncio.run(
            _traffic(host, port, payloads, clients, stop, outcomes, t0)
        ),
        name="repro-chaos-traffic",
        daemon=True,
    )
    thread.start()
    return thread


# ----------------------------------------------------------------------
# the experiment
# ----------------------------------------------------------------------
def run_chaos(
    plan: ChaosPlan,
    replicas: int = 2,
    horizon: float = 8.0,
    clients: int = 4,
    payloads: Optional[Sequence[Dict[str, object]]] = None,
    cache_dir: Optional[str] = None,
    server_args: Sequence[str] = (),
    p99_bound_s: float = 30.0,
    drain_grace: float = 30.0,
) -> ChaosReport:
    """Execute ``plan`` against a fresh fleet under closed-loop load."""
    import tempfile

    from repro.fleet.harness import BackgroundFleet
    from repro.server.loadgen import demo_payloads

    if horizon <= 0:
        raise ValueError("horizon must be positive")
    payloads = list(payloads) if payloads else demo_payloads(unique=3)
    cache_dir = cache_dir or tempfile.mkdtemp(prefix="repro-chaos-")

    outcomes: List[RequestOutcome] = []
    applied: List[Tuple[float, str]] = []
    windows: List[Tuple[float, float]] = []

    with BackgroundFleet(
        replicas=replicas, cache_dir=cache_dir, server_args=tuple(server_args)
    ) as fleet:
        ctx = ChaosContext(manager=fleet.manager, cache_dir=Path(cache_dir))

        # interleave applies and reverts into one sorted timeline;
        # reverts sort after applies at the same instant
        timeline: List[Tuple[float, int, str, ChaosEvent]] = []
        for event in plan.events(horizon):
            timeline.append((event.time, 0, "apply", event))
            if event.duration is not None:
                timeline.append((
                    min(event.time + event.duration, horizon), 1, "revert", event,
                ))
        timeline.sort(key=lambda item: (item[0], item[1]))

        stop = threading.Event()
        t0 = time.perf_counter()
        traffic = _traffic_thread(
            fleet.host, fleet.port, payloads, clients, stop, outcomes, t0
        )

        outstanding: List[Tuple[float, ChaosEvent]] = []
        try:
            for when, _, kind, event in timeline:
                delay = when - (time.perf_counter() - t0)
                if delay > 0:
                    time.sleep(delay)
                if kind == "apply":
                    event.action.apply(ctx)
                    applied.append((when, event.action.name))
                    outstanding.append((when, event))
                else:
                    event.action.revert(ctx)
                    outstanding = [
                        (start, pending) for start, pending in outstanding
                        if pending is not event
                    ]
                    windows.append((event.time, when))
            remaining = horizon - (time.perf_counter() - t0)
            if remaining > 0:
                time.sleep(remaining)
        finally:
            # heal anything still broken (newest first), then stop traffic;
            # in-flight requests to a just-resumed replica get to finish
            for start, event in reversed(outstanding):
                event.action.revert(ctx)
                windows.append((start, horizon))
            stop.set()
            traffic.join(timeout=drain_grace)

        restarts = fleet.manager.total_restarts

    violations = check_invariants(
        outcomes, fault_windows=windows, p99_bound_s=p99_bound_s
    )
    return ChaosReport(
        horizon=horizon,
        replicas=replicas,
        outcomes=outcomes,
        violations=violations,
        applied=applied,
        fault_windows=windows,
        restarts=restarts,
    )
