"""Composable fault actions against a running fleet.

Each action is an ``apply``/``revert`` pair over a :class:`ChaosContext`
(the fleet's replica manager plus the shared cache-tier directory).  Actions
are deliberately *process-external*: they signal replica subprocesses and
mutilate the on-disk cache tier exactly the way a hostile production
environment would, with no cooperation from the code under test.

The catalogue:

* :class:`KillReplica` — SIGKILL; the supervisor restarts it after
  (jittered) backoff, the router's retries mask the gap.
* :class:`PauseReplica` — SIGSTOP.  The process still polls as *alive*, so
  the supervisor will not replace it: this is the wedged-but-alive shape
  that exercises the bounded ``await_flight`` + ``break_flight`` takeover.
* :class:`SlowReplica` — latency injection via a SIGSTOP/SIGCONT duty
  cycle, stretching every in-flight request without ever failing one.
* :class:`CorruptCacheEntry` — overwrite a stored ``<fp>.json`` with
  garbage; the cache must treat it as a miss (counted), never serve it.
* :class:`CorruptLockFile` — garbage bytes in a single-flight ``.lock``;
  waiters must reclaim it as corrupt instead of waiting forever.
* :class:`FillCacheDir` — hijack the cache-tier path itself (the directory
  is replaced by a plain file, so every mkdir/open under it fails with
  ``OSError``), simulating a full or remounted disk; stores and lock
  acquisitions must degrade to counted errors, not request failures.
"""

from __future__ import annotations

import abc
import dataclasses
import threading
from pathlib import Path
from typing import Optional

from repro.fleet.manager import FleetManager

__all__ = [
    "ChaosContext",
    "ChaosAction",
    "KillReplica",
    "PauseReplica",
    "SlowReplica",
    "CorruptCacheEntry",
    "CorruptLockFile",
    "FillCacheDir",
]

_GARBAGE = b'{"chaos": "not a result'  # truncated JSON: parse must fail


@dataclasses.dataclass
class ChaosContext:
    """What an action may touch: the replica manager and the cache tier."""

    manager: FleetManager
    cache_dir: Path


class ChaosAction(abc.ABC):
    """One revertible fault.  ``apply`` may stash state for ``revert``;
    ``revert`` must be safe to call once after a successful ``apply`` even
    when the fault already self-healed (supervisor restart, reclaim)."""

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def apply(self, ctx: ChaosContext) -> None:
        """Inject the fault."""

    def revert(self, ctx: ChaosContext) -> None:  # noqa: B027 - optional hook
        """Heal the fault (default: nothing to heal)."""


class KillReplica(ChaosAction):
    """SIGKILL one replica; recovery is the supervisor's job."""

    def __init__(self, index: int) -> None:
        self.index = index

    @property
    def name(self) -> str:
        return f"KillReplica({self.index})"

    def apply(self, ctx: ChaosContext) -> None:
        ctx.manager.kill_replica(self.index)


class PauseReplica(ChaosAction):
    """SIGSTOP one replica until revert — alive to the supervisor, dead to
    everyone waiting on it."""

    def __init__(self, index: int) -> None:
        self.index = index

    @property
    def name(self) -> str:
        return f"PauseReplica({self.index})"

    def apply(self, ctx: ChaosContext) -> None:
        ctx.manager.pause_replica(self.index)

    def revert(self, ctx: ChaosContext) -> None:
        ctx.manager.resume_replica(self.index)


class SlowReplica(ChaosAction):
    """Stretch one replica's latency with a SIGSTOP/SIGCONT duty cycle.

    The replica spends ``stall`` of every ``period`` seconds frozen, so every
    request it serves slows by roughly ``stall / period`` without any request
    actually failing — the shape of a CPU-starved or thrashing node.
    """

    def __init__(self, index: int, stall: float = 0.05, period: float = 0.15) -> None:
        if not 0 < stall < period:
            raise ValueError("need 0 < stall < period")
        self.index = index
        self.stall = stall
        self.period = period
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def name(self) -> str:
        return f"SlowReplica({self.index})"

    def apply(self, ctx: ChaosContext) -> None:
        stop = self._stop = threading.Event()

        def cycle() -> None:
            while not stop.wait(self.period - self.stall):
                ctx.manager.pause_replica(self.index)
                if stop.wait(self.stall):
                    break
                ctx.manager.resume_replica(self.index)
            ctx.manager.resume_replica(self.index)  # never leave it frozen

        self._thread = threading.Thread(
            target=cycle, name=f"repro-chaos-slow-{self.index}", daemon=True
        )
        self._thread.start()

    def revert(self, ctx: ChaosContext) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        ctx.manager.resume_replica(self.index)


class CorruptCacheEntry(ChaosAction):
    """Overwrite one stored cache entry with garbage bytes.

    The cache layer must answer the next lookup with a counted miss (and
    delete the carcass), never serve the corruption.  Revert unlinks the
    entry if the cache has not already cleaned it up.
    """

    def __init__(self) -> None:
        self._victim: Optional[Path] = None

    def apply(self, ctx: ChaosContext) -> None:
        entries = sorted(ctx.cache_dir.glob("*.json"))
        if not entries:
            return  # nothing stored yet: the fault lands on empty air
        self._victim = entries[0]
        try:
            self._victim.write_bytes(_GARBAGE)
        except OSError:
            self._victim = None

    def revert(self, ctx: ChaosContext) -> None:
        if self._victim is not None:
            try:
                self._victim.unlink()
            except OSError:
                pass  # the cache's own corrupt-entry cleanup beat us to it


class CorruptLockFile(ChaosAction):
    """Garbage bytes where a single-flight lock should be.

    Corrupts an existing in-flight lock when one exists (waiters must
    reclaim it as corrupt, not spin until timeout); otherwise plants an
    orphan garbage lock that the next acquirer of that fingerprint has to
    clear.
    """

    ORPHAN_FINGERPRINT = "chaos-orphan"

    def __init__(self) -> None:
        self._planted: Optional[Path] = None

    def apply(self, ctx: ChaosContext) -> None:
        locks = sorted(ctx.cache_dir.glob("*.lock"))
        path = locks[0] if locks else (
            ctx.cache_dir / f"{self.ORPHAN_FINGERPRINT}.lock"
        )
        try:
            path.write_bytes(_GARBAGE)
        except OSError:
            return
        self._planted = path

    def revert(self, ctx: ChaosContext) -> None:
        if self._planted is not None:
            try:
                self._planted.unlink()
            except OSError:
                pass  # reclaimed by a waiter already


class FillCacheDir(ChaosAction):
    """Make the cache-tier path unusable, the way a full or remounted disk
    would.

    ``chmod`` is useless here (tests run as root), so the directory is moved
    aside and replaced by a plain *file*: every ``mkdir``/``open`` under the
    path now raises ``OSError``, which the cache layer must absorb as
    ``store_errors``/``lock_errors`` while requests keep succeeding from
    memory and local solves.
    """

    def __init__(self) -> None:
        self._parked: Optional[Path] = None

    def apply(self, ctx: ChaosContext) -> None:
        parked = ctx.cache_dir.parent / (ctx.cache_dir.name + ".chaos-parked")
        try:
            ctx.cache_dir.rename(parked)
            ctx.cache_dir.write_bytes(b"chaos: cache tier unavailable\n")
        except OSError:
            return
        self._parked = parked

    def revert(self, ctx: ChaosContext) -> None:
        if self._parked is None:
            return
        try:
            ctx.cache_dir.unlink()
            self._parked.rename(ctx.cache_dir)
        except OSError:
            pass
        self._parked = None
