"""Chaos harness: seeded fault injection against the live serving fleet.

The simulator's fault plans (:mod:`repro.sim.faults`) break *virtual*
fabric under *virtual* time; this package breaks the real thing — replica
processes get killed, SIGSTOPped and slowed, the shared cache tier gets
corrupted and hijacked — while closed-loop client traffic keeps flowing
and an invariant checker judges what the clients actually experienced.

Quickstart::

    from repro.chaos import ChaosEvent, ChaosPlan, KillReplica, run_chaos

    report = run_chaos(
        ChaosPlan([ChaosEvent(1.0, KillReplica(0))]),
        replicas=2, horizon=6.0,
    )
    print(report.format_report())
    assert report.ok

or from the command line (the CI ``chaos-smoke`` job)::

    python -m repro.chaos --replicas 2 --horizon 8 --rate 0.5 --seed 7
"""

from repro.chaos.actions import (
    ChaosAction,
    ChaosContext,
    CorruptCacheEntry,
    CorruptLockFile,
    FillCacheDir,
    KillReplica,
    PauseReplica,
    SlowReplica,
)
from repro.chaos.invariants import (
    InvariantViolation,
    RequestOutcome,
    SHED_STATUSES,
    check_invariants,
)
from repro.chaos.plan import ChaosEvent, ChaosPlan, random_plan
from repro.chaos.runner import ChaosReport, run_chaos

__all__ = [
    # actions
    "ChaosAction",
    "ChaosContext",
    "KillReplica",
    "PauseReplica",
    "SlowReplica",
    "CorruptCacheEntry",
    "CorruptLockFile",
    "FillCacheDir",
    # plan
    "ChaosEvent",
    "ChaosPlan",
    "random_plan",
    # invariants
    "RequestOutcome",
    "InvariantViolation",
    "SHED_STATUSES",
    "check_invariants",
    # runner
    "ChaosReport",
    "run_chaos",
]
