"""What must stay true while the fleet is being tortured.

The checker consumes per-request :class:`RequestOutcome` records (status,
latency, response headers, parsed body) plus the fault windows the runner
observed, and returns every :class:`InvariantViolation` it finds:

1. **No request lost** — every client request gets an HTTP response.
   Connection-level failures (recorded as status 599) mean the routing and
   retry layers dropped a request on the floor.
2. **No corrupt result served** — every 200 carries a structurally sound
   result document (fingerprint, ``result.status`` from the solver's
   vocabulary); corruption injected into the cache tier must surface as a
   re-solve, never as a response.
3. **Honest shedding** — every shed or timeout response (429/503/504)
   carries a ``Retry-After`` header, so well-behaved clients can back off
   instead of hammering an overloaded fleet.
4. **Bounded tail under faults** — the p99 latency of requests *sent inside
   a fault window* stays under ``p99_bound_s``; degraded-mode answers are
   acceptable during faults, multi-minute stalls are not.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "RequestOutcome",
    "InvariantViolation",
    "SHED_STATUSES",
    "VALID_RESULT_STATUSES",
    "check_invariants",
]

SHED_STATUSES = (429, 503, 504)
LOST_STATUS = 599  # loadgen convention: connection-level failure
VALID_RESULT_STATUSES = (
    "optimal", "feasible", "infeasible", "unbounded", "time_limit", "error",
)


@dataclasses.dataclass(frozen=True)
class RequestOutcome:
    """One client request as the chaos traffic driver saw it."""

    offset: float  # seconds from run start, at send
    status: int
    latency_s: float
    headers: Mapping[str, str]  # lower-cased names
    body: object


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def _sound_result(body: object) -> bool:
    if not isinstance(body, dict):
        return False
    result = body.get("result")
    if not isinstance(result, dict):
        return False
    return (
        bool(body.get("fingerprint"))
        and result.get("status") in VALID_RESULT_STATUSES
    )


def check_invariants(
    outcomes: Sequence[RequestOutcome],
    fault_windows: Sequence[Tuple[float, float]] = (),
    p99_bound_s: float = 30.0,
) -> List[InvariantViolation]:
    """Every violated invariant, empty when the run was clean."""
    from repro.sim.stats import percentile

    violations: List[InvariantViolation] = []

    lost = sum(1 for outcome in outcomes if outcome.status == LOST_STATUS)
    if lost:
        violations.append(InvariantViolation(
            "no_request_lost",
            f"{lost} of {len(outcomes)} requests died at the connection level",
        ))

    unsound = [
        outcome for outcome in outcomes
        if outcome.status == 200 and not _sound_result(outcome.body)
    ]
    if unsound:
        violations.append(InvariantViolation(
            "no_corrupt_result",
            f"{len(unsound)} 200-responses carried a malformed result "
            f"document (first: {unsound[0].body!r:.200})",
        ))

    naked: Dict[int, int] = {}
    for outcome in outcomes:
        if outcome.status in SHED_STATUSES and "retry-after" not in outcome.headers:
            naked[outcome.status] = naked.get(outcome.status, 0) + 1
    if naked:
        violations.append(InvariantViolation(
            "retry_after_on_shed",
            "shed responses without Retry-After: "
            + ", ".join(f"{count}x {status}" for status, count in sorted(naked.items())),
        ))

    in_window = [
        outcome.latency_s
        for outcome in outcomes
        if outcome.status != LOST_STATUS
        and any(start <= outcome.offset <= end for start, end in fault_windows)
    ]
    if in_window:
        p99 = percentile(in_window, 99.0)
        if p99 > p99_bound_s:
            violations.append(InvariantViolation(
                "bounded_tail_under_faults",
                f"p99 of {len(in_window)} in-fault-window requests is "
                f"{p99:.2f}s, bound {p99_bound_s:.2f}s",
            ))

    return violations
