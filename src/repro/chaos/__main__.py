"""CLI: run a seeded chaos plan against a fresh fleet and print the verdict.

::

    python -m repro.chaos --replicas 2 --horizon 8 --rate 0.5 --seed 7

Exit status 0 when every invariant held, 1 otherwise — CI's ``chaos-smoke``
job keys on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.chaos.plan import random_plan
from repro.chaos.runner import run_chaos


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Inject seeded faults into a live fleet under load and "
        "check the client-observable invariants.",
    )
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--horizon", type=float, default=8.0,
                        help="run length in seconds")
    parser.add_argument("--rate", type=float, default=0.5,
                        help="Poisson fault arrivals per second")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop traffic clients")
    parser.add_argument("--cache-dir", default=None,
                        help="shared cache tier (default: fresh temp dir)")
    parser.add_argument("--p99-bound", type=float, default=30.0,
                        help="max p99 latency (s) inside fault windows")
    parser.add_argument("--no-cache-faults", action="store_true",
                        help="restrict the plan to process faults "
                        "(kill/pause/slow)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    args = parser.parse_args(argv)

    plan = random_plan(
        replicas=args.replicas,
        rate=args.rate,
        horizon=args.horizon,
        seed=args.seed,
        include_cache_faults=not args.no_cache_faults,
    )
    print(f"chaos plan ({len(plan)} faults, seed {args.seed}):", file=sys.stderr)
    for line in plan.describe():
        print(f"  {line}", file=sys.stderr)

    report = run_chaos(
        plan,
        replicas=args.replicas,
        horizon=args.horizon,
        clients=args.clients,
        cache_dir=args.cache_dir,
        p99_bound_s=args.p99_bound,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.format_report())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
