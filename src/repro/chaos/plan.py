"""Chaos schedules: which fault, when, for how long.

A :class:`ChaosPlan` is a deterministic list of :class:`ChaosEvent`\\ s —
an action instance, its injection instant (wall-clock seconds from run
start), and an optional duration after which the runner reverts it.
:func:`random_plan` draws a seeded plan whose arrival instants come from the
same Poisson primitive as the simulator's fabric faults
(:func:`repro.sim.faults.poisson_times`), so a chaos run replays
bit-identically from ``(rate, horizon, seed)``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.chaos.actions import (
    ChaosAction,
    CorruptCacheEntry,
    CorruptLockFile,
    FillCacheDir,
    KillReplica,
    PauseReplica,
    SlowReplica,
)
from repro.sim.faults import poisson_times
from repro.utils.rng import make_rng

__all__ = ["ChaosEvent", "ChaosPlan", "random_plan"]


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    ``duration`` of ``None`` means the fault is never explicitly reverted
    during the run (a kill heals through the supervisor); the runner still
    calls ``revert`` once at the end so stateful actions clean up.
    """

    time: float
    action: ChaosAction
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("event duration must be positive (or None)")


class ChaosPlan:
    """A deterministic, time-ordered fault schedule."""

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self._events = tuple(sorted(events, key=lambda event: event.time))

    def events(self, horizon: float) -> List[ChaosEvent]:
        """Every event injecting before ``horizon``, in time order."""
        return [event for event in self._events if event.time < horizon]

    def __len__(self) -> int:
        return len(self._events)

    def describe(self) -> List[str]:
        return [
            f"t={event.time:.2f}s {event.action.name}"
            + (f" for {event.duration:.2f}s" if event.duration is not None else "")
            for event in self._events
        ]


# fault kinds a random plan draws from, roughly ordered mild -> severe;
# weights make process faults (the interesting recovery paths) more common
# than cache mutilation
_KINDS = (
    "kill", "kill",
    "pause", "pause",
    "slow",
    "corrupt_entry",
    "corrupt_lock",
    "fill_cache",
)


def random_plan(
    replicas: int,
    rate: float,
    horizon: float,
    seed: int = 0,
    settle: float = 1.0,
    include_cache_faults: bool = True,
) -> ChaosPlan:
    """A seeded Poisson fault schedule over ``replicas`` processes.

    ``settle`` shifts every injection past the fleet's warm-up so the first
    fault hits a serving system, not a booting one.  Durations are drawn so
    revertible faults (pause/slow/fill) heal within the horizon, leaving the
    tail of the run to observe recovery.
    """
    if replicas <= 0:
        raise ValueError("replicas must be positive")
    rng = make_rng(seed)
    events: List[ChaosEvent] = []
    kinds = _KINDS if include_cache_faults else tuple(
        kind for kind in _KINDS if kind in ("kill", "pause", "slow")
    )
    for time in poisson_times(rate, max(horizon - settle, 0.1), seed=seed):
        when = settle + time
        kind = kinds[int(rng.integers(len(kinds)))]
        index = int(rng.integers(replicas))
        duration = 0.5 + float(rng.integers(100)) / 100.0  # 0.5 .. 1.49 s
        if kind == "kill":
            events.append(ChaosEvent(when, KillReplica(index)))
        elif kind == "pause":
            events.append(ChaosEvent(when, PauseReplica(index), duration=duration))
        elif kind == "slow":
            events.append(ChaosEvent(when, SlowReplica(index), duration=duration))
        elif kind == "corrupt_entry":
            events.append(ChaosEvent(when, CorruptCacheEntry()))
        elif kind == "corrupt_lock":
            events.append(ChaosEvent(when, CorruptLockFile()))
        else:
            events.append(ChaosEvent(when, FillCacheDir(), duration=duration))
    return ChaosPlan(events)
