"""Serializable solve-job specifications with deterministic content hashes.

A :class:`SolveJob` captures *everything* that determines the outcome of one
:class:`~repro.floorplan.solver.FloorplanSolver` run — the problem (device,
regions, connectivity), the relocation spec, the solve mode, the MILP options
and the objective weights.  Two jobs with identical content produce identical
fingerprints, which is what makes the solve cache (:mod:`repro.service.cache`)
content-addressed and lets the batch executor deduplicate identical work.

The fingerprint is a SHA-256 over a canonical JSON encoding: dictionaries are
key-sorted, floats are repr-encoded, and collections that carry no semantic
order (relocation requests) are sorted before hashing, so the hash is stable
across sessions and processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional

from repro.floorplan.metrics import ObjectiveWeights
from repro.floorplan.problem import FloorplanProblem
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationSpec


def device_spec_dict(device) -> Dict[str, object]:
    """Canonical content encoding of an :class:`~repro.device.grid.FPGADevice`.

    The encoding covers the full tile grid (per-cell type index), the tile
    type definitions (frames, resources) and the forbidden cells — everything
    the floorplanner's feasible set depends on.  The device *name* is included
    only as metadata and does not disambiguate distinct grids.
    """
    types = [
        {
            "name": tile_type.name,
            "frames": tile_type.frames,
            "resources": tile_type.resources.as_dict(),
        }
        for tile_type in device.tile_type_list
    ]
    grid: List[int] = []
    forbidden: List[int] = []
    for col in range(device.width):
        for row in range(device.height):
            grid.append(device.type_index_at(col, row))
            if device.is_forbidden(col, row):
                forbidden.append(col * device.height + row)
    return {
        "name": device.name,
        "width": device.width,
        "height": device.height,
        "types": types,
        "grid": grid,
        "forbidden": forbidden,
    }


def problem_spec_dict(problem: FloorplanProblem) -> Dict[str, object]:
    """Canonical content encoding of a :class:`FloorplanProblem`."""
    return {
        "name": problem.name,
        "device": device_spec_dict(problem.device),
        "regions": [
            {
                "name": region.name,
                "requirements": region.requirements.as_dict(),
                "max_width": region.max_width,
                "max_height": region.max_height,
            }
            for region in problem.regions
        ],
        "connections": [
            # weights canonicalize to float so Connection(weight=16) and
            # Connection(weight=16.0) — and a job decoded back off the wire —
            # hash identically
            {"source": c.source, "target": c.target, "weight": float(c.weight)}
            for c in problem.connections
        ],
        "pins": [
            {"name": pin.name, "col": pin.col, "row": pin.row}
            for pin in problem.pins
        ],
    }


def relocation_spec_dict(spec: Optional[RelocationSpec]) -> List[Dict[str, object]]:
    """Canonical (region-sorted) encoding of a relocation spec."""
    if spec is None:
        return []
    return sorted(
        (
            {
                "region": request.region,
                "copies": int(request.copies),
                "hard": bool(request.hard),
                "weight": float(request.weight),
            }
            for request in spec.requests
        ),
        key=lambda entry: entry["region"],
    )


@dataclasses.dataclass
class SolveJob:
    """One unit of floorplanning work for the batch service.

    Attributes
    ----------
    problem:
        The floorplanning instance to solve.
    relocation:
        Optional relocation spec (constraint and/or metric requests).
    mode:
        ``"O"`` or ``"HO"`` (see :class:`~repro.floorplan.solver.FloorplanSolver`).
    options:
        MILP backend options; part of the fingerprint because time limits and
        gaps change the result.
    heuristic:
        HO seed heuristic (ignored in O mode but still hashed — it is part of
        the job spec as given).
    weights:
        Objective weights; ``None`` means the paper default.
    lexicographic:
        Run the two-phase Section VI protocol instead of the weighted sum.
    tag:
        Free-form label for reports.  Deliberately *excluded* from the
        fingerprint: tagging a job differently does not change its result, so
        retagged re-runs still hit the cache.
    """

    problem: FloorplanProblem
    relocation: Optional[RelocationSpec] = None
    mode: str = "HO"
    options: SolverOptions = dataclasses.field(default_factory=SolverOptions)
    heuristic: str = "tessellation"
    weights: Optional[ObjectiveWeights] = None
    lexicographic: bool = False
    tag: str = ""

    def __post_init__(self) -> None:
        self.mode = self.mode.upper()
        if self.mode not in ("O", "HO"):
            raise ValueError(f"mode must be 'O' or 'HO', got {self.mode!r}")
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    def spec_dict(self) -> Dict[str, object]:
        """The canonical content dictionary the fingerprint is computed over."""
        weights = self.weights or ObjectiveWeights.paper_default()
        options = self.options.as_dict()
        # canonicalize numeric option fields so int/float aliasing
        # (time_limit=30 vs 30.0) and wire-decoded jobs hash identically
        for key in ("time_limit", "mip_gap"):
            if options.get(key) is not None:
                options[key] = float(options[key])
        options["max_nodes"] = int(options["max_nodes"])
        return {
            "problem": problem_spec_dict(self.problem),
            "relocation": relocation_spec_dict(self.relocation),
            "mode": self.mode,
            "options": options,
            "heuristic": self.heuristic,
            "weights": {
                key: float(value)
                for key, value in dataclasses.asdict(weights).items()
            },
            "lexicographic": self.lexicographic,
        }

    @property
    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical job content (cached).

        The problem and device *names* are stripped before hashing: they are
        labels, not content, so renaming an otherwise identical instance still
        hits the cache.  Region and pin names stay in — constraints and
        connectivity reference them.
        """
        if self._fingerprint is None:
            spec = self.spec_dict()
            problem = dict(spec["problem"])
            problem["name"] = None
            problem["device"] = dict(problem["device"], name=None)
            spec["problem"] = problem
            encoded = json.dumps(
                spec, sort_keys=True, separators=(",", ":"), default=repr
            )
            self._fingerprint = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
        return self._fingerprint

    @property
    def short_id(self) -> str:
        """First 12 hex characters of the fingerprint (for logs and tables)."""
        return self.fingerprint[:12]

    @property
    def name(self) -> str:
        """Human-readable job label used in reports."""
        label = f"{self.problem.name}[{self.mode}]"
        if self.relocation is not None and len(self.relocation) > 0:
            label += f"+{self.relocation.total_copies}fca"
        if self.tag:
            label += f"#{self.tag}"
        return label

    def __repr__(self) -> str:
        return f"SolveJob({self.name!r}, {self.short_id})"
