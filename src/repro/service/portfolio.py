"""Portfolio racing: several strategies, one instance, one winner.

MILP floorplanning run times are heavy-tailed: O mode can prove optimality on
one instance in seconds and stall for minutes on the next, while the HO
variants and the annealing heuristic are fast but weaker.  Racing the
strategies side by side under a shared deadline buys the robustness of the
whole portfolio at the wall-clock cost of (roughly) its fastest member —
the classic algorithm-portfolio trick.

Two selection policies are provided:

* ``"first_feasible"`` — return as soon as any strategy produces a
  verified-feasible floorplan (lowest latency, non-deterministic winner);
* ``"best"`` — wait for every strategy (or the deadline) and pick the best
  feasible result by ``(wasted frames, wirelength)`` (deterministic winner
  given deterministic strategy results).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.floorplan.metrics import ObjectiveWeights, evaluate_floorplan
from repro.floorplan.problem import FloorplanProblem
from repro.floorplan.verify import verify_floorplan
from repro.milp import SolverOptions
from repro.relocation.spec import RelocationSpec
from repro.service.executor import execute_job
from repro.service.jobs import SolveJob, problem_spec_dict, relocation_spec_dict
from repro.service.results import JobResult
from repro.utils.timing import Timer

POLICIES = ("first_feasible", "best")


@dataclasses.dataclass(frozen=True)
class Strategy:
    """One member of the racing portfolio.

    ``kind`` is ``"milp"`` (a :class:`~repro.floorplan.solver.FloorplanSolver`
    run in the given mode with the given HO heuristic) or ``"annealing"``
    (the simulated-annealing baseline plus geometric free-area reservation).
    """

    name: str
    kind: str = "milp"
    mode: str = "O"
    heuristic: str = "tessellation"

    def __post_init__(self) -> None:
        if self.kind not in ("milp", "annealing"):
            raise ValueError(f"unknown strategy kind {self.kind!r}")


#: The portfolio of Section II/VI strategies raced by default.
DEFAULT_STRATEGIES: Tuple[Strategy, ...] = (
    Strategy("O", kind="milp", mode="O"),
    Strategy("HO-tessellation", kind="milp", mode="HO", heuristic="tessellation"),
    Strategy("HO-first-fit", kind="milp", mode="HO", heuristic="first-fit"),
    Strategy("annealing", kind="annealing"),
)

#: The brown-out portfolio: the MILP arms dropped, leaving only the cheap
#: heuristic members.  An overloaded gateway races this instead of
#: :data:`DEFAULT_STRATEGIES` and flags the results ``degraded``.
HEURISTIC_STRATEGIES: Tuple[Strategy, ...] = tuple(
    strategy for strategy in DEFAULT_STRATEGIES if strategy.kind == "annealing"
)


@dataclasses.dataclass
class PortfolioResult:
    """Outcome of one race."""

    outcomes: Dict[str, JobResult]
    winner: Optional[str]
    policy: str
    wall_time: float

    @property
    def winner_result(self) -> Optional[JobResult]:
        """The winning strategy's result (``None`` when nothing was feasible)."""
        return self.outcomes.get(self.winner) if self.winner else None

    def summary(self) -> str:
        parts = []
        for name, outcome in self.outcomes.items():
            mark = "*" if name == self.winner else " "
            wasted = outcome.wasted_frames
            parts.append(
                f"{mark}{name}: {outcome.status}"
                + (f" wasted={wasted}" if wasted is not None else "")
            )
        head = f"winner={self.winner or 'none'} ({self.policy}, {self.wall_time:.2f}s)"
        return head + " | " + "; ".join(parts)


def run_strategy(
    strategy: Strategy,
    problem: FloorplanProblem,
    relocation: Optional[RelocationSpec] = None,
    options: Optional[SolverOptions] = None,
    weights: Optional[ObjectiveWeights] = None,
    lexicographic: bool = False,
) -> JobResult:
    """Run one portfolio member to completion (pool-worker entry point)."""
    if strategy.kind == "milp":
        job = SolveJob(
            problem=problem,
            relocation=relocation,
            mode=strategy.mode,
            options=options or SolverOptions(),
            heuristic=strategy.heuristic,
            weights=weights,
            lexicographic=lexicographic,
            tag=strategy.name,
        )
        return execute_job(job)
    try:
        return _run_annealing(strategy, problem, relocation)
    except Exception as exc:  # noqa: BLE001 — a crashed member must not kill the race
        return JobResult(
            fingerprint=_heuristic_fingerprint(strategy, problem, relocation),
            job_name=f"{problem.name}[{strategy.name}]",
            status="error",
            feasible=False,
            objective=float("nan"),
            solve_time=0.0,
            wall_time=0.0,
            backend="annealing",
            mode="heuristic",
            error=f"{type(exc).__name__}: {exc}",
        )


def _run_annealing(
    strategy: Strategy,
    problem: FloorplanProblem,
    relocation: Optional[RelocationSpec],
) -> JobResult:
    from repro.baselines.annealing import annealing_floorplan
    from repro.floorplan.ho import HOSeedError, HOSeeder

    fingerprint = _heuristic_fingerprint(strategy, problem, relocation)
    timer = Timer()
    with timer:
        floorplan = annealing_floorplan(problem)
        if floorplan is not None and relocation is not None and len(relocation) > 0:
            try:
                floorplan = HOSeeder(problem).add_free_areas(floorplan, relocation)
            except HOSeedError as exc:
                return JobResult(
                    fingerprint=fingerprint,
                    job_name=f"{problem.name}[{strategy.name}]",
                    status="no_free_areas",
                    feasible=False,
                    objective=float("nan"),
                    solve_time=timer.lap(),
                    wall_time=timer.lap(),
                    backend="annealing",
                    mode="heuristic",
                    error=str(exc),
                )
    if floorplan is None or not floorplan.is_complete:
        return JobResult(
            fingerprint=fingerprint,
            job_name=f"{problem.name}[{strategy.name}]",
            status="infeasible",
            feasible=False,
            objective=float("nan"),
            solve_time=timer.elapsed,
            wall_time=timer.elapsed,
            backend="annealing",
            mode="heuristic",
        )
    verification = verify_floorplan(floorplan)
    metrics = evaluate_floorplan(floorplan)
    return JobResult(
        fingerprint=fingerprint,
        job_name=f"{problem.name}[{strategy.name}]",
        status=floorplan.solver_status,
        feasible=verification.is_feasible,
        objective=metrics.objective,
        solve_time=floorplan.solve_time or timer.elapsed,
        wall_time=timer.elapsed,
        backend="annealing",
        mode="heuristic",
        metrics=metrics.as_dict(),
        floorplan=floorplan.to_dict(),
    )


def _heuristic_fingerprint(
    strategy: Strategy,
    problem: FloorplanProblem,
    relocation: Optional[RelocationSpec],
) -> str:
    spec = {
        "strategy": strategy.name,
        "kind": strategy.kind,
        "problem": problem_spec_dict(problem),
        "relocation": relocation_spec_dict(relocation),
    }
    encoded = json.dumps(spec, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def run_portfolio(
    problem: FloorplanProblem,
    relocation: Optional[RelocationSpec] = None,
    options: Optional[SolverOptions] = None,
    weights: Optional[ObjectiveWeights] = None,
    strategies: Sequence[Strategy] = DEFAULT_STRATEGIES,
    deadline: Optional[float] = None,
    policy: str = "best",
    executor: str = "process",
    max_workers: Optional[int] = None,
) -> PortfolioResult:
    """Race ``strategies`` on one instance under a shared deadline.

    Parameters
    ----------
    deadline:
        Shared wall-clock budget in seconds.  Strategies that have not
        finished when it expires are recorded with status ``"deadline"``
        (running MILP workers are abandoned, not interrupted).
    policy:
        ``"first_feasible"`` or ``"best"`` (see module docstring).
    executor:
        ``"process"`` (default), ``"thread"``, or ``"serial"``.  Serial mode
        runs strategies one after another in submission order — fully
        deterministic, used by the tests.
    """
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
    if executor not in ("process", "thread", "serial"):
        raise ValueError(
            f"executor must be 'process', 'thread' or 'serial', got {executor!r}"
        )
    strategies = list(strategies)
    names = [strategy.name for strategy in strategies]
    if len(set(names)) != len(names):
        raise ValueError("strategy names must be unique")

    timer = Timer()
    outcomes: Dict[str, JobResult] = {}
    with timer:
        if executor == "serial":
            _race_serial(
                strategies, outcomes, timer, deadline, policy,
                problem, relocation, options, weights,
            )
        else:
            _race_pool(
                strategies, outcomes, timer, deadline, policy, executor,
                max_workers, problem, relocation, options, weights,
            )

    winner = _pick_winner(names, outcomes, policy)
    ordered = {name: outcomes[name] for name in names if name in outcomes}
    return PortfolioResult(
        outcomes=ordered, winner=winner, policy=policy, wall_time=timer.elapsed
    )


# ----------------------------------------------------------------------
def _race_serial(
    strategies, outcomes, timer, deadline, policy,
    problem, relocation, options, weights,
) -> None:
    for strategy in strategies:
        if deadline is not None and timer.lap() >= deadline:
            outcomes[strategy.name] = _unfinished_result(strategy, problem, "deadline")
            continue
        outcomes[strategy.name] = run_strategy(
            strategy, problem, relocation, options, weights
        )
        if policy == "first_feasible" and outcomes[strategy.name].feasible:
            break


def _race_pool(
    strategies, outcomes, timer, deadline, policy, executor,
    max_workers, problem, relocation, options, weights,
) -> None:
    pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
    workers = max(1, min(max_workers or len(strategies), len(strategies)))
    # No `with` block: the context manager's shutdown(wait=True) would join
    # still-running workers and blow straight through the deadline.  Instead
    # the pool is shut down without waiting — queued strategies are cancelled,
    # already-running ones are abandoned to finish in the background.
    pool = pool_cls(max_workers=workers)
    reason = "cancelled"
    try:
        future_to_name = {
            pool.submit(
                run_strategy, strategy, problem, relocation, options, weights
            ): strategy.name
            for strategy in strategies
        }
        pending = set(future_to_name)
        while pending:
            budget = None
            if deadline is not None:
                budget = max(0.0, deadline - timer.lap())
            done, pending = wait(pending, timeout=budget, return_when=FIRST_COMPLETED)
            if not done:  # deadline expired with strategies still running
                reason = "deadline"
                break
            for future in done:
                name = future_to_name[future]
                outcomes[name] = future.result()
            if policy == "first_feasible" and any(
                outcomes[future_to_name[f]].feasible for f in done
            ):
                reason = "cancelled"  # another strategy already won
                break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    strategies_by_name = {strategy.name: strategy for strategy in strategies}
    for future, name in future_to_name.items():
        if name in outcomes:
            continue
        # a strategy may have finished in the same wave the race ended on
        if future.done() and not future.cancelled():
            try:
                outcomes[name] = future.result()
                continue
            except Exception:  # noqa: BLE001 — fall through to the placeholder
                pass
        outcomes[name] = _unfinished_result(strategies_by_name[name], problem, reason)


def _unfinished_result(
    strategy: Strategy, problem: FloorplanProblem, reason: str
) -> JobResult:
    message = (
        "shared portfolio deadline expired"
        if reason == "deadline"
        else "race ended before this strategy finished"
    )
    return JobResult(
        fingerprint="",
        job_name=f"{problem.name}[{strategy.name}]",
        status=reason,
        feasible=False,
        objective=float("nan"),
        solve_time=0.0,
        wall_time=0.0,
        backend="",
        mode=strategy.mode if strategy.kind == "milp" else "heuristic",
        error=message,
    )


def _pick_winner(
    names: List[str], outcomes: Dict[str, JobResult], policy: str
) -> Optional[str]:
    feasible = [name for name in names if name in outcomes and outcomes[name].feasible]
    if not feasible:
        return None
    if policy == "first_feasible":
        # serial mode stopped at the first feasible outcome; pool mode may
        # have collected several in the final wave — earliest wall time wins.
        return min(feasible, key=lambda name: (outcomes[name].wall_time, name))
    return min(feasible, key=lambda name: outcomes[name].objective_key())
