"""Parallel batch execution of solve jobs.

:class:`BatchSolver` fans a list of :class:`~repro.service.jobs.SolveJob`
across a :class:`concurrent.futures` pool, deduplicates jobs with identical
fingerprints (each unique job is solved exactly once per batch), serves
previously-solved jobs from the content-addressed cache and streams results
back in completion order.

The worker entry point is the module-level :func:`execute_job`, which wraps
the pure :func:`repro.floorplan.solver.run_job` and converts the portable
report into a flat :class:`~repro.service.results.JobResult`; exceptions are
captured into error results so a failing job never takes the pool down.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.floorplan.solver import run_job
from repro.service.cache import SolveCache
from repro.service.jobs import SolveJob
from repro.service.results import JobResult, SweepReport
from repro.utils.timing import Timer

EXECUTOR_KINDS = ("process", "thread", "serial")


def execute_job(job: SolveJob) -> JobResult:
    """Solve one job and flatten the outcome (pool-worker entry point)."""
    worker = f"pid-{os.getpid()}"
    timer = Timer()
    try:
        with timer:
            report = run_job(job)
    except Exception as exc:  # noqa: BLE001 — error results must cross the pipe
        return JobResult.failure(
            job, f"{type(exc).__name__}: {exc}", wall_time=timer.elapsed, worker=worker
        )
    return JobResult.from_report(job, report, wall_time=timer.elapsed, worker=worker)


class BatchSolver:
    """Solve many floorplanning jobs concurrently, with caching and dedup.

    Parameters
    ----------
    cache:
        Solve cache shared across batches; ``None`` creates a private
        in-memory cache (so dedup-across-batches still works within the
        solver's lifetime).
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped by the number of
        jobs actually being solved.
    executor:
        ``"process"`` (default — true parallelism for the MILP solves),
        ``"thread"``, or ``"serial"`` (in-process, deterministic completion
        order; useful for debugging and tiny batches).
    """

    def __init__(
        self,
        cache: Optional[SolveCache] = None,
        max_workers: Optional[int] = None,
        executor: str = "process",
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
            )
        self.cache = cache if cache is not None else SolveCache()
        self.max_workers = max_workers
        self.executor = executor

    # ------------------------------------------------------------------
    def iter_results(
        self, jobs: Sequence[SolveJob]
    ) -> Iterator[Tuple[int, SolveJob, JobResult]]:
        """Yield ``(index, job, result)`` as results become available.

        Cache hits are yielded first (flagged ``result.cached = True``); the
        remaining unique jobs are then solved concurrently and every index
        sharing a fingerprint receives its own copy of the shared result.
        """
        jobs = list(jobs)
        indices_by_fp: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            indices_by_fp.setdefault(job.fingerprint, []).append(index)

        pending: List[str] = []
        for fingerprint, indices in indices_by_fp.items():
            hit = self.cache.get(fingerprint)
            if hit is not None:
                for index in indices:
                    yield index, jobs[index], dataclasses.replace(hit, cached=True)
            else:
                pending.append(fingerprint)

        if not pending:
            return

        if self.executor == "serial":
            for fingerprint in pending:
                indices = indices_by_fp[fingerprint]
                result = execute_job(jobs[indices[0]])
                yield from self._store_and_fan_out(jobs, indices, result)
            return

        with self._make_pool(len(pending)) as pool:
            future_to_fp = {
                pool.submit(execute_job, jobs[indices_by_fp[fp][0]]): fp
                for fp in pending
            }
            for future in as_completed(future_to_fp):
                fingerprint = future_to_fp[future]
                indices = indices_by_fp[fingerprint]
                result = future.result()
                yield from self._store_and_fan_out(jobs, indices, result)

    def solve_all(self, jobs: Sequence[SolveJob]) -> SweepReport:
        """Solve a batch and return results in submission order."""
        jobs = list(jobs)
        slots: List[Optional[JobResult]] = [None] * len(jobs)
        hits = 0
        timer = Timer()
        with timer:
            for index, _job, result in self.iter_results(jobs):
                slots[index] = result
                if result.cached:
                    hits += 1
        results = [result for result in slots if result is not None]
        return SweepReport(
            results=results,
            wall_time=timer.elapsed,
            cache_hits=hits,
            cache_misses=len(results) - hits,
        )

    # ------------------------------------------------------------------
    def _store_and_fan_out(
        self, jobs: List[SolveJob], indices: Iterable[int], result: JobResult
    ) -> Iterator[Tuple[int, SolveJob, JobResult]]:
        if result.status != "error":  # failures are retried on the next batch
            self.cache.put(result)
        for position, index in enumerate(indices):
            # duplicates beyond the first were deduplicated, not re-solved
            copy = dataclasses.replace(result, cached=position > 0)
            yield index, jobs[index], copy

    def _make_pool(self, num_tasks: int) -> Executor:
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, num_tasks))
        if self.executor == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)
